"""A tour of the Section 4 lower-bound machinery.

The paper's lower bounds are constructive, which makes them runnable:

1. build the Theorem 4.1 family of flip sequences and check that its members
   all share the variability the theorem states;
2. run the Appendix D reduction — record a tracker's communication transcript
   and use it as a *tracing summary* that answers historical queries;
3. run the Lemma 4.3 INDEX protocol end to end: Alice encodes a family index,
   ships only the summary, and Bob decodes every bit of her input, proving the
   summary carries ``log2 C(n, r)`` bits;
4. sample the Lemma 4.4 randomized family and verify no two members match.

Run with::

    python examples/lower_bound_tour.py
"""

from __future__ import annotations

from repro import (
    DeterministicCounter,
    DeterministicFlipFamily,
    IndexReduction,
    RandomizedFlipFamily,
    TranscriptTracer,
)
from repro.analysis import format_table


def main() -> None:
    # 1. The deterministic hard family.
    family = DeterministicFlipFamily(n=200, level=10, num_flips=8)
    print("Theorem 4.1 family")
    print(f"  n = {family.n}, m = 1/eps = {family.level}, r = {family.num_flips}")
    print(f"  family size C(n, r)     : {family.size():,}")
    print(f"  information content     : {family.index_bits():.1f} bits")
    print(f"  member variability      : {family.member_variability():.3f} (same for all members)")
    print()

    # 2 + 3. Tracing summaries and the INDEX reduction.
    reduction = IndexReduction(
        family,
        lambda updates: TranscriptTracer(
            DeterministicCounter(1, family.epsilon / 2)
        ).build(updates),
        num_sites=1,
    )
    indices = family.sample_indices(4, seed=1)
    reports = reduction.run_many(indices)
    rows = [
        [
            report.encoded_index,
            report.decoded_index,
            "yes" if report.correct else "no",
            f"{report.summary_bits:.0f}",
            f"{report.information_bits:.1f}",
            f"{report.max_relative_error:.4f}",
        ]
        for report in reports
    ]
    print("Lemma 4.3 INDEX reduction through a tracker-built tracing summary")
    print(
        format_table(
            ["encoded", "decoded", "correct", "summary bits", "info bits", "max rel err"],
            rows,
        )
    )
    print("  every summary decodes its member, so no eps-correct summary can be")
    print("  smaller than the family's information content (Omega((v/eps) log n) bits).")
    print()

    # 4. The randomized family.
    randomized = RandomizedFlipFamily(n=3_000, epsilon=0.25, variability_budget=400.0)
    members = randomized.sample_family(10, seed=2)
    report = randomized.check_family(members)
    print("Lemma 4.4 randomized family (sampled at laptop scale)")
    print(f"  flip probability p = v/(6 eps n) : {randomized.flip_probability:.4f}")
    print(f"  sampled members                  : {report.family_size}")
    print(f"  matching pairs                   : {report.matching_pairs}")
    print(f"  max pairwise overlap fraction    : {report.max_overlap_fraction:.3f} (< 0.6 required)")
    print(f"  max member variability           : {report.max_variability:.1f} (budget {report.variability_budget:.0f})")
    print(
        f"  paper's worst-case family size   : exp(v / 64800 eps) / 10 = {randomized.paper_family_size():.3g}"
    )


if __name__ == "__main__":
    main()
