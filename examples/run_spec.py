"""One API for every scenario: declare, run, serialize, sweep.

The unified experiment API (:mod:`repro.api`) folds the repo's five axes —
stream source, tracker, topology, transport, engine — into one declarative
:class:`~repro.api.RunSpec`.  This example declares a sharded asynchronous
scenario, runs it, shows the JSON form the CLI replays with ``python -m
repro run --config``, and expands a two-axis grid with
:class:`~repro.api.Sweep` — the loop every experiment script used to
hand-roll.
"""

from repro.api import (
    RunSpec,
    SourceSpec,
    Sweep,
    TopologySpec,
    TrackerSpec,
    TransportSpec,
)


def main() -> None:
    spec = RunSpec(
        source=SourceSpec(
            stream="biased_walk", length=6_000, seed=7, sites=8,
            params={"drift": 0.5},
        ),
        tracker=TrackerSpec(name="deterministic", epsilon=0.1),
        topology=TopologySpec(shards=2),
        transport=TransportSpec(mode="async", latency="uniform", scale=4.0),
        engine="batched",
        record_every=100,
    )
    result = spec.validate().run()
    print("=== one declarative run (sharded, async, batched) ===")
    summary = result.summary(spec.tracker.epsilon)
    print(
        f"messages={summary['total_messages']}  bits={summary['total_bits']}  "
        f"max rel err={summary['max_relative_error']:.4f}  "
        f"violations={summary['violation_fraction']:.3f}"
    )
    print(
        f"staleness: mean age={summary['staleness']['mean_age']:.2f}  "
        f"in-flight hwm={summary['staleness']['inflight_highwater']}"
    )

    print()
    print("=== the same scenario as JSON (repro run --config replays it) ===")
    for line in spec.to_json().splitlines()[:6]:
        print(line)
    print("  ...")

    print()
    print("=== grid sweep: tracker x shard count ===")
    base = spec.with_overrides(
        {"transport.mode": "sync", "transport.latency": "zero",
         "transport.scale": 0.0, "engine": "auto"}
    )
    points = Sweep(
        base,
        {"tracker.name": ["deterministic", "randomized", "cormode"],
         "topology.shards": [1, 4]},
    ).run()
    for point in points:
        s = point.result.summary(base.tracker.epsilon)
        print(
            f"tracker={point.overrides['tracker.name']:<13} "
            f"shards={point.overrides['topology.shards']}  "
            f"messages={s['total_messages']:>6}  "
            f"max rel err={s['max_relative_error']:.4f}"
        )


if __name__ == "__main__":
    main()
