"""Latency sweep: what delivery delay does to a distributed tracker.

The paper's model delivers every site-to-coordinator message instantly; the
``repro.asynchrony`` subsystem asks what happens when it doesn't.  This
example distributes one biased random walk over ``k`` sites, then tracks it
with the Section 3.3 deterministic counter over the asynchronous transport at
increasing latency scales — the same stream, the same seeds, only the
network slows down.  The report shows the three effects latency has:

* **accuracy** — the time-averaged relative error and the fraction of steps
  violating the ``eps`` guarantee grow with the latency scale (the guarantee
  is proved for instant delivery only);
* **staleness** — the mean age of delivered messages tracks the latency
  scale, and the in-flight high-water mark shows how much of the protocol is
  airborne at once;
* **cost** — message counts *rise* with latency, because sites keep
  reporting against stale block levels the coordinator has already moved past.

The scale-0 row runs the identical zero-latency configuration that is
bit-for-bit equivalent to the synchronous engine, anchoring the sweep to the
paper's semantics.  A final FIFO-versus-reordering comparison shows what
adversarial delivery order adds on top of delay.

Run with::

    python examples/latency_sweep.py
"""

from __future__ import annotations

from repro import DeterministicCounter, assign_sites, variability
from repro.analysis import format_table, run_latency_sweep
from repro.streams import biased_walk_stream

EPSILON = 0.1
NUM_SITES = 8
LENGTH = 20_000
SCALES = [0.0, 1.0, 4.0, 16.0, 64.0]


def main() -> None:
    spec = biased_walk_stream(LENGTH, drift=0.5, seed=3)
    updates = assign_sites(spec, NUM_SITES)
    v = variability(spec.deltas)

    print("Latency sweep: deterministic tracker over the asynchronous transport")
    print(f"  stream           : biased walk, n={LENGTH}, v(n)={v:.1f}")
    print(f"  sites k          : {NUM_SITES}, epsilon: {EPSILON}")
    print(f"  latency model    : uniform jitter on [scale/2, 3*scale/2], seed 0")
    print(f"  scale 0          : zero latency == the paper's synchronous model")
    print()

    points = run_latency_sweep(
        lambda: DeterministicCounter(NUM_SITES, EPSILON),
        updates,
        epsilon=EPSILON,
        scales=SCALES,
        record_every=25,
        seed=0,
    )
    rows = [
        [
            point.scale,
            point.messages,
            round(point.time_avg_error, 4),
            round(point.violation_fraction, 3),
            round(point.staleness.mean_age, 2),
            round(point.staleness.p95_age, 2),
            point.staleness.inflight_highwater,
        ]
        for point in points
    ]
    print(
        format_table(
            [
                "latency scale",
                "messages",
                "time-avg err",
                "violation frac",
                "mean age",
                "p95 age",
                "in-flight hwm",
            ],
            rows,
        )
    )

    baseline, worst = points[0], points[-1]
    print()
    print(
        f"  scale {worst.scale:.0f} vs synchronous: "
        f"{worst.messages / max(baseline.messages, 1):.2f}x messages, "
        f"time-avg error {baseline.time_avg_error:.4f} -> {worst.time_avg_error:.4f}"
    )

    fifo, reordered = (
        run_latency_sweep(
            lambda: DeterministicCounter(NUM_SITES, EPSILON),
            updates,
            epsilon=EPSILON,
            scales=[8.0],
            record_every=25,
            seed=0,
            preserve_order=preserve,
        )[0]
        for preserve in (True, False)
    )
    print()
    print("FIFO links versus adversarial reordering at scale 8:")
    print(
        format_table(
            ["ordering", "messages", "time-avg err", "violation frac", "reordered"],
            [
                [
                    "per-link fifo",
                    fifo.messages,
                    round(fifo.time_avg_error, 4),
                    round(fifo.violation_fraction, 3),
                    fifo.staleness.reordered,
                ],
                [
                    "reordering",
                    reordered.messages,
                    round(reordered.time_avg_error, 4),
                    round(reordered.violation_fraction, 3),
                    reordered.staleness.reordered,
                ],
            ],
        )
    )


if __name__ == "__main__":
    main()
