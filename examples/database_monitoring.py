"""Database-size monitoring: the paper's motivating "nearly monotone" workload.

The introduction argues that many databases mostly grow — deletions happen
(clean-ups, expirations) but rarely dominate — so the size ``|D(t)|`` has low
variability and can be tracked cheaply even though the stream is not monotone.
This example monitors the size of a synthetic database with periodic bulk
clean-ups across a cluster of ingest nodes (sites), compares the paper's
deterministic tracker against the naive auditor and against the monotone-only
Cormode et al. counter (which silently loses its guarantee once deletions
appear), and shows how the cost tracks the variability rather than the stream
length.

Run with::

    python examples/database_monitoring.py
"""

from __future__ import annotations

from repro import (
    CormodeCounter,
    DeterministicCounter,
    NaiveCounter,
    assign_sites,
    database_size_trace,
    variability,
)
from repro.analysis import compare_trackers, format_table, monotone_variability_bound


def main() -> None:
    num_sites = 6  # ingest nodes
    epsilon = 0.05  # the auditor wants 5% accuracy at all times
    length = 80_000

    trace = database_size_trace(
        length,
        growth_probability=0.75,
        cleanup_every=7_500,
        cleanup_fraction=0.08,
        seed=2024,
    )
    v = variability(trace.deltas)

    print("Database-size monitoring across a cluster")
    print(f"  updates n          : {length}")
    print(f"  final size |D(n)|  : {trace.final_value()}")
    print(f"  variability v(n)   : {v:.1f}  (monotone bound would be {monotone_variability_bound(trace.final_value()):.1f})")
    print(f"  sites k            : {num_sites}, epsilon: {epsilon}")
    print()

    comparisons = compare_trackers(
        {
            "paper deterministic": DeterministicCounter(num_sites, epsilon),
            "cormode (monotone-only)": CormodeCounter(num_sites, epsilon),
            "naive auditing": NaiveCounter(num_sites),
        },
        trace,
        num_sites=num_sites,
        epsilon=epsilon,
        record_every=20,
    )
    rows = [
        [
            c.name,
            c.messages,
            f"{c.messages / length:.4f}",
            f"{c.max_relative_error:.4f}",
            f"{c.violation_fraction:.4f}",
        ]
        for c in comparisons
    ]
    print(
        format_table(
            ["algorithm", "messages", "msgs/update", "max relative error", "violation fraction"],
            rows,
        )
    )
    print()
    print("Reading the table:")
    print("  * the paper's tracker keeps the 5% guarantee at every step and costs a")
    print("    small fraction of naive auditing because the trace is nearly monotone;")
    print("  * the monotone-only counter is as cheap but breaks its guarantee whenever")
    print("    a clean-up shrinks the database below its stale estimate.")


if __name__ == "__main__":
    main()
