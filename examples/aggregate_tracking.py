"""Tracking a general aggregate (the second frequency moment) with one site.

Section 5.2 / Appendix I observe that when there is a single site, *any*
integer-valued aggregate ``f(D)`` can be tracked to ``eps`` relative error by
refreshing the coordinator whenever ``|f - fhat| > eps f``, at a cost of
``O(v/eps)`` messages where ``v`` is the f-variability — the site simply has to
be able to evaluate ``f``.  This example applies that tracker to the second
frequency moment ``F2 = sum_l f_l^2`` of an insert/delete item stream:

* the site evaluates ``F2`` exactly (and, for comparison, approximately with an
  AMS sketch, the small-space substrate a memory-constrained site would use);
* the coordinator is refreshed only when the relative-error budget is at risk;
* the number of refreshes is compared against the ``(1+eps)/eps * v`` bound.

``F2`` jumps by more than one per update (inserting an item of current
frequency ``c`` changes F2 by ``2c + 1``), which also exercises the tracker's
support for arbitrary integer deltas.

Run with::

    python examples/aggregate_tracking.py
"""

from __future__ import annotations

import collections

from repro import SingleSiteTracker, variability
from repro.analysis import format_table, single_site_message_bound
from repro.sketches.ams import AmsF2Sketch
from repro.streams import ItemStreamConfig, zipfian_item_stream


def main() -> None:
    epsilon = 0.1
    config = ItemStreamConfig(length=20_000, universe_size=300, num_sites=1, seed=17)
    updates = zipfian_item_stream(config, exponent=1.2, deletion_probability=0.25)

    frequencies: collections.Counter = collections.Counter()
    f2 = 0
    f2_deltas = []
    tracker = SingleSiteTracker(epsilon=epsilon)
    sketch = AmsF2Sketch.from_error(epsilon=0.2, seed=3)
    sketch_checkpoints = []

    for update in updates:
        current = frequencies[update.item]
        new = current + update.delta
        delta_f2 = new * new - current * current
        frequencies[update.item] = new
        f2 += delta_f2
        f2_deltas.append(delta_f2)
        tracker.update(delta_f2)
        sketch.update(update.item, update.delta)
        if update.time % 5_000 == 0:
            sketch_checkpoints.append((update.time, f2, sketch.estimate()))

    v = variability(f2_deltas)
    bound = single_site_message_bound(epsilon, v)

    print("Single-site tracking of a general aggregate: F2 of an insert/delete stream")
    print(f"  updates n              : {config.length}")
    print(f"  final F2               : {f2}")
    print(f"  F2-variability v(n)    : {v:.1f}")
    print(f"  epsilon                : {epsilon}")
    print()
    rows = [
        ["coordinator refreshes", tracker.messages],
        ["(1+eps)/eps * v bound", round(bound)],
        ["naive refreshes (every update)", config.length],
        ["final coordinator copy", tracker.estimate],
        ["final relative error", f"{abs(tracker.value - tracker.estimate) / max(tracker.value, 1):.4f}"],
    ]
    print(format_table(["quantity", "value"], rows))
    print()
    print("Small-space evaluation at the site (AMS sketch, eps ~ 0.2):")
    print(
        format_table(
            ["time", "exact F2", "AMS estimate", "relative error"],
            [
                [time, exact, round(estimate), f"{abs(estimate - exact) / exact:.3f}"]
                for time, exact, estimate in sketch_checkpoints
            ],
        )
    )
    print()
    print("F2 mostly grows (the dataset keeps gaining items), so its variability is")
    print("small and the coordinator needs only a few hundred refreshes for a 10%")
    print("guarantee — the Appendix I bound in action for a non-count aggregate.")


if __name__ == "__main__":
    main()
