"""Sensor-network monitoring: save radio energy with variability-aware tracking.

The distributed-monitoring model was introduced to minimise radio energy in
sensor networks: every message a sensor sends costs battery, so the goal is to
keep the base station's estimate fresh with as few transmissions as possible.
This example simulates a field of sensors observing a shared mean-reverting
signal (readings arrive at whichever sensor sees the event, heavily skewed
toward a hot sensor).  Because the signal hovers around a large baseline, its
variability is tiny and both Section 3 trackers keep the base station within
``eps`` while sending a small fraction of the naive per-reading traffic.

Run with::

    python examples/sensor_network.py
"""

from __future__ import annotations

from repro import DeterministicCounter, NaiveCounter, RandomizedCounter, assign_sites, variability
from repro.analysis import format_table
from repro.streams import SkewedAssignment, sensor_temperature_trace


def main() -> None:
    epsilon = 0.2
    length = 40_000
    trace = sensor_temperature_trace(length, baseline=5_000, reversion=0.01, seed=9)
    v = variability(trace.deltas)

    print("Sensor network: estimated reading at the base station")
    print(f"  updates n        : {length}")
    print(f"  signal baseline  : ~5000, variability v(n): {v:.1f}")
    print(f"  epsilon          : {epsilon}")
    print()

    rows = []
    for num_sites in (4, 16, 64):
        updates = assign_sites(
            trace, num_sites, policy=SkewedAssignment(hot_fraction=0.6, seed=1)
        )
        deterministic = DeterministicCounter(num_sites, epsilon).track(updates, record_every=25)
        randomized = RandomizedCounter(num_sites, epsilon, seed=5).track(updates, record_every=25)
        naive = NaiveCounter(num_sites).track(updates, record_every=25)
        rows.append(
            [
                num_sites,
                naive.total_messages,
                deterministic.total_messages,
                randomized.total_messages,
                f"{deterministic.max_relative_error():.4f}",
                f"{randomized.violation_fraction(epsilon):.4f}",
            ]
        )

    print(
        format_table(
            [
                "sensors k",
                "naive msgs",
                "deterministic msgs",
                "randomized msgs",
                "det max rel err",
                "rand violation frac",
            ],
            rows,
        )
    )
    print()
    print("Because the reading stays near its large baseline, v(n) is tiny and both")
    print("trackers transmit a few percent of the naive per-reading traffic — the")
    print("radio-energy saving the monitoring model was designed for.  The per-fleet")
    print("overhead grows with k only through the O(k v) block partition, not with n.")


if __name__ == "__main__":
    main()
