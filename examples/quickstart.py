"""Quickstart: track a non-monotonic counter across distributed sites.

This is the smallest end-to-end use of the library:

1. generate a stream (here a nearly monotone counter — inserts with a steady
   trickle of deletes, the workload the paper's introduction motivates),
2. spread it over ``k`` sites,
3. run the paper's deterministic tracker with relative error ``eps``,
4. inspect the error, the communication cost and how both relate to the
   stream's *variability* — the parameter the paper introduces.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DeterministicCounter,
    NaiveCounter,
    assign_sites,
    nearly_monotone_stream,
    variability,
)
from repro.analysis import deterministic_message_bound, format_table


def main() -> None:
    num_sites = 8
    epsilon = 0.1
    stream = nearly_monotone_stream(50_000, deletion_fraction=0.2, seed=7)
    v = variability(stream.deltas)

    updates = assign_sites(stream, num_sites)
    tracked = DeterministicCounter(num_sites, epsilon).track(updates, record_every=25)
    naive = NaiveCounter(num_sites).track(updates, record_every=25)

    print("Quickstart: deterministic variability-aware tracking")
    print(f"  stream             : {stream.describe()}")
    print(f"  final value f(n)   : {stream.final_value()}")
    print(f"  variability v(n)   : {v:.1f}")
    print(f"  sites k            : {num_sites}, epsilon: {epsilon}")
    print()
    rows = [
        [
            "paper deterministic",
            tracked.total_messages,
            f"{tracked.max_relative_error():.4f}",
            tracked.error_violations(epsilon),
        ],
        ["naive forwarding", naive.total_messages, f"{naive.max_relative_error():.4f}", 0],
    ]
    print(format_table(["algorithm", "messages", "max relative error", "violations"], rows))
    print()
    bound = deterministic_message_bound(num_sites, epsilon, v)
    print(f"  paper bound O(k v / eps)     : <= {bound:.0f} messages")
    print(f"  measured                     : {tracked.total_messages} messages")
    print(
        "  historical query f(25000)    : "
        f"estimate {tracked.history.query(25_000):.0f}, exact {stream.values()[24_999]}"
    )


if __name__ == "__main__":
    main()
