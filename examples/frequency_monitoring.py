"""Distributed heavy-hitter style frequency monitoring (Appendix H).

A fleet of edge caches observes item requests (insertions) and expirations
(deletions); the coordinator wants every item's live count to within
``eps * F1`` — good enough to spot heavy hitters — without shipping every
event.  This example runs the exact per-item tracker and the two sketched
variants (Count-Min hashing and the deterministic CR-precis) on a Zipfian
insert/delete workload and reports error, communication and per-site state.

Run with::

    python examples/frequency_monitoring.py
"""

from __future__ import annotations

import collections

from repro import CRPrecisReducer, FrequencyTracker, HashReducer, run_frequency_tracking
from repro.analysis import format_table
from repro.streams import ItemStreamConfig, zipfian_item_stream


def main() -> None:
    num_sites = 5
    epsilon = 0.2
    universe = 2_000
    config = ItemStreamConfig(length=20_000, universe_size=universe, num_sites=num_sites, seed=3)
    updates = zipfian_item_stream(config, exponent=1.3, deletion_probability=0.25)

    true_counts = collections.Counter()
    for update in updates:
        true_counts[update.item] += update.delta
    heavy_hitters = [item for item, count in true_counts.most_common(5)]

    print("Distributed frequency monitoring (insert/delete item stream)")
    print(f"  updates n   : {config.length}, universe |U|: {universe}")
    print(f"  sites k     : {num_sites}, epsilon: {epsilon}")
    print(f"  top items   : {heavy_hitters}")
    print()

    variants = {
        "exact per-item counters": None,
        "count-min reduction": HashReducer.from_epsilon(epsilon, num_rows=3, seed=11),
        "cr-precis reduction": CRPrecisReducer.from_epsilon(epsilon, universe_size=universe, rows=4),
    }
    rows = []
    for name, reducer in variants.items():
        tracker = FrequencyTracker(num_sites=num_sites, epsilon=epsilon, reducer=reducer)
        result = run_frequency_tracking(
            tracker, updates, audit_items=heavy_hitters, audit_every=500
        )
        if reducer is None:
            state = universe
        elif hasattr(reducer, "num_buckets"):
            state = reducer.num_buckets * reducer.num_rows
        else:
            state = sum(reducer.primes)
        rows.append(
            [
                name,
                result.total_messages,
                f"{result.max_error_ratio():.4f}",
                result.violations(epsilon),
                state,
            ]
        )

    print(
        format_table(
            ["variant", "messages", "max err / F1", "violations", "counters per site"],
            rows,
        )
    )
    print()
    print("The sketched variants keep per-site state independent of the universe size")
    print("while staying inside the eps * F1 error budget of Appendix H.")


if __name__ == "__main__":
    main()
