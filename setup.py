"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` (and the legacy
``python setup.py develop``) work on environments without the ``wheel``
package, such as fully offline machines.
"""

from setuptools import setup

setup()
