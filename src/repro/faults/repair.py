"""Turn on the sequence-numbered block-close repair across a topology.

The naive block protocol was designed for instant delivery: when a site
receives the close's BROADCAST it zeroes its per-block state, implicitly
assuming nothing happened since its REPLY.  Over a delayed (and worse, lossy
and retransmitting) transport that assumption fails — drift that arrives in
the reply-to-broadcast gap is silently discarded, and the coordinator's
boundary value drifts further from the truth with every close.  The repair
(:attr:`repro.core.template.BlockTrackingSite.repair_closes`) sequence-numbers
every close so a site can subtract *exactly what it replied* and keep the gap
drift for the next close's REPLY to carry into the boundary.

:func:`enable_close_repair` flips the flag on every block-tracking actor of a
network, descending through sharded/tree hierarchies, so both ends of every
leaf channel agree on the payload format.
"""

from __future__ import annotations

from repro.core.template import BlockTrackingCoordinator, BlockTrackingSite
from repro.exceptions import ConfigurationError

__all__ = ["enable_close_repair"]


def enable_close_repair(network) -> int:
    """Enable sequence-numbered block closes on every actor of ``network``.

    Descends recursively through :class:`~repro.monitoring.sharding.ShardedNetwork`
    hierarchies into each shard's inner network (the root aggregator exchanges
    no close protocol, so only the leaf networks are touched) and flags every
    :class:`~repro.core.template.BlockTrackingSite` and
    :class:`~repro.core.template.BlockTrackingCoordinator`.  Must be called
    before the run starts: flipping the payload format mid-protocol would
    desynchronise a close already in flight.

    Returns:
        The number of actors flagged (coordinator plus sites, per leaf).

    Raises:
        ConfigurationError: If the network contains no block-tracking actors
            to repair (e.g. a baseline tracker).
    """
    flagged = _flag(network)
    if flagged == 0:
        raise ConfigurationError(
            "close repair needs a block-tracking network; this network has "
            "no block-protocol actors to repair"
        )
    return flagged


def _flag(network) -> int:
    from repro.monitoring.sharding import ShardedNetwork

    if isinstance(network, ShardedNetwork):
        return sum(_flag(shard.network) for shard in network.shards)
    flagged = 0
    coordinator = getattr(network, "coordinator", None)
    if isinstance(coordinator, BlockTrackingCoordinator):
        coordinator.repair_closes = True
        flagged += 1
    for site in getattr(network, "sites", ()):
        if isinstance(site, BlockTrackingSite):
            site.repair_closes = True
            flagged += 1
    return flagged
