"""Fault injection and reliable delivery for the monitoring transport.

The subsystem has three layers, each usable on its own:

* :mod:`repro.faults.loss` — seeded per-link loss models (i.i.d. and
  Gilbert–Elliott burst loss).
* :mod:`repro.faults.channel` — :class:`FaultyChannel`, the asynchronous
  channel with loss injection plus an ARQ layer (timeouts, capped
  exponential-backoff retransmission, duplicate suppression), all charged
  exactly in :class:`repro.monitoring.channel.ChannelStats`.
* :mod:`repro.faults.repair` — the sequence-numbered block-close repair that
  keeps the tracking protocol's accuracy bound intact over a lossy network.

The spec layer exposes all of it as the ``transport.loss`` axis; see the
README's "Faults & reliability" section.
"""

from repro.faults.channel import (
    LOSS_MODEL_NAMES,
    FaultPlan,
    FaultyChannel,
    RetransmitPolicy,
)
from repro.faults.loss import (
    NO_LOSS,
    GilbertElliottLoss,
    IIDLoss,
    LossModel,
    NoLoss,
)
from repro.faults.repair import enable_close_repair

__all__ = [
    "LOSS_MODEL_NAMES",
    "FaultPlan",
    "FaultyChannel",
    "RetransmitPolicy",
    "LossModel",
    "NoLoss",
    "NO_LOSS",
    "IIDLoss",
    "GilbertElliottLoss",
    "enable_close_repair",
]
