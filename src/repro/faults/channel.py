"""Fault-injecting transport: lossy links plus reliable delivery.

:class:`FaultyChannel` extends the latency-aware asynchronous channel with a
seeded loss model and an ARQ (automatic repeat request) layer, so every
engine and topology runs unmodified over an unreliable network:

* Each transmission attempt rolls the loss model.  A dropped attempt never
  arrives; the sender's retransmission timer (capped exponential backoff)
  re-sends it until a copy gets through.
* A copy that is merely *slow* — its sampled latency exceeds the current
  retransmission timeout — triggers a spurious retransmission, and whichever
  copy lands second is suppressed by receiver-side duplicate detection.  The
  race is modelled honestly, not assumed away.
* Every attempt, including retransmissions, is charged through the ordinary
  accounting funnel at send time, so ``ChannelStats.messages``/``bits`` are
  the *exact* cost of reliability.  The reliability counters decompose the
  attempts; after a full drain they satisfy the conservation law
  ``retransmitted == dropped + duplicates`` (every extra attempt exists
  because an earlier one was lost or presumed lost).

The zero-loss plan is *inert by construction*: the channel delegates wholly
to :class:`~repro.asynchrony.channel.AsyncChannel`, making a ``loss=0``
faulty transport bit-for-bit identical to the plain asynchronous engine —
the same bridge-back contract as ``ConstantLatency(0)``'s inline delivery.
With any loss, the batched span fast path is disabled
(``supports_span_events`` is ``False``) so prepaid span aggregates never
bypass the per-message loss rolls.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional

import numpy as np

from repro.asynchrony.channel import AsyncChannel, Link
from repro.asynchrony.latency import ZERO_LATENCY, LatencyModel
from repro.exceptions import ConfigurationError
from repro.faults.loss import NO_LOSS, GilbertElliottLoss, IIDLoss, LossModel
from repro.monitoring.messages import COORDINATOR, Message, MessageKind

__all__ = ["RetransmitPolicy", "FaultPlan", "FaultyChannel", "LOSS_MODEL_NAMES"]

#: Spec-level names of the available loss models.
LOSS_MODEL_NAMES = ("iid", "burst")


@dataclass(frozen=True)
class RetransmitPolicy:
    """Capped exponential backoff for the sender-side retransmission timers.

    Attempt ``i`` (0-based) arms a timer ``min(timeout * backoff**i,
    max_timeout)`` virtual-time units after it is sent; if no copy of the
    message has been delivered when the timer fires, the sender charges and
    sends a fresh copy.  Timeouts are in the same virtual-time units as the
    latency models (one stream timestep).
    """

    timeout: float = 4.0
    backoff: float = 2.0
    max_timeout: float = 64.0

    def __post_init__(self) -> None:
        if not self.timeout > 0.0:
            raise ConfigurationError(
                f"retransmit timeout must be > 0, got {self.timeout}"
            )
        if not self.backoff >= 1.0:
            raise ConfigurationError(
                f"retransmit backoff must be >= 1, got {self.backoff}"
            )
        if not self.max_timeout >= self.timeout:
            raise ConfigurationError(
                f"max timeout ({self.max_timeout}) must be >= the base "
                f"timeout ({self.timeout})"
            )

    def rto(self, attempt: int) -> float:
        """Retransmission timeout armed for 0-based attempt ``attempt``."""
        return min(self.timeout * self.backoff**attempt, self.max_timeout)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults injected into one run.

    One plan describes the whole network; the builders derive a per-channel
    plan by re-seeding (:meth:`with_seed`), mirroring how latency seeds are
    derived, and each channel builds its *own* loss-model instance
    (:meth:`build_model`) because the burst model keeps per-link chain state.

    Attributes:
        loss: Long-run drop probability per transmission attempt, in
            ``[0, 1)``.  Zero makes the plan inert.
        model: ``"iid"`` (memoryless) or ``"burst"`` (Gilbert–Elliott).
        burst_length: Mean bad-spell length for the burst model, in attempts.
        seed: Seed for the loss generator (kept separate from the latency
            generator so loss and jitter are independently reproducible).
        kinds: Message kinds the loss applies to, or ``None`` for all four;
            exempt kinds travel the plain latency-only path.
        retransmit: Timer policy for the reliable-delivery layer.
    """

    loss: float = 0.0
    model: str = "iid"
    burst_length: float = 4.0
    seed: Optional[int] = 0
    kinds: Optional[FrozenSet[MessageKind]] = None
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ConfigurationError(
                f"loss rate must be in [0, 1) so retransmission can "
                f"terminate, got {self.loss}"
            )
        if self.model not in LOSS_MODEL_NAMES:
            raise ConfigurationError(
                f"unknown loss model {self.model!r}; choose one of "
                f"{', '.join(LOSS_MODEL_NAMES)}"
            )
        if self.kinds is not None:
            kinds = frozenset(self.kinds)
            if not kinds:
                raise ConfigurationError(
                    "a loss plan restricted to no message kinds is "
                    "meaningless; use loss=0 (or kinds=None) instead"
                )
            for kind in kinds:
                if not isinstance(kind, MessageKind):
                    raise ConfigurationError(
                        f"loss plan kinds must be MessageKind values, "
                        f"got {kind!r}"
                    )
            object.__setattr__(self, "kinds", kinds)
        # Validate burst parameters eagerly, not at first channel build.
        self.build_model()

    @property
    def lossless(self) -> bool:
        """Whether this plan can never drop anything (inert fast path)."""
        return self.loss == 0.0

    def build_model(self) -> LossModel:
        """Build a fresh loss-model instance (per-link state included)."""
        if self.loss == 0.0:
            return NO_LOSS
        if self.model == "burst":
            return GilbertElliottLoss(self.loss, self.burst_length)
        return IIDLoss(self.loss)

    def with_seed(self, seed: Optional[int]) -> "FaultPlan":
        """This plan re-seeded for one node of a multi-channel topology."""
        return dataclasses.replace(self, seed=seed)


class _ReliableTransfer:
    """One logical message moving through the ARQ layer.

    Scheduled attempt copies carry the transfer itself as their event
    payload; it quacks like :class:`InFlightMessage` (message, handler, link,
    link_order, sent_at) so the base channel's ``_deliver`` — staleness,
    reordering and observer bookkeeping included — runs unchanged on the
    winning copy.  ``sent_at`` stays the *first* attempt's send time, so
    delivery ages honestly include retransmission delay.
    """

    __slots__ = ("message", "handler", "link", "link_order", "sent_at",
                 "attempts", "delivered")

    def __init__(
        self,
        message: Message,
        handler: Callable[[Message], None],
        link: Link,
        link_order: int,
        sent_at: float,
    ) -> None:
        self.message = message
        self.handler = handler
        self.link = link
        self.link_order = link_order
        self.sent_at = sent_at
        self.attempts = 0
        self.delivered = False


class _RetransmitTimer:
    """A pending retransmission deadline for one transfer."""

    __slots__ = ("transfer",)

    def __init__(self, transfer: _ReliableTransfer) -> None:
        self.transfer = transfer


class FaultyChannel(AsyncChannel):
    """An asynchronous channel whose links drop messages — reliably repaired.

    See the module docstring for the delivery model.  The channel shares the
    event queue with its in-flight messages: retransmission timers count
    toward :attr:`in_flight`, which is what makes the hierarchy's
    drain-until-quiescent loops wait for pending retransmissions instead of
    declaring victory while a message is still presumed lost.
    """

    def __init__(
        self,
        num_sites: int,
        latency: LatencyModel = ZERO_LATENCY,
        seed: Optional[int] = 0,
        preserve_order: bool = True,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(num_sites, latency, seed, preserve_order)
        self._plan = plan if plan is not None else FaultPlan()
        self._loss = self._plan.build_model()
        self._loss_rng = np.random.default_rng(self._plan.seed)
        self._policy = self._plan.retransmit
        self._kinds = self._plan.kinds
        self._inert = self._plan.lossless

    @property
    def plan(self) -> FaultPlan:
        """The fault plan this channel injects."""
        return self._plan

    @property
    def supports_span_events(self) -> bool:
        """Bulk span scheduling is only sound when the plan is inert.

        A prepaid span aggregate stands for many already-charged messages;
        letting it roll the loss model once would drop (or retransmit) the
        whole span as a unit, which is not the per-message semantics the
        loss models promise.  With loss enabled the engines fall back to
        per-update replay, so every report takes its own roll.
        """
        return self._inert

    # -- ARQ send path --------------------------------------------------------

    def _transmit(
        self,
        message: Message,
        handler: Callable[[Message], None],
        link: Link,
        delay: float,
    ) -> None:
        """Route one charged transmission through the ARQ layer.

        Inert plans (and kinds the plan exempts) take the base channel's
        path unchanged — that delegation *is* the ``loss=0`` bit-for-bit
        identity contract.
        """
        if self._inert or (self._kinds is not None and message.kind not in self._kinds):
            super()._transmit(message, handler, link, delay)
            return
        order = self._link_sent.get(link, 0)
        self._link_sent[link] = order + 1
        transfer = _ReliableTransfer(
            message=message,
            handler=handler,
            link=link,
            link_order=order,
            sent_at=self._clock,
        )
        self._launch(transfer, delay)

    def _launch(self, transfer: _ReliableTransfer, delay: float) -> None:
        """Roll loss for one attempt; schedule its copy and/or its timer."""
        now = self._clock
        link = transfer.link
        timer_due = now + self._policy.rto(transfer.attempts)
        transfer.attempts += 1
        if self._loss.roll(self._loss_rng, link):
            # The copy vanishes on the wire: it was charged, it is never
            # delivered, and the armed timer will re-send it.
            self.stats.record_dropped(transfer.message)
            self._scheduler.push(timer_due, _RetransmitTimer(transfer))
            return
        delay = max(0.0, float(delay))
        fifo_clear = not self._preserve_order or self._link_pending.get(link, 0) == 0
        if delay == 0.0 and fifo_clear:
            self._arrive(transfer, now)
            return
        due = now + delay
        if self._preserve_order:
            due = max(due, self._link_front.get(link, 0.0))
            self._link_front[link] = due
        self._link_pending[link] = self._link_pending.get(link, 0) + 1
        self._scheduler.push(due, transfer)
        self.inflight_highwater = max(self.inflight_highwater, len(self._scheduler))
        if due > timer_due:
            # The copy is slower than the timeout: the sender will presume
            # it lost and retransmit, so the slow copy's eventual arrival
            # produces an honest duplicate.
            self._scheduler.push(timer_due, _RetransmitTimer(transfer))

    def _arrive(self, transfer: _ReliableTransfer, at: float) -> None:
        """One copy reaches the receiver: deliver first, suppress the rest."""
        if transfer.delivered:
            self._clock = max(self._clock, at)
            self.stats.record_duplicate(transfer.message)
            return
        transfer.delivered = True
        self._deliver(transfer, at)

    def _fire_timer(self, transfer: _ReliableTransfer, at: float) -> None:
        """Retransmission deadline: re-send unless a copy already landed."""
        if transfer.delivered:
            return
        self._clock = max(self._clock, at)
        self._account(transfer.message)
        self.stats.record_retransmit(transfer.message)
        direction, site = transfer.link
        if direction == "up":
            delay = self._latency.sample(self._rng, site, COORDINATOR)
        else:
            delay = self._latency.sample(self._rng, COORDINATOR, site)
        self._launch(transfer, delay)

    # -- event-loop dispatch --------------------------------------------------

    def _handle(self, event) -> None:
        payload = event.payload
        if type(payload) is _RetransmitTimer:
            self._fire_timer(payload.transfer, event.due)
        elif type(payload) is _ReliableTransfer:
            self._link_pending[payload.link] -= 1
            self._arrive(payload, event.due)
        else:
            # Plain in-flight message from an exempt-kind transmission.
            self._link_pending[payload.link] -= 1
            self._deliver(payload, event.due)

    def advance_to(self, until: float) -> None:
        if self._inert:
            super().advance_to(until)
            return
        until = float(until)
        for event in self._scheduler.pop_due(until):
            self._handle(event)
        self._clock = max(self._clock, until)

    def drain(self) -> float:
        if self._inert:
            return super().drain()
        for event in self._scheduler.pop_all():
            self._handle(event)
        return self._clock
