"""Seeded, per-link loss models for the fault-injecting transport.

A loss model answers one question per transmission attempt: is *this* copy
dropped?  Like the latency models it is a pure function of seeded generator
draws and the link, so a lossy run is reproducible from its seeds.  Two
models cover the regimes the related federated-deployment work measures:

* :class:`IIDLoss` — every attempt is dropped independently with a fixed
  probability, the memoryless baseline.
* :class:`GilbertElliottLoss` — a two-state Markov chain per directed link
  (good/bad); attempts are dropped exactly while the link sits in the bad
  state, so losses arrive in bursts of mean length ``burst_length`` while the
  long-run drop rate still equals ``rate``.

``rate`` must stay below 1: the reliable-delivery layer retransmits until a
copy gets through, which terminates with probability 1 only when some
attempts can survive.
"""

from __future__ import annotations

from typing import Dict, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["LossModel", "NoLoss", "IIDLoss", "GilbertElliottLoss", "NO_LOSS"]

#: A directed link, as the async channel labels them: ("up", site) or
#: ("down", site).
Link = Tuple[str, int]


@runtime_checkable
class LossModel(Protocol):
    """Protocol for per-attempt drop decisions.

    Implementations may keep per-link state (the Gilbert–Elliott chains do),
    so one instance must never be shared between channels — the
    :class:`repro.faults.channel.FaultPlan` builds a fresh model per channel.
    """

    @property
    def lossless(self) -> bool:
        """Whether this model can never drop (enables the inert fast path)."""
        ...

    def roll(self, rng: np.random.Generator, link: Link) -> bool:
        """Return ``True`` iff this transmission attempt on ``link`` is lost."""
        ...


class NoLoss:
    """The degenerate model: nothing is ever dropped, no generator draws."""

    @property
    def lossless(self) -> bool:
        return True

    def roll(self, rng: np.random.Generator, link: Link) -> bool:
        return False


#: Shared stateless instance of the degenerate model.
NO_LOSS = NoLoss()


def _check_rate(rate: float) -> float:
    if not 0.0 <= rate < 1.0:
        raise ConfigurationError(
            f"loss rate must be in [0, 1) so retransmission can terminate, "
            f"got {rate}"
        )
    return float(rate)


class IIDLoss:
    """Each transmission attempt is dropped independently with ``rate``."""

    def __init__(self, rate: float) -> None:
        self.rate = _check_rate(rate)

    @property
    def lossless(self) -> bool:
        return self.rate == 0.0

    def roll(self, rng: np.random.Generator, link: Link) -> bool:
        if self.rate == 0.0:
            return False
        return bool(rng.random() < self.rate)


class GilbertElliottLoss:
    """Bursty loss: a two-state (good/bad) Markov chain per directed link.

    An attempt is dropped exactly while its link is in the bad state.  The
    chain is parameterised by the *long-run* drop rate and the mean burst
    length: ``P(bad -> good) = 1 / burst_length`` makes bad spells
    geometrically distributed with mean ``burst_length`` attempts, and
    ``P(good -> bad) = rate / ((1 - rate) * burst_length)`` pins the
    stationary bad-state probability at ``rate``.  Links start in the good
    state and evolve independently (state is kept per link), so a burst on
    one site's uplink never implies losses elsewhere.
    """

    def __init__(self, rate: float, burst_length: float = 4.0) -> None:
        self.rate = _check_rate(rate)
        if not burst_length >= 1.0:
            raise ConfigurationError(
                f"mean burst length must be >= 1 attempt, got {burst_length}"
            )
        self.burst_length = float(burst_length)
        self._recover = 1.0 / self.burst_length
        if self.rate == 0.0:
            self._degrade = 0.0
        else:
            self._degrade = self.rate / ((1.0 - self.rate) * self.burst_length)
            if self._degrade > 1.0:
                raise ConfigurationError(
                    f"burst model infeasible: rate={self.rate} with mean burst "
                    f"length {self.burst_length} needs P(good->bad) = "
                    f"{self._degrade:.3f} > 1; lower the rate or lengthen the "
                    "bursts"
                )
        # Per-link chain state: True while the link is in the bad state.
        self._bad: Dict[Link, bool] = {}

    @property
    def lossless(self) -> bool:
        return self.rate == 0.0

    def roll(self, rng: np.random.Generator, link: Link) -> bool:
        if self.rate == 0.0:
            return False
        bad = self._bad.get(link, False)
        flip = self._recover if bad else self._degrade
        if rng.random() < flip:
            bad = not bad
        self._bad[link] = bad
        return bad
