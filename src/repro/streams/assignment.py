"""Policies for assigning stream updates to sites.

In the distributed monitoring model every update arrives at exactly one of
``k`` sites.  The paper's bounds hold for any (adversarial) assignment, so the
experiments exercise several policies: round robin, uniform random, skewed
(one hot site receives most updates), blocked (contiguous runs per site, the
batch-friendly shape of sharded ingestion), and the degenerate single-site
case used for the Appendix I tracker.

For very long streams, :func:`assign_sites_iter` yields the assigned updates
lazily so the runner's streaming engine can consume them without ever
materialising the update list.
"""

from __future__ import annotations

from itertools import repeat
from typing import Iterator, Optional, Protocol, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.model import StreamSpec, deltas_to_updates
from repro.types import Update

__all__ = [
    "AssignmentPolicy",
    "RoundRobinAssignment",
    "RandomAssignment",
    "SkewedAssignment",
    "BlockedAssignment",
    "SingleSiteAssignment",
    "assign_sites",
    "assign_sites_iter",
]


class AssignmentPolicy(Protocol):
    """Protocol for policies mapping timesteps to site identifiers."""

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        """Return the destination site for each of ``n`` timesteps."""


def _check_sites(num_sites: int) -> None:
    if num_sites < 1:
        raise ConfigurationError(f"number of sites must be >= 1, got {num_sites}")


class RoundRobinAssignment:
    """Assign update ``t`` to site ``(t - 1) mod k``."""

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        _check_sites(num_sites)
        return [(t - 1) % num_sites for t in range(1, n + 1)]

    def assign_iter(self, n: int, num_sites: int) -> Iterator[int]:
        """Lazy variant of :meth:`assign`; yields the identical sequence."""
        _check_sites(num_sites)
        return ((t - 1) % num_sites for t in range(1, n + 1))


class RandomAssignment:
    """Assign each update to a uniformly random site."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        _check_sites(num_sites)
        rng = np.random.default_rng(self._seed)
        return [int(s) for s in rng.integers(0, num_sites, size=n)]


class SkewedAssignment:
    """Send a fixed fraction of updates to site 0 and spread the rest uniformly.

    Models a sensor network in which one sensor observes most of the activity,
    which is the regime where per-site thresholds matter most.
    """

    def __init__(self, hot_fraction: float = 0.8, seed: Optional[int] = None) -> None:
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        self._hot_fraction = hot_fraction
        self._seed = seed

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        _check_sites(num_sites)
        rng = np.random.default_rng(self._seed)
        sites = []
        for _ in range(n):
            if num_sites == 1 or rng.random() < self._hot_fraction:
                sites.append(0)
            else:
                sites.append(int(rng.integers(1, num_sites)))
        return sites


class BlockedAssignment:
    """Round-robin over contiguous blocks of ``block_length`` updates.

    Models sharded ingestion, where each site observes (and forwards) a
    buffer of consecutive updates at a time.  This is the batch-friendly
    regime of the streaming engine: every site receives long contiguous runs,
    so :meth:`repro.monitoring.network.MonitoringNetwork.deliver_batch` can
    absorb them in closed form.  The paper's guarantees hold for any
    assignment, so blocked assignment changes performance, never correctness.
    """

    def __init__(self, block_length: int = 1024) -> None:
        if block_length < 1:
            raise ConfigurationError(
                f"block_length must be >= 1, got {block_length}"
            )
        self._block_length = block_length

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        _check_sites(num_sites)
        block = self._block_length
        return [(t // block) % num_sites for t in range(n)]

    def assign_iter(self, n: int, num_sites: int) -> Iterator[int]:
        """Lazy variant of :meth:`assign`; yields the identical sequence."""
        _check_sites(num_sites)
        block = self._block_length
        return ((t // block) % num_sites for t in range(n))


class SingleSiteAssignment:
    """Send every update to site 0 (the ``k = 1`` setting of Section 5.2)."""

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        _check_sites(num_sites)
        return [0] * n

    def assign_iter(self, n: int, num_sites: int) -> Iterator[int]:
        """Lazy variant of :meth:`assign`; yields the identical sequence."""
        _check_sites(num_sites)
        return repeat(0, n)


def assign_sites(
    spec: StreamSpec,
    num_sites: int,
    policy: Optional[AssignmentPolicy] = None,
) -> list:
    """Attach site destinations to a stream, producing :class:`Update` objects.

    Args:
        spec: The stream to distribute.
        num_sites: Number of sites ``k``.
        policy: Assignment policy; defaults to round robin, which is both
            deterministic and maximally spread out.

    Returns:
        A list of :class:`repro.types.Update` covering every timestep of the
        stream.
    """
    chosen = policy if policy is not None else RoundRobinAssignment()
    sites = chosen.assign(spec.length, num_sites)
    return deltas_to_updates(spec.deltas, sites)


def assign_sites_iter(
    spec: StreamSpec,
    num_sites: int,
    policy: Optional[AssignmentPolicy] = None,
) -> Iterator[Update]:
    """Lazily yield the assigned updates of a stream, one at a time.

    Streaming companion of :func:`assign_sites` for feeding
    :func:`repro.monitoring.runner.run_tracking` (which accepts any iterable
    and never calls ``len()``): the :class:`repro.types.Update` objects are
    created on demand instead of being materialised as one list.  Policies
    that are pure functions of the timestep (round robin, blocked, single
    site) expose an ``assign_iter`` method and are consumed lazily too, so
    nothing per-update is materialised at all; stateful policies (random,
    skewed) fall back to their eager ``assign``, which keeps the site
    sequence identical to :func:`assign_sites` for the same policy instance.
    """
    chosen = policy if policy is not None else RoundRobinAssignment()
    assign_lazy = getattr(chosen, "assign_iter", None)
    if assign_lazy is not None:
        sites = assign_lazy(spec.length, num_sites)
    else:
        sites = chosen.assign(spec.length, num_sites)
    for time, (delta, site) in enumerate(zip(spec.deltas, sites), start=1):
        yield Update(time=time, site=int(site), delta=int(delta))
