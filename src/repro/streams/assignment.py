"""Policies for assigning stream updates to sites.

In the distributed monitoring model every update arrives at exactly one of
``k`` sites.  The paper's bounds hold for any (adversarial) assignment, so the
experiments exercise several policies: round robin, uniform random, skewed
(one hot site receives most updates), and the degenerate single-site case used
for the Appendix I tracker.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.model import StreamSpec, deltas_to_updates
from repro.types import Update

__all__ = [
    "AssignmentPolicy",
    "RoundRobinAssignment",
    "RandomAssignment",
    "SkewedAssignment",
    "SingleSiteAssignment",
    "assign_sites",
]


class AssignmentPolicy(Protocol):
    """Protocol for policies mapping timesteps to site identifiers."""

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        """Return the destination site for each of ``n`` timesteps."""


def _check_sites(num_sites: int) -> None:
    if num_sites < 1:
        raise ConfigurationError(f"number of sites must be >= 1, got {num_sites}")


class RoundRobinAssignment:
    """Assign update ``t`` to site ``(t - 1) mod k``."""

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        _check_sites(num_sites)
        return [(t - 1) % num_sites for t in range(1, n + 1)]


class RandomAssignment:
    """Assign each update to a uniformly random site."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        _check_sites(num_sites)
        rng = np.random.default_rng(self._seed)
        return [int(s) for s in rng.integers(0, num_sites, size=n)]


class SkewedAssignment:
    """Send a fixed fraction of updates to site 0 and spread the rest uniformly.

    Models a sensor network in which one sensor observes most of the activity,
    which is the regime where per-site thresholds matter most.
    """

    def __init__(self, hot_fraction: float = 0.8, seed: Optional[int] = None) -> None:
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        self._hot_fraction = hot_fraction
        self._seed = seed

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        _check_sites(num_sites)
        rng = np.random.default_rng(self._seed)
        sites = []
        for _ in range(n):
            if num_sites == 1 or rng.random() < self._hot_fraction:
                sites.append(0)
            else:
                sites.append(int(rng.integers(1, num_sites)))
        return sites


class SingleSiteAssignment:
    """Send every update to site 0 (the ``k = 1`` setting of Section 5.2)."""

    def assign(self, n: int, num_sites: int) -> Sequence[int]:
        _check_sites(num_sites)
        return [0] * n


def assign_sites(
    spec: StreamSpec,
    num_sites: int,
    policy: Optional[AssignmentPolicy] = None,
) -> list:
    """Attach site destinations to a stream, producing :class:`Update` objects.

    Args:
        spec: The stream to distribute.
        num_sites: Number of sites ``k``.
        policy: Assignment policy; defaults to round robin, which is both
            deterministic and maximally spread out.

    Returns:
        A list of :class:`repro.types.Update` covering every timestep of the
        stream.
    """
    chosen = policy if policy is not None else RoundRobinAssignment()
    sites = chosen.assign(spec.length, num_sites)
    return deltas_to_updates(spec.deltas, sites)
