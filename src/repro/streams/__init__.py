"""Stream workload generators.

The experiments in the paper are driven by synthetic update streams: monotone
counters, nearly-monotone counters, symmetric and biased random walks, and
adversarial "flip" families.  This package generates all of them, plus
insert/delete item streams for frequency tracking and synthetic traces that
mimic the database-size and sensor-network scenarios the paper's introduction
motivates.
"""

from repro.streams.assignment import (
    BlockedAssignment,
    RandomAssignment,
    RoundRobinAssignment,
    SkewedAssignment,
    SingleSiteAssignment,
    assign_sites,
    assign_sites_iter,
)
from repro.streams.generators import (
    adversarial_flip_stream,
    biased_walk_stream,
    bursty_stream,
    constant_stream,
    monotone_stream,
    nearly_monotone_stream,
    oscillating_stream,
    periodic_stream,
    random_walk_stream,
    sawtooth_stream,
    sign_alternating_stream,
)
from repro.streams.io import (
    TraceColumns,
    columns_from_updates,
    load_item_stream_csv,
    load_stream_csv,
    load_trace,
    load_trace_columns,
    load_trace_npz,
    reset_trace_open_counts,
    save_item_stream_csv,
    save_stream_csv,
    save_trace_csv,
    save_trace_npz,
    trace_open_counts,
)
from repro.streams.item_streams import (
    ItemStreamConfig,
    sliding_window_item_stream,
    zipfian_item_stream,
)
from repro.streams.model import StreamSpec, deltas_to_updates, updates_to_deltas
from repro.streams.traces import database_size_trace, sensor_temperature_trace

__all__ = [
    "BlockedAssignment",
    "RandomAssignment",
    "RoundRobinAssignment",
    "SkewedAssignment",
    "SingleSiteAssignment",
    "assign_sites",
    "assign_sites_iter",
    "adversarial_flip_stream",
    "biased_walk_stream",
    "bursty_stream",
    "constant_stream",
    "monotone_stream",
    "nearly_monotone_stream",
    "oscillating_stream",
    "periodic_stream",
    "random_walk_stream",
    "sawtooth_stream",
    "sign_alternating_stream",
    "TraceColumns",
    "columns_from_updates",
    "load_item_stream_csv",
    "load_stream_csv",
    "load_trace",
    "load_trace_columns",
    "load_trace_npz",
    "reset_trace_open_counts",
    "trace_open_counts",
    "save_item_stream_csv",
    "save_stream_csv",
    "save_trace_csv",
    "save_trace_npz",
    "ItemStreamConfig",
    "sliding_window_item_stream",
    "zipfian_item_stream",
    "StreamSpec",
    "deltas_to_updates",
    "updates_to_deltas",
    "database_size_trace",
    "sensor_temperature_trace",
]
