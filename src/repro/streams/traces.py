"""Synthetic traces that mimic the application scenarios in the introduction.

The paper motivates distributed monitoring with sensor networks and
network-traffic / database auditing.  Real traces from those settings are not
distributed with the paper, so we synthesise traces with the same qualitative
behaviour: a database-size trace that mostly grows but absorbs periodic
clean-ups, and a sensor trace driven by a mean-reverting walk.  Both produce
unit (``+-1``) update streams so they can be fed directly to the Section 3
trackers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.model import StreamSpec

__all__ = ["database_size_trace", "sensor_temperature_trace"]


def database_size_trace(
    n: int,
    growth_probability: float = 0.7,
    cleanup_every: int = 5000,
    cleanup_fraction: float = 0.05,
    seed: Optional[int] = None,
) -> StreamSpec:
    """Size of a growing database with periodic bulk clean-ups.

    Most timesteps insert a row with probability ``growth_probability`` (and
    otherwise delete one, if any exist).  Every ``cleanup_every`` steps a
    clean-up phase begins that deletes ``cleanup_fraction`` of the current
    rows, one per timestep.  The resulting stream is nearly monotone in the
    sense of Theorem 2.1, so its variability is polylogarithmic.

    Args:
        n: Number of timesteps.
        growth_probability: Probability that a normal step is an insertion.
        cleanup_every: Interval (in steps) between clean-up phases.
        cleanup_fraction: Fraction of current rows removed per clean-up.
        seed: Seed for reproducibility.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if not 0.5 < growth_probability <= 1.0:
        raise ConfigurationError(
            f"growth_probability must be in (0.5, 1], got {growth_probability}"
        )
    if cleanup_every < 1:
        raise ConfigurationError(f"cleanup_every must be >= 1, got {cleanup_every}")
    if not 0.0 <= cleanup_fraction < 1.0:
        raise ConfigurationError(
            f"cleanup_fraction must be in [0, 1), got {cleanup_fraction}"
        )
    rng = np.random.default_rng(seed)
    deltas = []
    size = 0
    cleanup_remaining = 0
    for t in range(1, n + 1):
        if cleanup_remaining == 0 and cleanup_every > 0 and t % cleanup_every == 0:
            cleanup_remaining = int(size * cleanup_fraction)
        if cleanup_remaining > 0 and size > 0:
            delta = -1
            cleanup_remaining -= 1
        elif size > 0 and rng.random() >= growth_probability:
            delta = -1
        else:
            delta = 1
        size += delta
        deltas.append(delta)
    return StreamSpec(
        name="database_size",
        deltas=tuple(deltas),
        params={
            "n": n,
            "growth_probability": growth_probability,
            "cleanup_every": cleanup_every,
            "cleanup_fraction": cleanup_fraction,
            "seed": seed,
        },
    )


def sensor_temperature_trace(
    n: int,
    baseline: int = 200,
    reversion: float = 0.02,
    seed: Optional[int] = None,
) -> StreamSpec:
    """A mean-reverting sensor reading emitted as unit updates.

    The reading performs a random walk pulled back toward ``baseline``; the
    first ``baseline`` steps ramp the value up from zero so that the stream
    starts at ``f(0) = 0`` as the paper assumes.  Because the value stays close
    to ``baseline``, the variability per step is about ``1 / baseline`` and the
    total variability grows like ``n / baseline`` — an easy but non-monotone
    workload that sits between the random-walk and nearly-monotone classes.

    Args:
        n: Number of timesteps.
        baseline: The level the reading reverts to.
        reversion: Strength of the pull toward the baseline, in ``[0, 1]``.
        seed: Seed for reproducibility.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if baseline < 1:
        raise ConfigurationError(f"baseline must be >= 1, got {baseline}")
    if not 0.0 <= reversion <= 1.0:
        raise ConfigurationError(f"reversion must be in [0, 1], got {reversion}")
    rng = np.random.default_rng(seed)
    deltas = []
    value = 0
    for t in range(1, n + 1):
        if t <= baseline:
            delta = 1
        else:
            pull = reversion * (baseline - value)
            p_up = min(max(0.5 + pull, 0.05), 0.95)
            delta = 1 if rng.random() < p_up else -1
        value += delta
        deltas.append(delta)
    return StreamSpec(
        name="sensor_temperature",
        deltas=tuple(deltas),
        params={"n": n, "baseline": baseline, "reversion": reversion, "seed": seed},
    )
