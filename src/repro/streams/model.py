"""Stream specification and conversion helpers.

A stream in the paper is a sequence of integer deltas ``f'(1..n)``; in the
distributed model each delta additionally carries the site it arrives at.
:class:`StreamSpec` bundles a delta sequence with metadata that the experiment
harness uses for reporting (a human-readable name and the generator
parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import StreamError
from repro.types import Update, prefix_sums

__all__ = ["StreamSpec", "deltas_to_updates", "updates_to_deltas"]


@dataclass(frozen=True)
class StreamSpec:
    """A named update stream together with its generator parameters.

    Attributes:
        name: Human-readable identifier, e.g. ``"random_walk"``.
        deltas: The per-timestep changes ``f'(1..n)``.
        start: The initial value ``f(0)``.
        params: Generator parameters, recorded for experiment reports.
    """

    name: str
    deltas: tuple
    start: int = 0
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "deltas", tuple(int(d) for d in self.deltas))

    @property
    def length(self) -> int:
        """Number of timesteps ``n`` in the stream."""
        return len(self.deltas)

    def values(self) -> list:
        """Return the value sequence ``f(1..n)``."""
        return list(prefix_sums(self.deltas, start=self.start))

    def final_value(self) -> int:
        """Return ``f(n)``, the value after the last update."""
        return self.start + sum(self.deltas)

    def is_unit_stream(self) -> bool:
        """Return whether every delta is ``+-1`` (required by Section 3)."""
        return all(d in (-1, 1) for d in self.deltas)

    def describe(self) -> str:
        """Return a one-line description used in experiment reports."""
        param_text = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}(n={self.length}{', ' + param_text if param_text else ''})"


def deltas_to_updates(
    deltas: Sequence[int],
    sites: Sequence[int],
) -> list:
    """Pair each delta with its destination site, producing :class:`Update` objects.

    Args:
        deltas: The per-timestep changes ``f'(1..n)``.
        sites: The destination site for each timestep; must have the same length.

    Returns:
        A list of :class:`repro.types.Update`, one per timestep.

    Raises:
        StreamError: If the two sequences have different lengths.
    """
    if len(deltas) != len(sites):
        raise StreamError(
            f"deltas ({len(deltas)}) and sites ({len(sites)}) must have equal length"
        )
    return [
        Update(time=t, site=int(site), delta=int(delta))
        for t, (delta, site) in enumerate(zip(deltas, sites), start=1)
    ]


def updates_to_deltas(updates: Sequence[Update]) -> list:
    """Project a sequence of updates back to its bare delta sequence."""
    return [u.delta for u in updates]
