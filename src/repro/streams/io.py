"""Persistence for streams: save and load workloads as CSV files.

Experiments become much easier to audit when the exact workload can be written
to disk and replayed later (or fed to an external system).  These helpers
round-trip the two stream kinds the library uses — scalar delta streams
(:class:`~repro.streams.model.StreamSpec`) and item insert/delete streams —
through small, human-readable CSV files.

For replayed *distributed* traces there is additionally a columnar path:
:func:`save_trace_csv` / :func:`load_trace_columns` round-trip a full
``time,site,delta`` trace as three NumPy arrays (:class:`TraceColumns`),
which :func:`repro.monitoring.runner.run_tracking_arrays` feeds to
``deliver_batch`` directly — no per-:class:`~repro.types.Update` object is
ever constructed on the replay hot path.  For traces too large for CSV
parsing, :func:`save_trace_npz` / :func:`load_trace_npz` store the same
columns as an uncompressed binary archive that can be *memory-mapped* in
place (``mmap_mode``), so replay cost starts at the first delivered slice
rather than at a full parse; :func:`load_trace` dispatches between the two
formats by file suffix.  A mapped trace feeds hierarchical topologies
through :func:`repro.monitoring.runner.run_tracking_tree_arrays`, which
routes every segment straight to its leaf — combined with lazy leaf
construction, a million-site tree replays at a cost proportional to the
trace, not the tree.
"""

from __future__ import annotations

import csv
import json
import pathlib
import struct
import warnings
import zipfile
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import StreamError
from repro.streams.model import StreamSpec
from repro.types import ItemUpdate, Update

__all__ = [
    "save_stream_csv",
    "load_stream_csv",
    "save_item_stream_csv",
    "load_item_stream_csv",
    "TraceColumns",
    "columns_from_updates",
    "save_trace_csv",
    "load_trace_columns",
    "save_trace_npz",
    "load_trace_npz",
    "load_trace",
    "trace_open_counts",
    "reset_trace_open_counts",
]

PathLike = Union[str, pathlib.Path]

_TRACE_HEADER = ["time", "site", "delta"]

#: Per-process tally of successful :func:`load_trace` opens, keyed by the
#: path as passed (stringified).  This is the observability hook behind the
#: shared-trace guarantee: a parallel sweep over one trace should show one
#: open per *worker process*, not one per grid point — benchmark E23 asserts
#: exactly that through :func:`trace_open_counts`.
_TRACE_OPEN_COUNTS: dict = {}


def trace_open_counts() -> dict:
    """Snapshot of this process's ``{path: open count}`` for :func:`load_trace`."""
    return dict(_TRACE_OPEN_COUNTS)


def reset_trace_open_counts() -> None:
    """Zero the per-process open tally (tests and benchmarks)."""
    _TRACE_OPEN_COUNTS.clear()


@dataclass(frozen=True)
class TraceColumns:
    """A distributed update trace in columnar form.

    Three parallel integer arrays instead of one list of
    :class:`~repro.types.Update` objects: the memory layout the batched
    engine wants (contiguous same-site runs are sliced straight out of the
    arrays) and the one a replayed trace loads fastest into.

    Attributes:
        times: 1-D ``int64`` array of update timesteps, in stream order.
        sites: Matching array of destination site ids.
        deltas: Matching array of per-timestep changes.
    """

    times: np.ndarray
    sites: np.ndarray
    deltas: np.ndarray

    def __post_init__(self) -> None:
        if (
            self.times.ndim != 1
            or self.times.shape != self.sites.shape
            or self.times.shape != self.deltas.shape
        ):
            raise StreamError(
                "trace columns must be equal-length 1-D arrays, got shapes "
                f"{self.times.shape}/{self.sites.shape}/{self.deltas.shape}"
            )

    def __len__(self) -> int:
        return int(self.times.size)

    def to_updates(self) -> List[Update]:
        """Materialise the trace as :class:`~repro.types.Update` objects.

        The inverse of :func:`columns_from_updates`, for code paths that
        still want objects (the per-update engine, hand-written loops).
        """
        return [
            Update(time=int(t), site=int(s), delta=int(d))
            for t, s, d in zip(self.times, self.sites, self.deltas)
        ]


def columns_from_updates(updates: Sequence[Update]) -> TraceColumns:
    """Convert a materialised update sequence to columnar form."""
    count = len(updates)
    return TraceColumns(
        times=np.fromiter((u.time for u in updates), dtype=np.int64, count=count),
        sites=np.fromiter((u.site for u in updates), dtype=np.int64, count=count),
        deltas=np.fromiter((u.delta for u in updates), dtype=np.int64, count=count),
    )


def save_trace_csv(
    trace: Union[TraceColumns, Sequence[Update]], path: PathLike
) -> None:
    """Write a distributed trace to ``path`` as a ``time,site,delta`` CSV."""
    if not isinstance(trace, TraceColumns):
        trace = columns_from_updates(trace)
    target = pathlib.Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TRACE_HEADER)
        writer.writerows(
            zip(trace.times.tolist(), trace.sites.tolist(), trace.deltas.tolist())
        )


def load_trace_columns(path: PathLike) -> TraceColumns:
    """Read a trace written by :func:`save_trace_csv` as columnar arrays.

    The whole table is parsed into three ``int64`` arrays in one NumPy pass;
    nothing per-update is constructed, so a loaded trace flows into
    :func:`repro.monitoring.runner.run_tracking_arrays` (and from there into
    ``deliver_batch``) without any Python-object overhead per record.
    """
    source = pathlib.Path(path)
    if not source.exists():
        raise StreamError(f"trace file {source} does not exist")
    with source.open("r", newline="") as handle:
        header = handle.readline().strip().split(",")
        if header != _TRACE_HEADER:
            raise StreamError(f"{source} has an unexpected column header {header}")
        try:
            with warnings.catch_warnings():
                # An empty table is reported through StreamError below, not
                # through loadtxt's "no data" UserWarning.
                warnings.simplefilter("ignore", UserWarning)
                table = np.loadtxt(handle, delimiter=",", dtype=np.int64, ndmin=2)
        except ValueError as error:
            raise StreamError(f"{source} has a malformed trace row: {error}") from error
    if table.size == 0:
        raise StreamError(f"{source} contains no updates")
    if table.shape[1] != 3:
        raise StreamError(
            f"{source} rows must have exactly 3 columns, got {table.shape[1]}"
        )
    return TraceColumns(times=table[:, 0], sites=table[:, 1], deltas=table[:, 2])


_TRACE_NPZ_MEMBERS = ("times", "sites", "deltas")


def save_trace_npz(
    trace: Union[TraceColumns, Sequence[Update]], path: PathLike
) -> None:
    """Write a distributed trace to ``path`` as an uncompressed ``.npz``.

    The binary counterpart of :func:`save_trace_csv` for traces too large
    for CSV parsing to be anything but the bottleneck: three ``int64``
    members (``times``, ``sites``, ``deltas``) stored *uncompressed*, so
    :func:`load_trace_npz` can memory-map them in place instead of parsing
    text — loading becomes an ``open`` plus page faults.
    """
    if not isinstance(trace, TraceColumns):
        trace = columns_from_updates(trace)
    if len(trace) == 0:
        raise StreamError("refusing to save an empty trace")
    # Write through a handle so the archive lands at *exactly* ``path``
    # (given a bare filename, np.savez would append ".npz" on its own and
    # silently save somewhere the caller never asked for).
    with pathlib.Path(path).open("wb") as handle:
        np.savez(
            handle,
            times=np.ascontiguousarray(trace.times, dtype=np.int64),
            sites=np.ascontiguousarray(trace.sites, dtype=np.int64),
            deltas=np.ascontiguousarray(trace.deltas, dtype=np.int64),
        )


def _memmap_npz_member(
    source: pathlib.Path, archive: zipfile.ZipFile, name: str, mmap_mode: str
) -> np.ndarray:
    """Memory-map one uncompressed ``.npy`` member inside an ``.npz`` archive.

    ``np.load`` silently ignores ``mmap_mode`` for zipped archives, so this
    maps the member by hand: members written by :func:`save_trace_npz` are
    stored (never deflated), which makes the raw bytes inside the zip a
    valid ``.npy`` file at a known offset — parse its header there and hand
    the data region to :class:`numpy.memmap`.
    """
    info = archive.getinfo(name)
    if info.compress_type != zipfile.ZIP_STORED:
        raise StreamError(
            f"{source} member {name} is compressed; memory-mapping needs the "
            "uncompressed layout written by save_trace_npz"
        )
    with source.open("rb") as handle:
        # Skip the zip local file header (30 fixed bytes + name + extra) to
        # reach the embedded .npy stream.
        handle.seek(info.header_offset)
        local_header = handle.read(30)
        if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
            raise StreamError(f"{source} has a corrupt zip entry for {name}")
        name_length, extra_length = struct.unpack("<HH", local_header[26:30])
        handle.seek(info.header_offset + 30 + name_length + extra_length)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise StreamError(
                f"{source} member {name} uses unsupported npy format {version}"
            )
        if fortran_order:
            raise StreamError(f"{source} member {name} is not C-contiguous")
        data_offset = handle.tell()
    return np.memmap(
        source, dtype=dtype, mode=mmap_mode, offset=data_offset, shape=shape
    )


def load_trace_npz(path: PathLike, mmap_mode: Optional[str] = None) -> TraceColumns:
    """Read a trace written by :func:`save_trace_npz` as columnar arrays.

    Args:
        path: The ``.npz`` file to read.
        mmap_mode: ``None`` (default) loads the three arrays into memory.
            ``"r"`` (read-only) or ``"c"`` (copy-on-write) memory-maps them
            in place instead — the load touches no data pages, so traces far
            larger than RAM replay straight into
            :func:`repro.monitoring.runner.run_tracking_arrays` (or the
            tree-direct
            :func:`~repro.monitoring.runner.run_tracking_tree_arrays`) with
            the OS paging in only the slices the engine actually cuts.  Writable
            mapping (``"r+"``) is refused: flushing bytes into a zip member
            would desynchronise the archive's CRC and corrupt the file.

    Returns:
        The trace as :class:`TraceColumns`.
    """
    source = pathlib.Path(path)
    if not source.exists():
        raise StreamError(f"trace file {source} does not exist")
    if mmap_mode is not None and mmap_mode not in ("r", "c"):
        raise StreamError(
            f"mmap_mode must be 'r', 'c' or None, got {mmap_mode!r} (writable "
            "mapping would corrupt the archive's member checksums)"
        )
    try:
        with zipfile.ZipFile(source) as archive:
            names = set(archive.namelist())
            missing = [
                member
                for member in _TRACE_NPZ_MEMBERS
                if f"{member}.npy" not in names
            ]
            if missing:
                raise StreamError(
                    f"{source} is missing trace members {missing}; expected a "
                    "file written by save_trace_npz"
                )
            if mmap_mode is not None:
                arrays = {
                    member: _memmap_npz_member(
                        source, archive, f"{member}.npy", mmap_mode
                    )
                    for member in _TRACE_NPZ_MEMBERS
                }
            else:
                with np.load(source) as bundle:
                    arrays = {
                        member: np.asarray(bundle[member])
                        for member in _TRACE_NPZ_MEMBERS
                    }
    except zipfile.BadZipFile as error:
        raise StreamError(f"{source} is not a valid npz archive: {error}") from error
    for member, array in arrays.items():
        if array.ndim != 1:
            raise StreamError(
                f"{source} member {member} must be 1-D, got shape {array.shape}"
            )
        if array.dtype.kind not in "iu":
            raise StreamError(
                f"{source} member {member} must be integer, got {array.dtype}"
            )
    if arrays["times"].size == 0:
        raise StreamError(f"{source} contains no updates")
    if mmap_mode is None:
        arrays = {
            member: array.astype(np.int64, copy=False)
            for member, array in arrays.items()
        }
    return TraceColumns(
        times=arrays["times"], sites=arrays["sites"], deltas=arrays["deltas"]
    )


def load_trace(path: PathLike, mmap_mode: Optional[str] = None) -> TraceColumns:
    """Load a trace in either on-disk format, dispatching on the suffix.

    ``.npz`` routes to :func:`load_trace_npz` (where ``mmap_mode`` applies);
    anything else is treated as the CSV layout of :func:`save_trace_csv`.
    The CLI's ``--trace`` option funnels through here so both formats are
    accepted everywhere a trace file is.
    """
    source = pathlib.Path(path)
    if source.suffix == ".npz":
        columns = load_trace_npz(source, mmap_mode=mmap_mode)
    else:
        if mmap_mode is not None:
            raise StreamError(
                "mmap_mode applies to the binary npz format only; convert the "
                "trace with save_trace_npz first"
            )
        columns = load_trace_columns(source)
    key = str(source)
    _TRACE_OPEN_COUNTS[key] = _TRACE_OPEN_COUNTS.get(key, 0) + 1
    return columns


def save_stream_csv(spec: StreamSpec, path: PathLike) -> None:
    """Write a delta stream to ``path`` as CSV (header carries the metadata).

    The first row is a comment-style header ``#name=...,start=...,params=...``
    followed by a ``time,delta`` table.
    """
    target = pathlib.Path(path)
    with target.open("w", newline="") as handle:
        handle.write(
            "#" + json.dumps({"name": spec.name, "start": spec.start, "params": dict(spec.params)})
            + "\n"
        )
        writer = csv.writer(handle)
        writer.writerow(["time", "delta"])
        for time, delta in enumerate(spec.deltas, start=1):
            writer.writerow([time, delta])


def load_stream_csv(path: PathLike) -> StreamSpec:
    """Read a delta stream written by :func:`save_stream_csv`."""
    source = pathlib.Path(path)
    if not source.exists():
        raise StreamError(f"stream file {source} does not exist")
    with source.open("r", newline="") as handle:
        first = handle.readline().strip()
        if not first.startswith("#"):
            raise StreamError(f"{source} is missing the metadata header line")
        try:
            metadata = json.loads(first[1:])
        except json.JSONDecodeError as error:
            raise StreamError(f"{source} has a malformed metadata header: {error}") from error
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["time", "delta"]:
            raise StreamError(f"{source} has an unexpected column header {header}")
        deltas: List[int] = []
        for row_number, row in enumerate(reader, start=1):
            if len(row) != 2:
                raise StreamError(f"{source} row {row_number} is malformed: {row}")
            deltas.append(int(row[1]))
    if not deltas:
        raise StreamError(f"{source} contains no updates")
    return StreamSpec(
        name=str(metadata.get("name", source.stem)),
        deltas=tuple(deltas),
        start=int(metadata.get("start", 0)),
        params=dict(metadata.get("params", {})),
    )


def save_item_stream_csv(updates: Sequence[ItemUpdate], path: PathLike) -> None:
    """Write an item insert/delete stream to ``path`` as CSV."""
    target = pathlib.Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "site", "item", "delta"])
        for update in updates:
            writer.writerow([update.time, update.site, update.item, update.delta])


def load_item_stream_csv(path: PathLike) -> List[ItemUpdate]:
    """Read an item stream written by :func:`save_item_stream_csv`."""
    source = pathlib.Path(path)
    if not source.exists():
        raise StreamError(f"item stream file {source} does not exist")
    updates: List[ItemUpdate] = []
    with source.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["time", "site", "item", "delta"]:
            raise StreamError(f"{source} has an unexpected column header {header}")
        for row_number, row in enumerate(reader, start=1):
            if len(row) != 4:
                raise StreamError(f"{source} row {row_number} is malformed: {row}")
            updates.append(
                ItemUpdate(
                    time=int(row[0]), site=int(row[1]), item=int(row[2]), delta=int(row[3])
                )
            )
    if not updates:
        raise StreamError(f"{source} contains no updates")
    return updates
