"""Persistence for streams: save and load workloads as CSV files.

Experiments become much easier to audit when the exact workload can be written
to disk and replayed later (or fed to an external system).  These helpers
round-trip the two stream kinds the library uses — scalar delta streams
(:class:`~repro.streams.model.StreamSpec`) and item insert/delete streams —
through small, human-readable CSV files.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import List, Sequence, Union

from repro.exceptions import StreamError
from repro.streams.model import StreamSpec
from repro.types import ItemUpdate

__all__ = [
    "save_stream_csv",
    "load_stream_csv",
    "save_item_stream_csv",
    "load_item_stream_csv",
]

PathLike = Union[str, pathlib.Path]


def save_stream_csv(spec: StreamSpec, path: PathLike) -> None:
    """Write a delta stream to ``path`` as CSV (header carries the metadata).

    The first row is a comment-style header ``#name=...,start=...,params=...``
    followed by a ``time,delta`` table.
    """
    target = pathlib.Path(path)
    with target.open("w", newline="") as handle:
        handle.write(
            "#" + json.dumps({"name": spec.name, "start": spec.start, "params": dict(spec.params)})
            + "\n"
        )
        writer = csv.writer(handle)
        writer.writerow(["time", "delta"])
        for time, delta in enumerate(spec.deltas, start=1):
            writer.writerow([time, delta])


def load_stream_csv(path: PathLike) -> StreamSpec:
    """Read a delta stream written by :func:`save_stream_csv`."""
    source = pathlib.Path(path)
    if not source.exists():
        raise StreamError(f"stream file {source} does not exist")
    with source.open("r", newline="") as handle:
        first = handle.readline().strip()
        if not first.startswith("#"):
            raise StreamError(f"{source} is missing the metadata header line")
        try:
            metadata = json.loads(first[1:])
        except json.JSONDecodeError as error:
            raise StreamError(f"{source} has a malformed metadata header: {error}") from error
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["time", "delta"]:
            raise StreamError(f"{source} has an unexpected column header {header}")
        deltas: List[int] = []
        for row_number, row in enumerate(reader, start=1):
            if len(row) != 2:
                raise StreamError(f"{source} row {row_number} is malformed: {row}")
            deltas.append(int(row[1]))
    if not deltas:
        raise StreamError(f"{source} contains no updates")
    return StreamSpec(
        name=str(metadata.get("name", source.stem)),
        deltas=tuple(deltas),
        start=int(metadata.get("start", 0)),
        params=dict(metadata.get("params", {})),
    )


def save_item_stream_csv(updates: Sequence[ItemUpdate], path: PathLike) -> None:
    """Write an item insert/delete stream to ``path`` as CSV."""
    target = pathlib.Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "site", "item", "delta"])
        for update in updates:
            writer.writerow([update.time, update.site, update.item, update.delta])


def load_item_stream_csv(path: PathLike) -> List[ItemUpdate]:
    """Read an item stream written by :func:`save_item_stream_csv`."""
    source = pathlib.Path(path)
    if not source.exists():
        raise StreamError(f"item stream file {source} does not exist")
    updates: List[ItemUpdate] = []
    with source.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["time", "site", "item", "delta"]:
            raise StreamError(f"{source} has an unexpected column header {header}")
        for row_number, row in enumerate(reader, start=1):
            if len(row) != 4:
                raise StreamError(f"{source} row {row_number} is malformed: {row}")
            updates.append(
                ItemUpdate(
                    time=int(row[0]), site=int(row[1]), item=int(row[2]), delta=int(row[3])
                )
            )
    if not updates:
        raise StreamError(f"{source} contains no updates")
    return updates
