"""Insert/delete item streams for the frequency-tracking problem (Appendix H).

The frequency-tracking problem maintains a multiset ``D(t)`` over a universe
``U``; each timestep inserts or deletes one item at one site, and the
coordinator must track every item frequency to within ``eps * F1(t)`` where
``F1(t) = |D(t)|``.  The generators here produce Zipf-distributed insertions
mixed with deletions of previously inserted items, which is the standard
heavy-hitters workload, plus a sliding-window workload in which items expire
after a fixed lifetime (a natural source of deletions in monitoring systems).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import ItemUpdate

__all__ = ["ItemStreamConfig", "zipfian_item_stream", "sliding_window_item_stream"]


@dataclass(frozen=True)
class ItemStreamConfig:
    """Parameters shared by the item-stream generators.

    Attributes:
        length: Number of timesteps ``n``.
        universe_size: Size of the item universe ``|U|``.
        num_sites: Number of sites updates are spread over (round robin).
        seed: Seed for reproducibility.
    """

    length: int
    universe_size: int
    num_sites: int = 1
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ConfigurationError(f"length must be >= 1, got {self.length}")
        if self.universe_size < 1:
            raise ConfigurationError(
                f"universe_size must be >= 1, got {self.universe_size}"
            )
        if self.num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1, got {self.num_sites}")


def _zipf_probabilities(universe_size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, universe_size + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def zipfian_item_stream(
    config: ItemStreamConfig,
    exponent: float = 1.1,
    deletion_probability: float = 0.2,
) -> list:
    """Zipf-distributed insertions with random deletions of live items.

    Args:
        config: Shared stream parameters.
        exponent: Zipf skew; larger values concentrate mass on few items.
        deletion_probability: Probability that a timestep deletes a currently
            live item instead of inserting a new one (only taken when the
            dataset is non-empty, so ``F1`` never goes negative).

    Returns:
        A list of :class:`repro.types.ItemUpdate` of length ``config.length``.
    """
    if exponent <= 0.0:
        raise ConfigurationError(f"exponent must be > 0, got {exponent}")
    if not 0.0 <= deletion_probability < 1.0:
        raise ConfigurationError(
            f"deletion_probability must be in [0, 1), got {deletion_probability}"
        )
    rng = np.random.default_rng(config.seed)
    probabilities = _zipf_probabilities(config.universe_size, exponent)
    live: collections.Counter = collections.Counter()
    updates = []
    for t in range(1, config.length + 1):
        site = (t - 1) % config.num_sites
        total_live = sum(live.values())
        if total_live > 0 and rng.random() < deletion_probability:
            items = list(live.keys())
            weights = np.array([live[i] for i in items], dtype=float)
            weights /= weights.sum()
            item = int(rng.choice(items, p=weights))
            live[item] -= 1
            if live[item] == 0:
                del live[item]
            updates.append(ItemUpdate(time=t, site=site, item=item, delta=-1))
        else:
            item = int(rng.choice(config.universe_size, p=probabilities))
            live[item] += 1
            updates.append(ItemUpdate(time=t, site=site, item=item, delta=+1))
    return updates


def sliding_window_item_stream(
    config: ItemStreamConfig,
    window: int = 256,
    exponent: float = 1.1,
) -> list:
    """Insertions whose items expire (are deleted) after ``window`` steps.

    Each nominal event inserts a Zipf-distributed item; once the item has been
    live for ``window`` events it is deleted.  Inserts and deletes are
    interleaved into a single update stream, so the output length is
    ``config.length`` updates in total (roughly half inserts and half deletes
    once the window has filled).

    Returns:
        A list of :class:`repro.types.ItemUpdate` of length ``config.length``.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if exponent <= 0.0:
        raise ConfigurationError(f"exponent must be > 0, got {exponent}")
    rng = np.random.default_rng(config.seed)
    probabilities = _zipf_probabilities(config.universe_size, exponent)
    pending_deletes: collections.deque = collections.deque()
    updates = []
    event_index = 0
    t = 0
    while len(updates) < config.length:
        t += 1
        site = (t - 1) % config.num_sites
        if pending_deletes and event_index - pending_deletes[0][0] >= window:
            _, item = pending_deletes.popleft()
            updates.append(ItemUpdate(time=t, site=site, item=item, delta=-1))
        else:
            item = int(rng.choice(config.universe_size, p=probabilities))
            event_index += 1
            pending_deletes.append((event_index, item))
            updates.append(ItemUpdate(time=t, site=site, item=item, delta=+1))
    return updates
