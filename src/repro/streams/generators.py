"""Generators for the stream classes analysed in the paper.

Section 2.1 analyses the variability of three natural classes: monotone (and
nearly monotone) streams, symmetric ``+-1`` random walks, and biased ``+-1``
walks with constant drift.  Section 4 constructs adversarial "flip" streams
that alternate between two nearby values.  This module generates all of those
plus a few extra shapes (sawtooth, bursty, periodic) used by ablation
experiments and examples.

All generators return a :class:`repro.streams.model.StreamSpec` whose deltas
are ``+-1`` unless documented otherwise, because the upper-bound algorithms of
Section 3 assume unit updates (Appendix C shows how to expand larger ones).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, StreamError
from repro.streams.model import StreamSpec

__all__ = [
    "monotone_stream",
    "nearly_monotone_stream",
    "random_walk_stream",
    "biased_walk_stream",
    "oscillating_stream",
    "adversarial_flip_stream",
    "sawtooth_stream",
    "bursty_stream",
    "periodic_stream",
    "constant_stream",
    "sign_alternating_stream",
]


def _check_length(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {n}")


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def monotone_stream(n: int) -> StreamSpec:
    """A strictly increasing counter: ``f'(t) = +1`` for every ``t``.

    This is the classic insertion-only stream for which Cormode et al. and
    Huang et al. give their counting algorithms.  Its variability is the
    harmonic sum ``H(n) = Theta(log n)``, matching Theorem 2.1 with
    ``beta = 1``.
    """
    _check_length(n)
    return StreamSpec(name="monotone", deltas=(1,) * n, params={"n": n})


def nearly_monotone_stream(
    n: int,
    deletion_fraction: float = 0.1,
    seed: Optional[int] = None,
) -> StreamSpec:
    """A mostly increasing stream with a bounded fraction of deletions.

    Theorem 2.1 covers streams whose total deletions ``f-(n)`` stay within a
    factor ``beta(n)`` of the current value ``f(n)``.  We realise that class by
    inserting with probability ``1 - deletion_fraction`` and deleting with
    probability ``deletion_fraction`` (but never letting ``f`` drop below 1
    after a warm-up prefix), which keeps ``f-(n) <= beta f(n)`` for a constant
    ``beta`` with overwhelming probability when ``deletion_fraction < 1/2``.

    Args:
        n: Stream length.
        deletion_fraction: Probability of a deletion at each step.
        seed: Seed for reproducibility.
    """
    _check_length(n)
    if not 0.0 <= deletion_fraction < 0.5:
        raise ConfigurationError(
            f"deletion_fraction must be in [0, 0.5), got {deletion_fraction}"
        )
    rng = _rng(seed)
    deltas = []
    value = 0
    for _ in range(n):
        if value >= 2 and rng.random() < deletion_fraction:
            delta = -1
        else:
            delta = 1
        value += delta
        deltas.append(delta)
    return StreamSpec(
        name="nearly_monotone",
        deltas=tuple(deltas),
        params={"n": n, "deletion_fraction": deletion_fraction, "seed": seed},
    )


def random_walk_stream(n: int, seed: Optional[int] = None) -> StreamSpec:
    """A symmetric random walk: i.i.d. fair ``+-1`` increments (Theorem 2.2)."""
    _check_length(n)
    rng = _rng(seed)
    deltas = rng.choice((-1, 1), size=n)
    return StreamSpec(
        name="random_walk",
        deltas=tuple(int(d) for d in deltas),
        params={"n": n, "seed": seed},
    )


def biased_walk_stream(
    n: int,
    drift: float,
    seed: Optional[int] = None,
) -> StreamSpec:
    """A biased random walk with ``P(f'(t) = +1) = (1 + drift) / 2`` (Theorem 2.4).

    Args:
        n: Stream length.
        drift: The drift rate ``mu`` in ``(0, 1]``; negative drifts are the
            mirror image and can be obtained by negating the deltas.
        seed: Seed for reproducibility.
    """
    _check_length(n)
    if not 0.0 < drift <= 1.0:
        raise ConfigurationError(f"drift must be in (0, 1], got {drift}")
    rng = _rng(seed)
    p_up = (1.0 + drift) / 2.0
    deltas = np.where(rng.random(n) < p_up, 1, -1)
    return StreamSpec(
        name="biased_walk",
        deltas=tuple(int(d) for d in deltas),
        params={"n": n, "drift": drift, "seed": seed},
    )


def oscillating_stream(
    n: int,
    target: int,
    pull: float = 0.1,
    seed: Optional[int] = None,
) -> StreamSpec:
    """A mean-reverting walk hovering around ``target``.

    Each step moves up with probability ``0.5 + pull`` below the target and
    ``0.5 - pull`` above it, so the value oscillates in a band around
    ``target`` instead of drifting away.  Parked on a block-level band edge
    (``target = 4k * 2^r``), consecutive block closes flip between adjacent
    levels indefinitely — the mixed up-down level schedules that are the
    close ladder's worst case, which the descent-ladder benchmark (E20) and
    the kernel-regimes descent cells drive with exactly this stream.

    Args:
        n: Stream length.
        target: The value the walk reverts toward (``>= 1``).
        pull: Reversion strength in ``(0, 0.5]``; the walk's stationary
            band around the target narrows as ``pull`` grows.
        seed: Seed for reproducibility.
    """
    _check_length(n)
    if target < 1:
        raise ConfigurationError(f"target must be >= 1, got {target}")
    if not 0.0 < pull <= 0.5:
        raise ConfigurationError(f"pull must be in (0, 0.5], got {pull}")
    coins = _rng(seed).random(n).tolist()
    deltas = []
    value = 0
    for coin in coins:
        p_up = 0.5 + (pull if value < target else -pull)
        delta = 1 if coin < p_up else -1
        value += delta
        deltas.append(delta)
    return StreamSpec(
        name="oscillating",
        deltas=tuple(deltas),
        params={"n": n, "target": target, "pull": pull, "seed": seed},
    )


def adversarial_flip_stream(
    n: int,
    level: int,
    flip_times: Sequence[int],
) -> StreamSpec:
    """A stream that flips between values ``level`` and ``level + 3``.

    This is the shape used by both lower-bound constructions (Theorem 4.1 and
    Lemma 4.4): the value starts at ``level`` and at each time in
    ``flip_times`` it switches between ``level`` and ``level + 3``.  Deltas are
    ``+-3`` at flip times and ``0`` otherwise, so this stream is *not* a unit
    stream; it is used directly by the lower-bound modules and can be expanded
    to unit updates with :func:`repro.core.expansion.expand_stream`.

    Args:
        n: Stream length.
        level: The lower of the two values (``m`` in the paper, i.e. ``1/eps``).
        flip_times: Sorted distinct times in ``1..n`` at which the value flips.
    """
    _check_length(n)
    if level < 1:
        raise ConfigurationError(f"level must be >= 1, got {level}")
    flips = sorted(set(int(t) for t in flip_times))
    if flips and (flips[0] < 1 or flips[-1] > n):
        raise ConfigurationError("flip times must lie in 1..n")
    flip_set = set(flips)
    deltas = []
    value = level
    for t in range(1, n + 1):
        if t in flip_set:
            target = (2 * level + 3) - value
            deltas.append(target - value)
            value = target
        else:
            deltas.append(0)
    return StreamSpec(
        name="adversarial_flip",
        deltas=tuple(deltas),
        start=level,
        params={"n": n, "level": level, "num_flips": len(flips)},
    )


def sawtooth_stream(n: int, amplitude: int) -> StreamSpec:
    """A deterministic sawtooth oscillating between 0 and ``amplitude``.

    This is a worst-case style stream for relative-error tracking because it
    repeatedly revisits small values; its variability grows linearly in the
    number of teeth, which is what drives the ``Omega(n)`` lower bounds the
    paper cites for unrestricted non-monotone streams.
    """
    _check_length(n)
    if amplitude < 1:
        raise ConfigurationError(f"amplitude must be >= 1, got {amplitude}")
    deltas = []
    value = 0
    direction = 1
    for _ in range(n):
        if value >= amplitude:
            direction = -1
        elif value <= 0:
            direction = 1
        deltas.append(direction)
        value += direction
    return StreamSpec(
        name="sawtooth",
        deltas=tuple(deltas),
        params={"n": n, "amplitude": amplitude},
    )


def bursty_stream(
    n: int,
    burst_length: int = 64,
    deletion_burst_probability: float = 0.25,
    seed: Optional[int] = None,
) -> StreamSpec:
    """Alternating bursts of insertions and (occasionally) deletions.

    Models a database workload in which batches of inserts are interleaved
    with occasional bulk clean-ups.  Within each burst all updates share a
    sign; the sign is negative with probability ``deletion_burst_probability``
    provided the value stays positive.
    """
    _check_length(n)
    if burst_length < 1:
        raise ConfigurationError(f"burst_length must be >= 1, got {burst_length}")
    if not 0.0 <= deletion_burst_probability < 1.0:
        raise ConfigurationError(
            "deletion_burst_probability must be in [0, 1), got "
            f"{deletion_burst_probability}"
        )
    rng = _rng(seed)
    deltas = []
    value = 0
    while len(deltas) < n:
        length = min(burst_length, n - len(deltas))
        negative = value > length and rng.random() < deletion_burst_probability
        sign = -1 if negative else 1
        for _ in range(length):
            deltas.append(sign)
            value += sign
    return StreamSpec(
        name="bursty",
        deltas=tuple(deltas),
        params={
            "n": n,
            "burst_length": burst_length,
            "deletion_burst_probability": deletion_burst_probability,
            "seed": seed,
        },
    )


def periodic_stream(n: int, period: int, trend: float = 0.5) -> StreamSpec:
    """A stream with a periodic component riding on a linear upward trend.

    Models daily/weekly load patterns: the value follows
    ``trend * t + A * sin(2 pi t / period)`` rounded to integers and emitted
    as unit updates: each nominal timestep is collapsed into the nearest
    ``+-1``, and timesteps at which the rounded target does not move are
    skipped entirely, so the result is a genuine unit stream that the
    Section 3 trackers accept directly.  The emitted length is therefore at
    most ``n`` (the skipped zero steps cannot increase variability).  The
    stream stays nearly monotone when ``trend > 0``.

    Raises:
        StreamError: If every nominal timestep rounds to a zero step (only
            possible for tiny ``n`` and ``trend``), leaving an empty stream.
    """
    _check_length(n)
    if period < 2:
        raise ConfigurationError(f"period must be >= 2, got {period}")
    if trend <= 0.0:
        raise ConfigurationError(f"trend must be > 0, got {trend}")
    amplitude = period / 8.0
    deltas = []
    previous = 0
    for t in range(1, n + 1):
        target = int(round(trend * t + amplitude * math.sin(2.0 * math.pi * t / period)))
        step = target - previous
        if step > 1:
            step = 1
        elif step < -1:
            step = -1
        elif step == 0:
            continue
        deltas.append(step)
        previous += step
    if not deltas:
        raise StreamError(
            f"periodic_stream(n={n}, period={period}, trend={trend}) rounds "
            "to zero change at every timestep; increase n or trend"
        )
    return StreamSpec(
        name="periodic",
        deltas=tuple(deltas),
        params={"n": n, "period": period, "trend": trend, "emitted": len(deltas)},
    )


def constant_stream(n: int, value: int) -> StreamSpec:
    """A stream that jumps to ``value`` at time 1 and never changes again.

    Useful as a degenerate test case: its variability is ``min(1, 1)`` for the
    first step (if ``f(0) = 0``) and 0 afterwards.
    """
    _check_length(n)
    deltas = [value] + [0] * (n - 1)
    return StreamSpec(name="constant", deltas=tuple(deltas), params={"n": n, "value": value})


def sign_alternating_stream(n: int) -> StreamSpec:
    """The pathological ``+1, -1, +1, -1, ...`` stream.

    The value oscillates between 1 and 0, so every other step has ``f(t) = 0``
    and the variability is ``Theta(n)`` — the worst case the paper's
    ``Omega(n)`` lower-bound citations refer to.
    """
    _check_length(n)
    deltas = tuple(1 if t % 2 == 1 else -1 for t in range(1, n + 1))
    return StreamSpec(name="sign_alternating", deltas=deltas, params={"n": n})
