"""Exception types raised by the :mod:`repro` library.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch library failures without also catching unrelated built-in
exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when an algorithm or generator is constructed with invalid parameters.

    Examples include a non-positive number of sites, an error parameter
    outside ``(0, 1)``, or a sketch with zero rows.
    """


class ProtocolError(ReproError):
    """Raised when the distributed-monitoring protocol is used incorrectly.

    Examples include a site sending a message before the network is wired up,
    a coordinator broadcasting to an unknown site, or feeding updates to a
    finished simulation.
    """


class StreamError(ReproError):
    """Raised when a stream generator or update sequence is malformed.

    Examples include an update with a zero delta where ``+-1`` is required, or
    an item-stream deletion of an item that is not present.
    """


class QueryError(ReproError):
    """Raised when a historical or tracing query cannot be answered.

    Examples include querying a time before the start of the stream or after
    the most recent update.
    """
