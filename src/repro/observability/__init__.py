"""Metrics, tracing and the live tracker service.

Layered on top of the monitoring stack without touching its semantics:

* :mod:`repro.observability.metrics` — dependency-free counters, gauges and
  histograms with labels, rendered in Prometheus text exposition format;
* :mod:`repro.observability.tracelog` — ring-buffered structured trace
  events with spans for block-close rounds, dumpable to JSON;
* :mod:`repro.observability.instrument` — attaches per-level observers to
  the channels and coordinators of any topology (zero overhead and
  bit-for-bit identical behaviour when nothing is attached);
* :mod:`repro.observability.live` — the long-lived :class:`LiveTracker`
  service ingesting updates incrementally (push API + line-protocol socket
  feed) and serving ``/metrics`` + ``/status`` over HTTP, driven by
  ``repro serve --config spec.json``.
"""

from repro.observability.instrument import (
    NetworkInstrumentation,
    instrument_network,
)
from repro.observability.live import LiveTracker, LiveTrackerServer
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.observability.tracelog import TraceEvent, TraceLog, TraceSpan

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "TraceEvent",
    "TraceSpan",
    "TraceLog",
    "NetworkInstrumentation",
    "instrument_network",
    "LiveTracker",
    "LiveTrackerServer",
]
