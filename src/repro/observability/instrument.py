"""Wire a metrics registry and trace log into a running monitoring network.

The protocol objects carry *hooks*, not metrics: :class:`Channel` calls
``observer.on_message`` / ``on_bulk`` when it charges traffic,
:class:`AsyncChannel` calls ``observer.on_delivery`` when an in-flight
message lands, and :class:`BlockTrackingCoordinator` brackets a block-close
round with ``observer.on_close_begin`` / ``on_close_end``.  All hooks sit
behind a single ``if observer is not None`` check, so an uninstrumented
network pays one attribute test per event and its behaviour is bit-for-bit
unchanged (property-tested in ``tests/test_observability_equivalence.py``).

Metrics themselves are even cheaper than the hooks: the channels already
maintain exact cumulative accounting (:class:`ChannelStats` message/bit
counters by kind, the async transport's ``delivery_ages``), so every
traffic series is **derived at scrape time** by a registry *collector*
that re-reads channel and coordinator state — attaching a registry adds
*zero* per-message work.  Channel observers are installed only when a
:class:`TraceLog` is attached, because structured per-event tracing is the
one thing that cannot be reconstructed after the fact.  This also keeps
numbers the span kernel computes in closed form (simulated block closes
never pass through ``_close_block``) truthful: ``repro_blocks_completed``
reads coordinator state, while the hook-driven
``repro_block_closes_total`` counts real close rounds only.

This module supplies the observers and the collector.
:func:`instrument_network` walks any topology — flat
:class:`MonitoringNetwork`, legacy two-level :class:`ShardedNetwork`, or an
L-level tree — labelling series with the same root-first level index
``result.summary()["levels"]`` uses.

A live migration rebuilds the two affected leaf networks; the fresh
channels adopt the old ones' accounting *and observer*, while the fresh
coordinators start blank — :meth:`NetworkInstrumentation.on_migration`
therefore re-walks the tree after every handoff.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.metrics import level_message_shares, shard_imbalance
from repro.analysis.staleness import summarize_staleness
from repro.core.template import BlockTrackingCoordinator
from repro.monitoring.channel import ChannelStats
from repro.monitoring.sharding import ShardedNetwork
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracelog import TraceLog

__all__ = ["NetworkInstrumentation", "instrument_network"]

#: Histogram buckets for virtual-time delivery ages: sub-unit (inline and
#: near-inline deliveries) through heavy-tail stragglers.
AGE_BUCKETS = (0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def _walk(network, depth: int = 0) -> Iterator[Tuple[object, object, int]]:
    """Yield ``(channel, coordinator, level)`` for every real node.

    Levels are root-first, matching
    :meth:`repro.monitoring.sharding.ShardedNetwork.level_summary`: a
    network's own aggregator (when present) sits at ``depth`` and its
    children one deeper; the single-shard degenerate adds no level.
    """
    if isinstance(network, ShardedNetwork):
        child_depth = depth
        if network.root_network is not None:
            yield (
                network.root_network.channel,
                network.root_network.coordinator,
                depth,
            )
            child_depth = depth + 1
        for shard in network.shards:
            inner = shard.network
            if isinstance(inner, ShardedNetwork):
                yield from _walk(inner, child_depth)
            else:
                yield (inner.channel, inner.coordinator, child_depth)
    else:
        yield (network.channel, network.coordinator, depth)


class _ChannelObserver:
    """Per-level channel hook target: emits structured trace events.

    Counting happens at scrape time from the channel's own accounting, so
    this observer exists purely for the trace log and is only installed
    when one is attached.
    """

    __slots__ = ("_level", "_trace")

    def __init__(self, instrumentation: "NetworkInstrumentation", level: int):
        self._level = level
        self._trace = instrumentation.trace

    def on_message(self, message, copies: int) -> None:
        """One real send of ``copies`` transmissions was charged."""
        self._trace.emit(
            "send",
            time=message.time,
            kind=message.kind.value,
            level=self._level,
            sender=message.sender,
            receiver=message.receiver,
            copies=copies,
        )

    def on_bulk(self, kind_value: str, copies: int, total_bits: int) -> None:
        """A closed-form bulk charge (simulated messages) was accounted."""
        if copies:
            self._trace.emit(
                "bulk_charge",
                kind=kind_value,
                level=self._level,
                copies=copies,
                bits=total_bits,
            )

    def on_delivery(self, message, age: float) -> None:
        """An in-flight message landed after ``age`` units of virtual time."""
        self._trace.emit(
            "deliver",
            time=message.time,
            kind=message.kind.value,
            level=self._level,
            sender=message.sender,
            receiver=message.receiver,
            age=age,
        )


class _CoordinatorObserver:
    """Per-level coordinator hook target: block-close counters and spans."""

    __slots__ = ("_level", "_trace", "_closes", "_spans")

    def __init__(self, instrumentation: "NetworkInstrumentation", level: int):
        self._level = str(level)
        self._trace = instrumentation.trace
        self._closes = instrumentation.block_closes_total.labels(
            level=self._level
        )
        # Open spans keyed by coordinator identity: under the asynchronous
        # transport several shard coordinators on one level can have closes
        # in flight at once.
        self._spans: Dict[int, object] = {}

    def on_close_begin(self, coordinator, time) -> None:
        """A coordinator started collecting (c_i, f_i) replies."""
        if self._trace is not None:
            self._spans[id(coordinator)] = self._trace.begin_span(
                "block_close",
                float(time),
                level=int(self._level),
                from_block_level=coordinator.level,
            )

    def on_close_end(self, coordinator, time) -> None:
        """The k-th reply arrived; the new level was broadcast."""
        self._closes.inc()
        if self._trace is not None:
            span = self._spans.pop(id(coordinator), None)
            if span is not None:
                span.end(
                    float(time),
                    new_block_level=coordinator.level,
                    blocks_completed=coordinator.blocks_completed,
                )


def _refill_histogram(child, values) -> None:
    """Overwrite a histogram child with a fresh set of observations.

    The collector rebuilds delivery-age histograms from the channels'
    complete ``delivery_ages`` records on every scrape; scrapes are rare
    (seconds apart) while deliveries are hot, so recomputing here is the
    cheap side of the trade.
    """
    buckets = child.buckets
    counts = [0] * len(buckets)
    total = 0.0
    for value in values:
        value = float(value)
        total += value
        index = bisect_left(buckets, value)
        if index < len(buckets):
            counts[index] += 1
    child.counts = counts
    child.sum = total
    child.count = len(values)


class NetworkInstrumentation:
    """Metrics + tracing attached to one monitoring network.

    Construct (or let :func:`instrument_network` construct) with an optional
    shared :class:`MetricsRegistry` and optional :class:`TraceLog`, then
    :meth:`attach` a network.  Detaching is never needed: throwing the
    instrumentation away and leaving ``observer`` slots populated only costs
    the dead hook calls, and a fresh network starts with ``observer=None``.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        reg = self.registry
        self.messages_total = reg.counter(
            "repro_messages_total",
            "Charged message transmissions by kind and hierarchy level.",
            labels=("kind", "level"),
        )
        self.bits_total = reg.counter(
            "repro_bits_total",
            "Charged communication bits by kind and hierarchy level.",
            labels=("kind", "level"),
        )
        self.deliveries_total = reg.counter(
            "repro_deliveries_total",
            "Asynchronous in-flight deliveries by hierarchy level.",
            labels=("level",),
        )
        self.delivery_age = reg.histogram(
            "repro_delivery_age",
            "Virtual time spent in flight per delivery.",
            labels=("level",),
            buckets=AGE_BUCKETS,
        )
        self.dropped_total = reg.counter(
            "repro_dropped_total",
            "Message transmissions lost by the faulty transport, by kind "
            "and hierarchy level.",
            labels=("kind", "level"),
        )
        self.retransmissions_total = reg.counter(
            "repro_retransmissions_total",
            "Timeout-driven retransmissions by kind and hierarchy level.",
            labels=("kind", "level"),
        )
        self.duplicates_total = reg.counter(
            "repro_duplicates_total",
            "Deliveries suppressed as duplicates (a retransmitted copy "
            "raced a slow original), by kind and hierarchy level.",
            labels=("kind", "level"),
        )
        self.block_closes_total = reg.counter(
            "repro_block_closes_total",
            "Completed block-close rounds by hierarchy level "
            "(real close rounds only; simulated closes appear in "
            "repro_blocks_completed).",
            labels=("level",),
        )
        self.block_level = reg.gauge(
            "repro_block_level",
            "Largest block level r across the level's coordinators.",
            labels=("level",),
        )
        self.blocks_completed = reg.gauge(
            "repro_blocks_completed",
            "Completed blocks per hierarchy level, read from coordinator "
            "state (includes closes the span kernel simulated in closed "
            "form).",
            labels=("level",),
        )
        self.migrations_total = reg.counter(
            "repro_migrations_total",
            "Live site migrations completed.",
        )
        self.in_flight = reg.gauge(
            "repro_in_flight",
            "Messages currently travelling on any channel.",
        )
        self._network = None
        self._channel_observers: Dict[int, _ChannelObserver] = {}
        self._coordinator_observers: Dict[int, _CoordinatorObserver] = {}
        self._collector_added = False

    def _channel_observer(self, level: int) -> _ChannelObserver:
        observer = self._channel_observers.get(level)
        if observer is None:
            observer = _ChannelObserver(self, level)
            self._channel_observers[level] = observer
        return observer

    def _coordinator_observer(self, level: int) -> _CoordinatorObserver:
        observer = self._coordinator_observers.get(level)
        if observer is None:
            observer = _CoordinatorObserver(self, level)
            self._coordinator_observers[level] = observer
        return observer

    def attach(self, network) -> "NetworkInstrumentation":
        """Hook every coordinator (and, when tracing, channel) in ``network``.

        Channel observers exist only to feed the trace log — all traffic
        metrics are derived from the channels' own accounting at scrape
        time — so without a trace the channels keep ``observer=None`` and
        the hot path is untouched.  Idempotent: re-attaching (after a
        migration rebuilt leaves, say) re-walks the topology and re-points
        the ``observer`` slots at the same shared per-level observers.
        """
        self._network = network
        for channel, coordinator, level in _walk(network):
            if self.trace is not None:
                channel.observer = self._channel_observer(level)
            if isinstance(coordinator, BlockTrackingCoordinator):
                coordinator.observer = self._coordinator_observer(level)
        # The tree notifies us after a live migration so the rebuilt leaf
        # coordinators get re-hooked.
        network.observer = self
        if not self._collector_added:
            self.registry.add_collector(self._collect)
            self._collector_added = True
        return self

    def on_migration(self, network, report) -> None:
        """Called by :func:`repro.monitoring.tree.migrate_site` after a handoff."""
        self.migrations_total.inc()
        if self.trace is not None:
            self.trace.emit(
                "migration",
                time=float(report.time),
                site_id=report.site_id,
                source_leaf=report.source_leaf,
                dest_leaf=report.dest_leaf,
                handoff_messages=report.handoff_messages,
                handoff_bits=report.handoff_bits,
            )
        self.attach(network)

    # -- derived series, refreshed at scrape time ----------------------------

    def _collect(self) -> None:
        network = self._network
        if network is None:
            return
        level_stats: Dict[int, ChannelStats] = {}
        level_ages: Dict[int, list] = {}
        blocks_by_level: Dict[int, int] = {}
        level_of_r: Dict[int, int] = {}
        for channel, coordinator, level in _walk(network):
            stats = level_stats.get(level)
            if stats is None:
                level_stats[level] = channel.stats.snapshot()
            else:
                level_stats[level] = stats + channel.stats
            ages = getattr(channel, "delivery_ages", None)
            if ages is not None:
                level_ages.setdefault(level, []).extend(ages)
            if isinstance(coordinator, BlockTrackingCoordinator):
                blocks_by_level[level] = (
                    blocks_by_level.get(level, 0) + coordinator.blocks_completed
                )
                level_of_r[level] = max(
                    level_of_r.get(level, 0), coordinator.level
                )
        for level, stats in level_stats.items():
            label = str(level)
            for kind, count in stats.by_kind.items():
                # Counters are hook-free: overwrite the child with the
                # channel's own monotone total.
                self.messages_total.labels(kind=kind, level=label).value = (
                    float(count)
                )
                self.bits_total.labels(kind=kind, level=label).value = float(
                    stats.bits_by_kind.get(kind, 0)
                )
            # Reliability counters only materialise for (kind, level) pairs
            # the faulty transport actually touched, so a lossless run's
            # scrape output is unchanged.
            for counter, per_kind in (
                (self.dropped_total, stats.dropped_by_kind),
                (self.retransmissions_total, stats.retransmitted_by_kind),
                (self.duplicates_total, stats.duplicates_by_kind),
            ):
                for kind, count in per_kind.items():
                    counter.labels(kind=kind, level=label).value = float(count)
        for level, ages in level_ages.items():
            label = str(level)
            self.deliveries_total.labels(level=label).value = float(len(ages))
            _refill_histogram(self.delivery_age.labels(level=label), ages)
        for level, blocks in blocks_by_level.items():
            self.blocks_completed.labels(level=str(level)).set(blocks)
        for level, r in level_of_r.items():
            self.block_level.labels(level=str(level)).set(r)
        channel = network.channel
        self.in_flight.set(getattr(channel, "in_flight", 0))
        if hasattr(channel, "delivery_ages"):
            staleness = summarize_staleness(channel)
            reg = self.registry
            reg.gauge(
                "repro_staleness_mean_age",
                "Mean virtual-time age of deliveries so far.",
            ).set(staleness.mean_age)
            reg.gauge(
                "repro_staleness_max_age",
                "Largest virtual-time age of any delivery so far.",
            ).set(staleness.max_age)
            reg.gauge(
                "repro_staleness_p95_age",
                "95th-percentile virtual-time delivery age.",
            ).set(staleness.p95_age)
            reg.gauge(
                "repro_inflight_highwater",
                "Largest number of messages simultaneously in flight.",
            ).set(staleness.inflight_highwater)
            reg.gauge(
                "repro_reordered_deliveries",
                "Deliveries that arrived out of send order on their link.",
            ).set(staleness.reordered)
        if isinstance(network, ShardedNetwork):
            if network.num_shards > 1:
                self.registry.gauge(
                    "repro_shard_imbalance",
                    "Hottest shard's message count over the mean "
                    "(1.0 = balanced).",
                ).set(shard_imbalance(network.shard_stats()))
            shares = level_message_shares(network.level_summary())
            share_gauge = self.registry.gauge(
                "repro_level_message_share",
                "Each hierarchy level's fraction of total message traffic.",
                labels=("level",),
            )
            for level, share in enumerate(shares):
                share_gauge.labels(level=str(level)).set(share)


def instrument_network(
    network,
    registry: Optional[MetricsRegistry] = None,
    trace: Optional[TraceLog] = None,
) -> NetworkInstrumentation:
    """Attach metrics (and optionally tracing) to a wired network.

    Works on any topology the runners drive: a flat
    :class:`~repro.monitoring.network.MonitoringNetwork`, the legacy
    two-level hierarchy, or an L-level tree, over synchronous or
    asynchronous channels.  Returns the :class:`NetworkInstrumentation`,
    whose ``registry`` renders Prometheus text via
    :meth:`~repro.observability.metrics.MetricsRegistry.render`.
    """
    return NetworkInstrumentation(registry=registry, trace=trace).attach(network)
