"""Dependency-free metrics registry with Prometheus text exposition.

The observability layer needs to count protocol events (messages, bits,
block closes, deliveries) and expose live state (estimate, staleness,
violation fraction) without pulling in a metrics client library — the
repo's rule is stdlib + NumPy only.  This module implements the minimal
Prometheus data model the live service needs:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a value that can go up and down;
* :class:`Histogram` — bucketed observations with ``_sum`` and ``_count``;
* all three come in *families* carrying label names, with one child per
  distinct label-value combination (``family.labels(kind="report")``);
* :class:`MetricsRegistry` — owns the families, runs registered
  *collectors* (callbacks that refresh derived gauges) at scrape time, and
  renders everything in the Prometheus text exposition format v0.0.4
  (``# HELP`` / ``# TYPE`` lines, escaped label values, histogram
  ``_bucket``/``_sum``/``_count`` series).

Hot-path use is cheap by construction: instrumentation resolves label
children once (``family.labels(...)`` returns a stable child object) and
then calls ``child.inc(...)`` — two attribute lookups and an add.  The
registry itself is not thread-safe; concurrent users (the live service)
serialize pushes and scrapes behind one lock, see
:class:`repro.observability.live.LiveTracker`.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets, tuned for the protocol's natural scales
#: (virtual-time delivery ages and per-event message counts both live in
#: this range).
DEFAULT_BUCKETS = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """One number in exposition format: integers bare, specials spelled out."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format's quoting rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    """The ``{name="value",...}`` fragment (empty string for no labels)."""
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """One monotonically increasing series (a family child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters are monotone; cannot add {amount}"
            )
        self.value += amount


class Gauge:
    """One settable series (a family child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount


class Histogram:
    """One bucketed series (a family child): cumulative buckets, sum, count."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.sum += value
        self.count += 1
        # Per-bucket counts; the render path accumulates them into the
        # cumulative series the exposition format wants.
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric with label names and one child per label combination.

    Obtained from the registry (:meth:`MetricsRegistry.counter` and
    friends), never constructed directly.  An unlabeled family delegates
    ``inc``/``set``/``dec``/``observe`` to its single implicit child, so
    ``registry.gauge("repro_estimate", "...").set(4.0)`` reads naturally.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not _METRIC_NAME.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_NAME.match(label):
                raise ConfigurationError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        self.name = name
        self.help_text = help_text
        self.metric_type = metric_type
        self.label_names = tuple(str(label) for label in label_names)
        self._buckets = tuple(sorted(float(b) for b in buckets))
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.label_names:
            self._children[()] = self._new_child()

    def _new_child(self):
        child_type = _CHILD_TYPES[self.metric_type]
        if self.metric_type == "histogram":
            return child_type(self._buckets)
        return child_type()

    def labels(self, **label_values: object):
        """The child for one label-value combination (created on first use).

        The returned child is a stable object; hot paths resolve it once
        and keep the handle.
        """
        if set(label_values) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.label_names)}, got {sorted(label_values)}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _only_child(self):
        if self.label_names:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled; address a child with "
                f".labels({', '.join(self.label_names)}=...)"
            )
        return self._children[()]

    # Unlabeled convenience: delegate to the single implicit child.

    def inc(self, amount: float = 1.0) -> None:
        self._only_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only_child().dec(amount)

    def set(self, value: float) -> None:
        self._only_child().set(value)

    def observe(self, value: float) -> None:
        self._only_child().observe(value)

    @property
    def value(self) -> float:
        """The unlabeled child's current value (counters and gauges)."""
        return self._only_child().value

    def samples(self) -> Iterable[Tuple[str, Tuple[str, ...], float]]:
        """Every rendered series as ``(suffix, label_values_with_extra, value)``."""
        for key in sorted(self._children):
            child = self._children[key]
            if self.metric_type == "histogram":
                cumulative = 0
                for bound, count in zip(child.buckets, child.counts):
                    cumulative += count
                    yield "_bucket", key + (_format_value(bound),), cumulative
                yield "_bucket", key + ("+Inf",), child.count
                yield "_sum", key, child.sum
                yield "_count", key, child.count
            else:
                yield "", key, child.value

    def render(self) -> List[str]:
        """This family's exposition lines, HELP and TYPE first."""
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.metric_type}",
        ]
        bucket_labels = self.label_names + ("le",)
        for suffix, values, value in self.samples():
            names = bucket_labels if suffix == "_bucket" else self.label_names
            lines.append(
                f"{self.name}{suffix}"
                f"{_render_labels(names, values)} {_format_value(value)}"
            )
        return lines


class MetricsRegistry:
    """Owns metric families and renders them as Prometheus text.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the existing family (the type and label names
    must agree, otherwise the call fails loudly).  *Collectors* registered
    with :meth:`add_collector` run at the start of every :meth:`render`,
    which is how derived gauges (staleness, violation fraction, shard
    imbalance) are refreshed from live network state exactly when a scrape
    asks for them.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []

    def _family(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labels: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if (
                existing.metric_type != metric_type
                or existing.label_names != tuple(labels)
            ):
                raise ConfigurationError(
                    f"metric {name!r} already registered as a "
                    f"{existing.metric_type} with labels "
                    f"{list(existing.label_names)}; cannot re-register as a "
                    f"{metric_type} with labels {list(labels)}"
                )
            return existing
        family = MetricFamily(name, help_text, metric_type, labels, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._family(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._family(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Get or create a histogram family."""
        return self._family(name, help_text, "histogram", labels, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector`` before every render (refresh derived gauges)."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector now (render does this itself)."""
        for collector in self._collectors:
            collector()

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format v0.0.4."""
        self.collect()
        lines: List[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].render())
        return "\n".join(lines) + "\n" if lines else ""
