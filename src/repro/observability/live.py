"""The long-lived tracker service: live ingestion, alerts, HTTP exposition.

Everything else in the repo is batch-replay; this module is the deployment
the protocol was designed for — continuous monitoring of live channels.

* :class:`LiveTracker` wraps any synchronous RunSpec topology (flat,
  sharded, L-level tree) behind a thread-safe **push API**
  (:meth:`LiveTracker.push` delivers one update and refreshes estimate,
  violation and alert state) and wires the full instrumentation layer, so
  a Prometheus scrape sees the same accounting ``result.summary()``
  reports.
* :class:`LiveTrackerServer` stands the tracker up as a service: a
  line-protocol TCP **feed** (``time site delta`` per line) and an
  ``http.server`` endpoint serving ``/metrics`` (Prometheus text format),
  ``/status`` (JSON) and ``/healthz``, each in a daemon thread.

``repro serve --config spec.json`` drives both (see ``repro.cli``).  The
spec's ``source.live`` variant declares a feed-fed deployment; a generator
spec may also be served (its ``sites`` count sizes the network — useful for
smoke tests), but trace and asynchronous specs are refused: the service
clock is wall time, not the virtual clock.
"""

from __future__ import annotations

import json
import socketserver
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import shard_imbalance
from repro.exceptions import ConfigurationError, ProtocolError, ReproError
from repro.monitoring.sharding import ShardedNetwork
from repro.observability.instrument import NetworkInstrumentation
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracelog import TraceLog

__all__ = ["LiveTracker", "LiveTrackerServer", "parse_feed_line"]

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def parse_feed_line(line: str) -> Optional[tuple]:
    """Parse one feed line into ``(time, site, delta)``, or ``None`` to skip.

    The line protocol is deliberately minimal: three integer fields
    ``time site delta``, separated by whitespace or commas.  Blank lines
    and ``#`` comments are skipped.  Malformed lines raise ``ValueError``
    (the feed handler counts them and keeps reading).
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.replace(",", " ").split()
    if len(parts) != 3:
        raise ValueError(
            f"feed lines carry exactly 'time site delta', got {line!r}"
        )
    return int(parts[0]), int(parts[1]), int(parts[2])


class LiveTracker:
    """A continuously fed monitoring network with live metrics and alerts.

    Args:
        spec: A validated :class:`~repro.api.RunSpec` with a synchronous
            transport and either a ``source.live`` or a generator source
            (whose ``sites`` count sizes the network).
        registry: Metrics registry to populate; a fresh one by default.
        trace: Optional ring-buffered :class:`TraceLog` for protocol events.
        error_threshold: Relative error above which a push counts as a
            violation and raises the error alert; defaults to the spec's
            ``tracker.epsilon``.
        alert_values: Estimate thresholds; crossing one upward records an
            alert (a classic "notify me when the count passes N" monitor).
        alerts_capacity: Ring size of the retained alert list.
    """

    def __init__(
        self,
        spec,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
        error_threshold: Optional[float] = None,
        alert_values: Sequence[float] = (),
        alerts_capacity: int = 64,
    ) -> None:
        spec.validate()
        if spec.transport.mode != "sync":
            raise ConfigurationError(
                "the live service delivers pushed updates synchronously as "
                "they arrive; transport.mode must be 'sync'"
            )
        if spec.source.trace is not None:
            raise ConfigurationError(
                "a trace source is a batch replay; serve a source.live spec "
                "(or a generator spec, whose sites count sizes the network)"
            )
        self.spec = spec
        self.network = spec.build_network(spec.source.sites)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        self.instrumentation = NetworkInstrumentation(
            registry=self.registry, trace=trace
        ).attach(self.network)
        if error_threshold is None:
            error_threshold = float(spec.tracker.epsilon)
        if error_threshold <= 0.0:
            raise ConfigurationError(
                f"error_threshold must be > 0, got {error_threshold}"
            )
        self.error_threshold = error_threshold
        self.alert_values = tuple(float(v) for v in alert_values)
        # One lock serializes pushes and scrapes: the registry and the
        # network are not thread-safe, and the feed server is threaded.
        self._lock = threading.RLock()
        self.updates = 0
        self.true_value = 0
        self.last_time = 0
        self.violations = 0
        self.alerts_total = 0
        self._error_alert_active = False
        self._values_crossed = [False] * len(self.alert_values)
        self.alerts: deque = deque(maxlen=alerts_capacity)
        reg = self.registry
        provenance = spec.provenance()
        reg.gauge(
            "repro_info",
            "Constant 1; labels carry the library version and spec hash.",
            labels=("repro_version", "spec_hash"),
        ).labels(
            repro_version=provenance["repro_version"],
            spec_hash=provenance["spec_hash"],
        ).set(1)
        self._updates_total = reg.counter(
            "repro_updates_total", "Stream updates ingested by the service."
        )
        self._violations_total = reg.counter(
            "repro_violations_total",
            "Pushes whose relative error exceeded the error threshold.",
        )
        self._alerts_total = reg.counter(
            "repro_alerts_total", "Alerts raised (error and value-threshold)."
        )
        reg.add_collector(self._collect)

    # -- ingestion -----------------------------------------------------------

    def push(self, time: int, site: int, delta: int) -> float:
        """Ingest one update; returns the estimate after delivery.

        Thread-safe; this is both the in-process API and what the socket
        feed calls per line.
        """
        time, site, delta = int(time), int(site), int(delta)
        with self._lock:
            self.network.deliver_update(time, site, delta)
            self.updates += 1
            self.true_value += delta
            self.last_time = max(self.last_time, time)
            self._updates_total.inc()
            estimate = self.network.estimate()
            self._check_alerts(time, estimate)
            return estimate

    def _relative_error(self, estimate: float) -> float:
        error = abs(estimate - self.true_value)
        if self.true_value == 0:
            # Same convention as TrackingResult.max_relative_error: at zero
            # crossings the absolute error stands in for the relative one.
            return float(error)
        return float(error / abs(self.true_value))

    def _check_alerts(self, time: int, estimate: float) -> None:
        relative_error = self._relative_error(estimate)
        violating = relative_error > self.error_threshold
        if violating:
            self.violations += 1
            self._violations_total.inc()
        if violating and not self._error_alert_active:
            self._error_alert_active = True
            self._record_alert(
                {
                    "type": "error",
                    "time": time,
                    "estimate": float(estimate),
                    "true_value": float(self.true_value),
                    "relative_error": relative_error,
                    "threshold": self.error_threshold,
                }
            )
        elif not violating:
            self._error_alert_active = False
        for index, threshold in enumerate(self.alert_values):
            crossed = estimate >= threshold
            if crossed and not self._values_crossed[index]:
                self._record_alert(
                    {
                        "type": "value",
                        "time": time,
                        "estimate": float(estimate),
                        "threshold": threshold,
                    }
                )
            self._values_crossed[index] = crossed

    def _record_alert(self, alert: Dict[str, object]) -> None:
        self.alerts_total += 1
        self._alerts_total.inc()
        self.alerts.append(alert)
        if self.trace is not None:
            self.trace.emit("alert", time=float(alert["time"]), **{
                key: value for key, value in alert.items() if key != "time"
            })

    # -- exposition ----------------------------------------------------------

    def estimate(self) -> float:
        """The network's current estimate (thread-safe)."""
        with self._lock:
            return self.network.estimate()

    def _collect(self) -> None:
        """Registry collector: refresh the service-level derived gauges."""
        reg = self.registry
        estimate = self.network.estimate()
        reg.gauge(
            "repro_estimate", "Current estimate served by the tracker."
        ).set(estimate)
        reg.gauge(
            "repro_true_value", "Exact running value of the ingested stream."
        ).set(self.true_value)
        reg.gauge(
            "repro_relative_error",
            "Current relative error of the estimate "
            "(absolute error at zero crossings).",
        ).set(self._relative_error(estimate))
        reg.gauge(
            "repro_violation_fraction",
            "Fraction of ingested updates whose error exceeded the "
            "threshold.",
        ).set(self.violations / self.updates if self.updates else 0.0)
        reg.gauge(
            "repro_alert_active",
            "1 while the estimate is outside the error threshold.",
        ).set(1.0 if self._error_alert_active else 0.0)
        rates = self.network.stats.rate(self.last_time)
        reg.gauge(
            "repro_message_rate",
            "Charged messages per stream-time unit.",
        ).set(rates["messages_per_unit"])
        reg.gauge(
            "repro_bit_rate", "Charged bits per stream-time unit."
        ).set(rates["bits_per_unit"])

    def scrape(self) -> str:
        """The registry in Prometheus text format (collectors refreshed)."""
        with self._lock:
            return self.registry.render()

    def status(self) -> dict:
        """A JSON-compatible snapshot mirroring ``result.summary()``.

        The same numbers a batch run reports — totals, by-kind counters,
        rates, per-level accounting, shard imbalance — plus the live-only
        state (violations, alerts, provenance).
        """
        with self._lock:
            estimate = self.network.estimate()
            stats = self.network.stats
            data = {
                "updates": self.updates,
                "last_time": self.last_time,
                "estimate": float(estimate),
                "true_value": float(self.true_value),
                "relative_error": self._relative_error(estimate),
                "error_threshold": self.error_threshold,
                "violations": self.violations,
                "violation_fraction": (
                    self.violations / self.updates if self.updates else 0.0
                ),
                "total_messages": stats.messages,
                "total_bits": stats.bits,
                "messages_by_kind": dict(stats.by_kind),
                "rates": stats.rate(self.last_time),
                "alerts_total": self.alerts_total,
                "alerts": list(self.alerts),
                "provenance": self.spec.provenance(),
            }
            if isinstance(self.network, ShardedNetwork):
                data["levels"] = self.network.level_summary()
                if self.network.num_shards > 1:
                    data["shard_imbalance"] = shard_imbalance(
                        self.network.shard_stats()
                    )
            return data


class _FeedHandler(socketserver.StreamRequestHandler):
    """One feed connection: parse lines, push updates, count errors."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: "_FeedServer" = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            try:
                parsed = parse_feed_line(raw.decode("utf-8", "replace"))
            except ValueError:
                server.errors += 1
                continue
            if parsed is None:
                continue
            try:
                server.tracker.push(*parsed)
                server.lines += 1
            except ReproError:
                # An out-of-range site or a non-unit delta must not kill
                # the connection; count it and keep reading.
                server.errors += 1


class _FeedServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, tracker: LiveTracker) -> None:
        super().__init__(address, _FeedHandler)
        self.tracker = tracker
        #: Successfully ingested feed lines / rejected ones.
        self.lines = 0
        self.errors = 0


class LiveTrackerServer:
    """HTTP exposition + TCP feed around one :class:`LiveTracker`.

    Binds both listeners at construction (``port=0`` picks ephemeral
    ports; read the resolved ones from :attr:`http_port` / :attr:`feed_port`),
    serves from daemon threads after :meth:`start`, and tears both down in
    :meth:`shutdown`.
    """

    def __init__(
        self,
        tracker: LiveTracker,
        host: str = "127.0.0.1",
        http_port: int = 8077,
        feed_port: int = 8078,
    ) -> None:
        self.tracker = tracker
        self.host = host
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence per-request noise
                pass

            def _respond(self, code: int, content_type: str, body: bytes):
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = server.tracker.scrape().encode("utf-8")
                    self._respond(200, METRICS_CONTENT_TYPE, body)
                elif path == "/status":
                    body = json.dumps(server.status(), indent=2).encode("utf-8")
                    self._respond(200, "application/json", body)
                elif path == "/healthz":
                    self._respond(200, "text/plain; charset=utf-8", b"ok\n")
                else:
                    self._respond(
                        404,
                        "text/plain; charset=utf-8",
                        b"unknown path; try /metrics, /status or /healthz\n",
                    )

        self._http = ThreadingHTTPServer((host, http_port), _Handler)
        self._http.daemon_threads = True
        self._feed = _FeedServer((host, feed_port), tracker)
        self.http_port = self._http.server_address[1]
        self.feed_port = self._feed.server_address[1]
        self._threads: List[threading.Thread] = []
        self._started = False

    @property
    def feed_lines(self) -> int:
        """Feed lines successfully ingested so far."""
        return self._feed.lines

    @property
    def feed_errors(self) -> int:
        """Feed lines rejected as malformed or out of range."""
        return self._feed.errors

    def status(self) -> dict:
        """The tracker's status extended with the service's own state."""
        data = self.tracker.status()
        data["feed"] = {"lines": self._feed.lines, "errors": self._feed.errors}
        data["endpoints"] = {
            "metrics": f"http://{self.host}:{self.http_port}/metrics",
            "status": f"http://{self.host}:{self.http_port}/status",
            "feed": f"{self.host}:{self.feed_port}",
        }
        return data

    def start(self) -> "LiveTrackerServer":
        """Serve both listeners from daemon threads; returns self."""
        if self._started:
            raise ProtocolError("the server is already running")
        self._started = True
        for name, srv in (("http", self._http), ("feed", self._feed)):
            thread = threading.Thread(
                target=srv.serve_forever,
                name=f"repro-serve-{name}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self) -> None:
        """Stop serving and release both sockets (idempotent)."""
        for srv in (self._http, self._feed):
            # BaseServer.shutdown() waits for a serve_forever loop to
            # acknowledge; calling it on a never-started server blocks
            # forever, so skip straight to closing the socket then.
            if self._started:
                try:
                    srv.shutdown()
                except Exception:
                    pass
            srv.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        self._started = False
