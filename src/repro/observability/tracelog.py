"""Ring-buffered structured trace events with spans for block rounds.

Metrics aggregate; traces explain.  The :class:`TraceLog` keeps the last
``capacity`` structured events in a ring buffer (``collections.deque`` with
``maxlen``), so a long-lived service can always answer "what were the most
recent protocol events" without unbounded memory.  Two event shapes:

* **point events** — :meth:`TraceLog.emit` records one named event at one
  virtual time with arbitrary JSON-compatible fields (a send, a delivery,
  a migration);
* **spans** — :meth:`TraceLog.begin_span` returns a handle;
  :meth:`TraceSpan.end` records one event covering the whole interval
  (``start``/``end``/``duration``).  The instrumentation layer uses spans
  for block-close rounds: the span opens when the coordinator starts
  requesting ``(c_i, f_i)`` and closes when the new level is broadcast, so
  under the asynchronous transport the span's duration is the round's
  virtual-time cost.

The whole log dumps to JSON (:meth:`TraceLog.to_json` / :meth:`dump`), one
object per event, in emission order.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from typing import Dict, Iterator, List, Optional

from repro.exceptions import ConfigurationError

__all__ = ["TraceEvent", "TraceSpan", "TraceLog"]


class TraceEvent:
    """One structured event: a name, a virtual time, and free-form fields."""

    __slots__ = ("seq", "name", "time", "fields")

    def __init__(self, seq: int, name: str, time: float, fields: Dict[str, object]):
        self.seq = seq
        self.name = name
        self.time = time
        self.fields = fields

    def to_dict(self) -> dict:
        """JSON-compatible form (fields flattened next to name/time/seq)."""
        data = {"seq": self.seq, "name": self.name, "time": self.time}
        data.update(self.fields)
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.to_dict()!r})"


class TraceSpan:
    """An open interval; :meth:`end` emits the completed span event."""

    __slots__ = ("_log", "name", "start", "_fields", "_closed")

    def __init__(self, log: "TraceLog", name: str, start: float, fields: dict):
        self._log = log
        self.name = name
        self.start = float(start)
        self._fields = fields
        self._closed = False

    def end(self, time: float, **fields: object) -> TraceEvent:
        """Close the span at ``time``; extra fields join the begin fields."""
        if self._closed:
            raise ConfigurationError(
                f"span {self.name!r} (start {self.start}) already ended"
            )
        self._closed = True
        merged = dict(self._fields)
        merged.update(fields)
        merged["start"] = self.start
        merged["end"] = float(time)
        merged["duration"] = float(time) - self.start
        return self._log.emit(self.name, time=float(time), **merged)


class TraceLog:
    """A bounded, JSON-dumpable log of structured protocol events."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"trace log capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        #: Events emitted over the log's lifetime (>= len(log) once the
        #: ring has wrapped).
        self.emitted = 0

    def emit(self, name: str, time: float = 0.0, **fields: object) -> TraceEvent:
        """Record one event; the oldest event is dropped when full."""
        event = TraceEvent(self._seq, str(name), float(time), fields)
        self._seq += 1
        self.emitted += 1
        self._events.append(event)
        return event

    def begin_span(self, name: str, time: float, **fields: object) -> TraceSpan:
        """Open a span at ``time``; nothing is recorded until ``end``."""
        return TraceSpan(self, name, time, fields)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(list(self._events))

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def named(self, name: str) -> List[TraceEvent]:
        """The retained events with one name, oldest first."""
        return [event for event in self._events if event.name == name]

    def clear(self) -> None:
        """Drop every retained event (sequence numbers keep increasing)."""
        self._events.clear()

    def to_dicts(self) -> List[dict]:
        """Every retained event as a JSON-compatible dict, oldest first."""
        return [event.to_dict() for event in self._events]

    def to_json(self, indent: Optional[int] = None) -> str:
        """The retained events as one JSON array."""
        return json.dumps(self.to_dicts(), indent=indent)

    def dump(self, path) -> int:
        """Write :meth:`to_json` to ``path``; returns the event count."""
        events = self.to_dicts()
        pathlib.Path(path).write_text(
            json.dumps(events, indent=2) + "\n", encoding="utf-8"
        )
        return len(events)
