"""Site-side protocol for distributed tracking algorithms.

Sites consume local updates one at a time (:meth:`Site.receive_update`) or in
contiguous batches (:meth:`Site.receive_batch`).  The batch entry point exists
for the streaming engine's fast path: a site that can prove a prefix of a run
triggers no communication may absorb it in bulk, but the default
implementation simply replays the run update by update, so batch delivery is
always protocol-equivalent to per-update delivery.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.exceptions import ProtocolError
from repro.monitoring.channel import Channel
from repro.monitoring.messages import Message

__all__ = ["Site"]


class Site(abc.ABC):
    """Base class for the site side of a tracking algorithm.

    A concrete site reacts to two kinds of events: a local stream update
    (:meth:`receive_update`) and a message from the coordinator
    (:meth:`receive_message`).  It talks back to the coordinator exclusively
    through :meth:`send`, which routes through the counted channel.
    """

    def __init__(self, site_id: int) -> None:
        if site_id < 0:
            raise ProtocolError(f"site id must be >= 0, got {site_id}")
        self.site_id = site_id
        self._channel: Channel | None = None

    def attach(self, channel: Channel) -> None:
        """Connect this site to a channel; called by the network."""
        self._channel = channel
        channel.register_site(self.site_id, self.receive_message)

    def send(self, message: Message) -> None:
        """Send a message to the coordinator through the counted channel."""
        if self._channel is None:
            raise ProtocolError(
                f"site {self.site_id} is not attached to a channel; "
                "add it to a MonitoringNetwork first"
            )
        self._channel.send_to_coordinator(message)

    @abc.abstractmethod
    def receive_update(self, time: int, delta: int) -> None:
        """Handle a stream update ``f'(time) = delta`` arriving at this site."""

    def receive_batch(
        self,
        times: Sequence[int],
        deltas: Sequence[int],
        network=None,
    ) -> None:
        """Handle a contiguous run of local updates.

        The contract is observational equivalence: after ``receive_batch``
        the site state, the coordinator state, and all communication counters
        (messages, bits, per-kind breakdown) must be identical to calling
        ``receive_update(t, d)`` for each pair in order.  The base
        implementation guarantees this trivially by doing exactly that;
        subclasses may override it with a vectorised fast path as long as
        they preserve the contract (see
        :class:`repro.core.template.BlockTrackingSite`).

        Args:
            times: Timesteps of the run, in order.
            deltas: Matching per-timestep changes.
            network: The :class:`~repro.monitoring.network.MonitoringNetwork`
                delivering the run, if the caller can provide it.  Fast paths
                may use it to compute protocol trigger points in closed form;
                the base implementation ignores it.
        """
        if len(times) != len(deltas):
            raise ProtocolError(
                f"batch times ({len(times)}) and deltas ({len(deltas)}) must "
                "have equal length"
            )
        for time, delta in zip(times, deltas):
            self.receive_update(time, delta)

    @abc.abstractmethod
    def receive_message(self, message: Message) -> None:
        """Handle a message (request or broadcast) from the coordinator."""
