"""Site-side protocol for distributed tracking algorithms."""

from __future__ import annotations

import abc

from repro.exceptions import ProtocolError
from repro.monitoring.channel import Channel
from repro.monitoring.messages import Message

__all__ = ["Site"]


class Site(abc.ABC):
    """Base class for the site side of a tracking algorithm.

    A concrete site reacts to two kinds of events: a local stream update
    (:meth:`receive_update`) and a message from the coordinator
    (:meth:`receive_message`).  It talks back to the coordinator exclusively
    through :meth:`send`, which routes through the counted channel.
    """

    def __init__(self, site_id: int) -> None:
        if site_id < 0:
            raise ProtocolError(f"site id must be >= 0, got {site_id}")
        self.site_id = site_id
        self._channel: Channel | None = None

    def attach(self, channel: Channel) -> None:
        """Connect this site to a channel; called by the network."""
        self._channel = channel
        channel.register_site(self.site_id, self.receive_message)

    def send(self, message: Message) -> None:
        """Send a message to the coordinator through the counted channel."""
        if self._channel is None:
            raise ProtocolError(
                f"site {self.site_id} is not attached to a channel; "
                "add it to a MonitoringNetwork first"
            )
        self._channel.send_to_coordinator(message)

    @abc.abstractmethod
    def receive_update(self, time: int, delta: int) -> None:
        """Handle a stream update ``f'(time) = delta`` arriving at this site."""

    @abc.abstractmethod
    def receive_message(self, message: Message) -> None:
        """Handle a message (request or broadcast) from the coordinator."""
