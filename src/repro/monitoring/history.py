"""Coordinator-side estimate history, supporting historical (tracing) queries.

Because the coordinator retains every message it receives, a distributed
tracking algorithm doubles as a summary of the whole history of ``f``: replay
the messages received up to time ``t`` and you recover the estimate the
coordinator held at time ``t``.  This is exactly the reduction used in
Appendix D of the paper (tracing lower bounds imply tracking lower bounds).
:class:`EstimateHistory` records the estimate after every timestep so that
historical queries can be answered in ``O(log n)`` lookup time.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from repro.exceptions import QueryError

__all__ = ["EstimateHistory"]


class EstimateHistory:
    """Append-only log of (time, estimate) pairs with historical lookup."""

    def __init__(self) -> None:
        self._times: List[int] = []
        self._estimates: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time: int, estimate: float) -> None:
        """Record the coordinator's estimate after timestep ``time``.

        Times must be recorded in strictly increasing order.
        """
        if self._times and time <= self._times[-1]:
            raise QueryError(
                f"history times must increase; got {time} after {self._times[-1]}"
            )
        self._times.append(time)
        self._estimates.append(estimate)

    def query(self, time: int) -> float:
        """Return the estimate held at the latest recorded time ``<= time``."""
        if not self._times:
            raise QueryError("history is empty")
        if time < self._times[0]:
            raise QueryError(f"query time {time} precedes first record {self._times[0]}")
        index = bisect.bisect_right(self._times, time) - 1
        return self._estimates[index]

    def as_pairs(self) -> List[Tuple[int, float]]:
        """Return the full history as a list of ``(time, estimate)`` pairs."""
        return list(zip(self._times, self._estimates))
