"""Wiring of a coordinator and ``k`` sites over one counted channel.

Updates reach sites either one at a time (:meth:`MonitoringNetwork.deliver_update`)
or as contiguous same-site runs (:meth:`MonitoringNetwork.deliver_batch`), the
fast path used by the batched streaming engine in
:mod:`repro.monitoring.runner`.  Batch delivery hands the run to the site's
``receive_batch``, which for the block-template trackers is a thin adapter
over the span kernel (:mod:`repro.engine`).  Both paths are
protocol-equivalent: batch delivery produces the same messages, in the same
order, with the same counted cost as per-update delivery.

A :class:`MonitoringNetwork` is one *flat* star: one coordinator, ``k``
sites, one channel.  The two-level sharded topology
(:mod:`repro.monitoring.sharding`) composes flat networks: each shard is a
flat network over its own site group, and a second flat network — whose
"sites" are the shard uplinks — connects the shard coordinators to the root
aggregator.  :meth:`MonitoringNetwork.multicast` is the shard-aware delivery
primitive that topology adds to the substrate.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exceptions import ProtocolError
from repro.monitoring.channel import Channel, ChannelStats
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.site import Site

__all__ = ["MonitoringNetwork"]


class MonitoringNetwork:
    """A coordinator plus ``k`` sites connected by a counted channel.

    The network owns the channel and therefore the communication counters.
    By default the channel is the synchronous counted :class:`Channel`; a
    transport with different delivery semantics (e.g. the latency-aware
    :class:`repro.asynchrony.AsyncChannel`) can be injected via ``channel``.
    Algorithms are built by a factory (see
    :class:`repro.core.deterministic.DeterministicCounter` and friends) that
    returns a matched coordinator/site set; the network only handles wiring
    and update dispatch.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        sites: Sequence[Site],
        channel: Optional[Channel] = None,
    ) -> None:
        if not sites:
            raise ProtocolError("a monitoring network needs at least one site")
        site_ids = sorted(site.site_id for site in sites)
        if site_ids != list(range(len(sites))):
            raise ProtocolError(
                f"site ids must be exactly 0..{len(sites) - 1}, got {site_ids}"
            )
        if channel is not None and channel.num_sites != len(sites):
            raise ProtocolError(
                f"injected channel serves {channel.num_sites} sites, "
                f"network has {len(sites)}"
            )
        self.coordinator = coordinator
        self.sites = sorted(sites, key=lambda s: s.site_id)
        self.channel = channel if channel is not None else Channel(num_sites=len(sites))
        coordinator.attach(self.channel)
        for site in self.sites:
            site.attach(self.channel)

    @property
    def num_sites(self) -> int:
        """Number of sites ``k`` in the network."""
        return len(self.sites)

    @property
    def stats(self) -> ChannelStats:
        """Live communication counters for this network."""
        return self.channel.stats

    def deliver_update(self, time: int, site_id: int, delta: int) -> None:
        """Deliver one stream update to its destination site.

        Local delivery of the update itself is free (it models the site
        observing its own data); any communication it triggers is charged by
        the channel.
        """
        if not 0 <= site_id < self.num_sites:
            raise ProtocolError(
                f"update destined for site {site_id}, but network has "
                f"{self.num_sites} sites"
            )
        self.sites[site_id].receive_update(time, delta)

    def deliver_batch(
        self, site_id: int, times: Sequence[int], deltas: Sequence[int]
    ) -> None:
        """Deliver a contiguous run of updates, all destined for one site.

        Equivalent to calling :meth:`deliver_update` once per pair, but lets
        the site absorb communication-free prefixes of the run in bulk.  Like
        per-update delivery, local delivery itself is free; any communication
        the run triggers is charged by the channel exactly as in the
        per-update path.
        """
        if not 0 <= site_id < self.num_sites:
            raise ProtocolError(
                f"batch destined for site {site_id}, but network has "
                f"{self.num_sites} sites"
            )
        self.sites[site_id].receive_batch(times, deltas, network=self)

    def multicast(self, message, site_ids) -> None:
        """Deliver one coordinator message to a subset of this network's sites.

        Charged once per listed receiver, like a broadcast restricted to
        ``site_ids``.  The sharded hierarchy's root network uses this to
        refresh only the shards whose recorded global level is stale.
        """
        self.channel.multicast(message, site_ids)

    def estimate(self) -> float:
        """Return the coordinator's current estimate."""
        return self.coordinator.estimate()
