"""Message types exchanged between sites and the coordinator.

The paper measures communication in messages of ``O(log n)`` bits.  To let
experiments check bounds in either unit we model each message explicitly and
charge it a bit cost derived from its integer payload (plus a small constant
header for the message kind and the site identifier).
"""

from __future__ import annotations

import enum
import numbers
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = [
    "MessageKind",
    "Message",
    "BROADCAST_SITE",
    "COORDINATOR",
    "HEADER_BITS",
    "integer_bit_length",
    "integer_bit_lengths",
    "message_bits",
]

# Sentinel destination meaning "all sites" for coordinator broadcasts.
BROADCAST_SITE = -1

# Sentinel address of the coordinator, used as sender/receiver of site traffic.
COORDINATOR = -2

# Fixed header cost (message kind + addressing), in bits.
HEADER_BITS = 16


class MessageKind(enum.Enum):
    """The role a message plays in the tracking protocols."""

    #: A site reports new local state (drift, counter value, ...).
    REPORT = "report"
    #: The coordinator asks a site for its exact local state.
    REQUEST = "request"
    #: A site answers a coordinator request.
    REPLY = "reply"
    #: The coordinator broadcasts new global parameters (e.g. the block level r).
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class Message:
    """One message on a channel between a site and the coordinator.

    Attributes:
        kind: The protocol role of the message.
        sender: Site id of the sender, or ``BROADCAST_SITE`` if sent by the
            coordinator.
        receiver: Site id of the receiver, or ``BROADCAST_SITE`` for a
            coordinator broadcast to every site.
        payload: Named integer (or float) fields carried by the message.
        time: The stream timestep at which the message was sent.
    """

    kind: MessageKind
    sender: int
    receiver: int
    payload: Mapping[str, float] = field(default_factory=dict)
    time: int = 0

    def bits(self) -> int:
        """Return the bit cost charged for this message."""
        return message_bits(self)


def integer_bit_length(value: float) -> int:
    """Bits needed to encode one payload value (sign + magnitude).

    Floats (used by randomized estimators for ``1/p`` corrections) are charged
    as 32-bit quantities, matching the word-size accounting of the paper.
    """
    if type(value) is int:  # fast path for the overwhelmingly common case
        return 1 + max(1, abs(value).bit_length())
    if isinstance(value, numbers.Integral):
        magnitude = abs(int(value))
        return 1 + max(1, magnitude.bit_length())
    return 32


def integer_bit_lengths(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`integer_bit_length` for arrays of integers.

    Exact for ``|value| < 2**53``: ``np.frexp`` returns the binary exponent,
    which for a positive integer equals its bit length (and 0 for 0, which the
    ``max(1, .)`` clamp maps to the same 1-bit charge as the scalar version).
    Payload magnitudes in this codebase are bounded by stream length, far
    below the 2**53 float-precision limit.
    """
    exponents = np.frexp(np.abs(values).astype(np.float64))[1]
    return 1 + np.maximum(exponents, 1)


def message_bits(message: Message) -> int:
    """Total bit cost of a message: header plus payload encoding."""
    payload_bits = sum(integer_bit_length(v) for v in message.payload.values())
    return HEADER_BITS + payload_bits
