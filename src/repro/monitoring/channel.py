"""Counted communication channel between sites and the coordinator.

The channel is the single place where communication cost is accounted, so
every algorithm measured by the experiments pays for its messages the same
way.  Broadcasts are charged once per site, matching the paper's accounting
("k broadcast at n_{j+1}").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.exceptions import ProtocolError
from repro.monitoring.messages import BROADCAST_SITE, Message

__all__ = ["ChannelStats", "Channel"]


@dataclass
class ChannelStats:
    """Cumulative communication counters for one simulation run."""

    messages: int = 0
    bits: int = 0
    by_kind: dict = field(default_factory=dict)

    def record(self, message: Message, copies: int = 1) -> None:
        """Charge ``copies`` transmissions of ``message``."""
        self.messages += copies
        self.bits += copies * message.bits()
        kind = message.kind.value
        self.by_kind[kind] = self.by_kind.get(kind, 0) + copies

    def record_bulk(self, kind_value: str, copies: int, total_bits: int) -> None:
        """Charge ``copies`` messages of one kind totalling ``total_bits``.

        Used by the batched fast path to account for messages it has
        simulated in closed form without constructing them one by one.
        """
        self.messages += copies
        self.bits += total_bits
        self.by_kind[kind_value] = self.by_kind.get(kind_value, 0) + copies

    def snapshot(self) -> "ChannelStats":
        """Return an independent copy of the current counters."""
        return ChannelStats(
            messages=self.messages, bits=self.bits, by_kind=dict(self.by_kind)
        )


class Channel:
    """Delivers messages between the coordinator and ``k`` sites, counting cost.

    The channel is synchronous: :meth:`send` delivers the message to its
    destination handler before returning.  Handlers are registered by the
    :class:`repro.monitoring.network.MonitoringNetwork` when it wires the
    actors together.
    """

    def __init__(self, num_sites: int) -> None:
        if num_sites < 1:
            raise ProtocolError(f"channel needs at least one site, got {num_sites}")
        self._num_sites = num_sites
        self._coordinator_handler: Optional[Callable[[Message], None]] = None
        self._site_handlers: List[Optional[Callable[[Message], None]]] = [
            None
        ] * num_sites
        self.stats = ChannelStats()
        self._log: List[Message] = []
        self._record_log = False

    @property
    def num_sites(self) -> int:
        """Number of sites attached to this channel."""
        return self._num_sites

    def enable_log(self) -> None:
        """Record every delivered message (used by the tracing lower bound)."""
        self._record_log = True

    @property
    def log_enabled(self) -> bool:
        """Whether every delivered message is being recorded in the log."""
        return self._record_log

    @property
    def log(self) -> List[Message]:
        """All messages delivered so far, if logging is enabled.

        The log mirrors the channel's *charged* traffic one entry per
        transmission: a broadcast delivered to ``k`` sites appears ``k``
        times, matching the ``k`` message copies it is charged.
        """
        return list(self._log)

    def register_coordinator(self, handler: Callable[[Message], None]) -> None:
        """Register the coordinator's message handler."""
        self._coordinator_handler = handler

    def register_site(self, site_id: int, handler: Callable[[Message], None]) -> None:
        """Register the handler for one site."""
        if not 0 <= site_id < self._num_sites:
            raise ProtocolError(f"site id {site_id} out of range 0..{self._num_sites - 1}")
        self._site_handlers[site_id] = handler

    def send_to_coordinator(self, message: Message) -> None:
        """Deliver a site-to-coordinator message and charge its cost."""
        if self._coordinator_handler is None:
            raise ProtocolError("no coordinator registered on this channel")
        self.stats.record(message)
        if self._record_log:
            self._log.append(message)
        self._coordinator_handler(message)

    def charge(self, kind: MessageKind, copies: int, total_bits: int) -> None:
        """Charge ``copies`` already-simulated messages without delivering them.

        The batched fast path uses this for messages whose receiver-side
        effect it has already established in closed form (bulk count-report
        absorption, simulated block closes) or that a later real message
        subsumes (superseded estimation reports).  Cost accounting is
        identical to sending each message individually; only the Python-level
        construction and dispatch are elided.  Refuses to run while the
        message log is enabled, because charged messages would never appear
        in the log — callers must fall back to per-update delivery when
        tracing.
        """
        if self._record_log:
            raise ProtocolError(
                "charge-only accounting would desynchronise the message log; "
                "use per-update delivery while logging is enabled"
            )
        if copies < 0 or total_bits < 0:
            raise ProtocolError(
                f"cannot charge {copies} messages / {total_bits} bits"
            )
        self.stats.record_bulk(kind.value, copies, total_bits)

    def send_to_site(self, message: Message) -> None:
        """Deliver a coordinator-to-site message (or broadcast) and charge its cost.

        A broadcast (``receiver == BROADCAST_SITE``) is delivered to every
        site and charged ``k`` message transmissions, matching the paper.
        """
        if message.receiver == BROADCAST_SITE:
            self.stats.record(message, copies=self._num_sites)
            if self._record_log:
                self._log.extend([message] * self._num_sites)
            for site_id, handler in enumerate(self._site_handlers):
                if handler is None:
                    raise ProtocolError(f"site {site_id} has no registered handler")
                handler(message)
            return
        if not 0 <= message.receiver < self._num_sites:
            raise ProtocolError(
                f"receiver {message.receiver} out of range 0..{self._num_sites - 1}"
            )
        handler = self._site_handlers[message.receiver]
        if handler is None:
            raise ProtocolError(f"site {message.receiver} has no registered handler")
        self.stats.record(message)
        if self._record_log:
            self._log.append(message)
        handler(message)
