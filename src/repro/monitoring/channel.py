"""Counted communication channel between sites and the coordinator.

The channel is the single place where communication cost is accounted, so
every algorithm measured by the experiments pays for its messages the same
way.  Broadcasts are charged once per site, matching the paper's accounting
("k broadcast at n_{j+1}").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.exceptions import ProtocolError
from repro.monitoring.messages import BROADCAST_SITE, Message, MessageKind

__all__ = ["ChannelStats", "Channel"]


@dataclass
class ChannelStats:
    """Cumulative communication counters for one simulation run.

    ``messages``/``bits`` count every charged *transmission attempt* — on a
    lossy transport that includes retransmissions, so the cost of reliability
    is exact rather than estimated.  The reliability counters break the
    attempts down: ``dropped`` attempts never arrived, ``retransmitted``
    attempts were re-sends triggered by a timeout, ``duplicates`` arrived but
    were suppressed by receiver-side dedup.  On the lossless transports all
    three stay zero.
    """

    messages: int = 0
    bits: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    bits_by_kind: dict[str, int] = field(default_factory=dict)
    dropped: int = 0
    retransmitted: int = 0
    duplicates: int = 0
    dropped_by_kind: dict[str, int] = field(default_factory=dict)
    retransmitted_by_kind: dict[str, int] = field(default_factory=dict)
    duplicates_by_kind: dict[str, int] = field(default_factory=dict)

    def _charge(self, kind_value: str, copies: int, total_bits: int) -> None:
        """Single accounting primitive every charge path funnels through.

        Both :meth:`record` (real messages, synchronous or asynchronous) and
        :meth:`record_bulk` (closed-form simulated messages) delegate here, so
        the counters cannot drift between delivery engines or channel types.
        """
        self.messages += copies
        self.bits += total_bits
        self.by_kind[kind_value] = self.by_kind.get(kind_value, 0) + copies
        self.bits_by_kind[kind_value] = (
            self.bits_by_kind.get(kind_value, 0) + total_bits
        )

    def record(self, message: Message, copies: int = 1) -> None:
        """Charge ``copies`` transmissions of ``message``."""
        self._charge(message.kind.value, copies, copies * message.bits())

    def record_bulk(self, kind_value: str, copies: int, total_bits: int) -> None:
        """Charge ``copies`` messages of one kind totalling ``total_bits``.

        Used by the batched fast path to account for messages it has
        simulated in closed form without constructing them one by one.
        """
        self._charge(kind_value, copies, total_bits)

    def record_dropped(self, message: Message, copies: int = 1) -> None:
        """Count ``copies`` transmission attempts of ``message`` that were lost.

        A dropped attempt has already been charged (at send time, like every
        other attempt); this records only that it never arrived.
        """
        kind = message.kind.value
        self.dropped += copies
        self.dropped_by_kind[kind] = self.dropped_by_kind.get(kind, 0) + copies

    def record_retransmit(self, message: Message, copies: int = 1) -> None:
        """Count ``copies`` timeout-triggered re-sends of ``message``.

        The re-send itself is charged through the normal accounting funnel;
        this marks how much of the traffic was retransmission overhead.
        """
        kind = message.kind.value
        self.retransmitted += copies
        self.retransmitted_by_kind[kind] = (
            self.retransmitted_by_kind.get(kind, 0) + copies
        )

    def record_duplicate(self, message: Message, copies: int = 1) -> None:
        """Count ``copies`` arrivals of ``message`` suppressed as duplicates."""
        kind = message.kind.value
        self.duplicates += copies
        self.duplicates_by_kind[kind] = (
            self.duplicates_by_kind.get(kind, 0) + copies
        )

    def snapshot(self) -> "ChannelStats":
        """Return an independent copy of the current counters."""
        return ChannelStats(
            messages=self.messages,
            bits=self.bits,
            by_kind=dict(self.by_kind),
            bits_by_kind=dict(self.bits_by_kind),
            dropped=self.dropped,
            retransmitted=self.retransmitted,
            duplicates=self.duplicates,
            dropped_by_kind=dict(self.dropped_by_kind),
            retransmitted_by_kind=dict(self.retransmitted_by_kind),
            duplicates_by_kind=dict(self.duplicates_by_kind),
        )

    def __add__(self, other: "ChannelStats") -> "ChannelStats":
        """Combine two counters into a new, independent one.

        This is how per-shard accounting aggregates (the sharded hierarchy
        keeps one :class:`ChannelStats` per shard channel plus one for the
        root channel); summing counters never requires hand-rolled dict math.
        """
        if not isinstance(other, ChannelStats):
            return NotImplemented

        def merged(left: dict[str, int], right: dict[str, int]) -> dict[str, int]:
            out = dict(left)
            for kind, count in right.items():
                out[kind] = out.get(kind, 0) + count
            return out

        return ChannelStats(
            messages=self.messages + other.messages,
            bits=self.bits + other.bits,
            by_kind=merged(self.by_kind, other.by_kind),
            bits_by_kind=merged(self.bits_by_kind, other.bits_by_kind),
            dropped=self.dropped + other.dropped,
            retransmitted=self.retransmitted + other.retransmitted,
            duplicates=self.duplicates + other.duplicates,
            dropped_by_kind=merged(self.dropped_by_kind, other.dropped_by_kind),
            retransmitted_by_kind=merged(
                self.retransmitted_by_kind, other.retransmitted_by_kind
            ),
            duplicates_by_kind=merged(
                self.duplicates_by_kind, other.duplicates_by_kind
            ),
        )

    def __radd__(self, other: object) -> "ChannelStats":
        """Support ``sum(stats_iterable)`` (and ``sum(..., ChannelStats())``)."""
        if other == 0:
            return self.snapshot()
        if isinstance(other, ChannelStats):
            return other.__add__(self)
        return NotImplemented

    def rate(self, clock: float) -> dict:
        """Throughput of this counter over ``clock`` units of (virtual) time.

        Returns ``{"elapsed", "messages_per_unit", "bits_per_unit"}`` —
        zeros when no time has elapsed, so a zero-length run is reportable.
        Used by both ``result.summary()["rates"]`` and the live service's
        rate gauges, so a Prometheus scrape and a batch summary agree by
        construction.
        """
        elapsed = float(clock)
        if elapsed <= 0.0:
            return {
                "elapsed": 0.0,
                "messages_per_unit": 0.0,
                "bits_per_unit": 0.0,
            }
        return {
            "elapsed": elapsed,
            "messages_per_unit": self.messages / elapsed,
            "bits_per_unit": self.bits / elapsed,
        }

    @classmethod
    def merge(cls, stats: "Iterable[ChannelStats]") -> "ChannelStats":
        """Combine any number of counters into one fresh total.

        ``ChannelStats.merge(network.shard_stats())`` is the canonical way to
        aggregate the per-shard accounting of a
        :class:`repro.monitoring.sharding.ShardedNetwork`.
        """
        total = cls()
        for item in stats:
            total.messages += item.messages
            total.bits += item.bits
            total.dropped += item.dropped
            total.retransmitted += item.retransmitted
            total.duplicates += item.duplicates
            for target, source in (
                (total.by_kind, item.by_kind),
                (total.bits_by_kind, item.bits_by_kind),
                (total.dropped_by_kind, item.dropped_by_kind),
                (total.retransmitted_by_kind, item.retransmitted_by_kind),
                (total.duplicates_by_kind, item.duplicates_by_kind),
            ):
                for kind, count in source.items():
                    target[kind] = target.get(kind, 0) + count
        return total


class Channel:
    """Delivers messages between the coordinator and ``k`` sites, counting cost.

    The channel is synchronous: :meth:`send` delivers the message to its
    destination handler before returning.  Handlers are registered by the
    :class:`repro.monitoring.network.MonitoringNetwork` when it wires the
    actors together.
    """

    def __init__(self, num_sites: int) -> None:
        if num_sites < 1:
            raise ProtocolError(f"channel needs at least one site, got {num_sites}")
        self._num_sites = num_sites
        self._coordinator_handler: Optional[Callable[[Message], None]] = None
        self._site_handlers: List[Optional[Callable[[Message], None]]] = [
            None
        ] * num_sites
        self.stats = ChannelStats()
        self._log: List[Message] = []
        self._record_log = False
        #: Optional observability hook (see
        #: :mod:`repro.observability.instrument`).  Observers are strictly
        #: read-only: with one attached, accounting and delivery behave
        #: bit-for-bit as with ``None``.
        self.observer = None

    @property
    def num_sites(self) -> int:
        """Number of sites attached to this channel."""
        return self._num_sites

    @property
    def is_synchronous(self) -> bool:
        """Whether :meth:`send_to_coordinator`/:meth:`send_to_site` deliver inline.

        Synchronous delivery is what the closed-form batched fast path relies
        on (it reads peer state mid-run); asynchronous subclasses return
        ``False`` so that fast path falls back to per-update delivery.
        """
        return True

    def _account(self, message: Message, copies: int = 1) -> None:
        """Charge (and, when enabled, log) ``copies`` transmissions.

        Single accounting entry point shared by the synchronous send paths
        and any delaying subclass, so cost and transcript semantics cannot
        drift between transports: every transmission is charged at *send*
        time, one log entry per charged copy.
        """
        self.stats.record(message, copies=copies)
        if self.observer is not None:
            self.observer.on_message(message, copies)
        if self._record_log:
            if copies == 1:
                self._log.append(message)
            else:
                self._log.extend([message] * copies)

    def enable_log(self) -> None:
        """Record every delivered message (used by the tracing lower bound)."""
        self._record_log = True

    @property
    def log_enabled(self) -> bool:
        """Whether every delivered message is being recorded in the log."""
        return self._record_log

    @property
    def log(self) -> List[Message]:
        """All messages delivered so far, if logging is enabled.

        The log mirrors the channel's *charged* traffic one entry per
        transmission: a broadcast delivered to ``k`` sites appears ``k``
        times, matching the ``k`` message copies it is charged.
        """
        return list(self._log)

    def register_coordinator(self, handler: Callable[[Message], None]) -> None:
        """Register the coordinator's message handler."""
        self._coordinator_handler = handler

    def register_site(self, site_id: int, handler: Callable[[Message], None]) -> None:
        """Register the handler for one site."""
        if not 0 <= site_id < self._num_sites:
            raise ProtocolError(f"site id {site_id} out of range 0..{self._num_sites - 1}")
        self._site_handlers[site_id] = handler

    def send_to_coordinator(self, message: Message) -> None:
        """Deliver a site-to-coordinator message and charge its cost."""
        if self._coordinator_handler is None:
            raise ProtocolError("no coordinator registered on this channel")
        self._account(message)
        self._coordinator_handler(message)

    def charge(self, kind: MessageKind, copies: int, total_bits: int) -> None:
        """Charge ``copies`` already-simulated messages without delivering them.

        The batched fast path uses this for messages whose receiver-side
        effect it has already established in closed form (bulk count-report
        absorption, simulated block closes) or that a later real message
        subsumes (superseded estimation reports).  Cost accounting is
        identical to sending each message individually; only the Python-level
        construction and dispatch are elided.  Refuses to run while the
        message log is enabled, because charged messages would never appear
        in the log — callers must fall back to per-update delivery when
        tracing.
        """
        if self._record_log:
            raise ProtocolError(
                "charge-only accounting would desynchronise the message log; "
                "use per-update delivery while logging is enabled"
            )
        if copies < 0 or total_bits < 0:
            raise ProtocolError(
                f"cannot charge {copies} messages / {total_bits} bits"
            )
        self.stats.record_bulk(kind.value, copies, total_bits)
        if self.observer is not None:
            self.observer.on_bulk(kind.value, copies, total_bits)

    def adopt_accounting(self, other: "Channel") -> None:
        """Continue ``other``'s cumulative accounting on this channel.

        Used by the live-migration state handoff
        (:func:`repro.monitoring.tree.migrate_site`): when a shard's network
        is rebuilt around a new membership, the fresh channel takes over the
        old channel's :class:`ChannelStats` *object* (not a copy), so the
        run's cumulative counters keep growing monotonically across the
        handoff instead of resetting to zero.
        """
        self.stats = other.stats
        self._log = other._log
        self._record_log = other._record_log
        self.observer = other.observer

    def send_to_site(self, message: Message) -> None:
        """Deliver a coordinator-to-site message (or broadcast) and charge its cost.

        A broadcast (``receiver == BROADCAST_SITE``) is delivered to every
        site and charged ``k`` message transmissions, matching the paper.
        """
        if message.receiver == BROADCAST_SITE:
            self._account(message, copies=self._num_sites)
            for site_id, handler in enumerate(self._site_handlers):
                if handler is None:
                    raise ProtocolError(f"site {site_id} has no registered handler")
                handler(message)
            return
        handler = self._site_handler(message.receiver)
        self._account(message)
        handler(message)

    def multicast(self, message: Message, receivers: Sequence[int]) -> None:
        """Deliver one coordinator message to a subset of sites.

        Shard-aware middle ground between unicast and broadcast: the message
        is charged once per listed receiver (exactly as a broadcast charges
        once per site) and delivered to exactly those sites.  The root
        aggregator of the sharded hierarchy uses this to re-send level
        changes only to the shards whose recorded level is stale.
        """
        if not receivers:
            raise ProtocolError("multicast needs at least one receiver")
        if len(set(receivers)) != len(receivers):
            raise ProtocolError(f"multicast receivers must be distinct, got {list(receivers)}")
        handlers = [self._site_handler(site_id) for site_id in receivers]
        self._account(message, copies=len(receivers))
        for handler in handlers:
            handler(message)

    def _site_handler(self, site_id: int) -> Callable[[Message], None]:
        """Return the registered handler for one site, validating the id."""
        if not 0 <= site_id < self._num_sites:
            raise ProtocolError(
                f"receiver {site_id} out of range 0..{self._num_sites - 1}"
            )
        handler = self._site_handlers[site_id]
        if handler is None:
            raise ProtocolError(f"site {site_id} has no registered handler")
        return handler
