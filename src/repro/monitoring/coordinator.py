"""Coordinator-side protocol for distributed tracking algorithms."""

from __future__ import annotations

import abc

from repro.exceptions import ProtocolError
from repro.monitoring.channel import Channel
from repro.monitoring.messages import Message

__all__ = ["Coordinator"]


class Coordinator(abc.ABC):
    """Base class for the coordinator side of a tracking algorithm.

    The coordinator reacts to messages from sites (:meth:`receive_message`)
    and must be able to produce its current estimate at any time via
    :meth:`estimate`.  It talks to sites exclusively through :meth:`send`,
    which routes through the counted channel (use
    ``receiver=BROADCAST_SITE`` for broadcasts).
    """

    def __init__(self) -> None:
        self._channel: Channel | None = None

    def attach(self, channel: Channel) -> None:
        """Connect this coordinator to a channel; called by the network."""
        self._channel = channel
        channel.register_coordinator(self.receive_message)

    def send(self, message: Message) -> None:
        """Send a message to one site (or broadcast) through the counted channel."""
        if self._channel is None:
            raise ProtocolError(
                "coordinator is not attached to a channel; "
                "add it to a MonitoringNetwork first"
            )
        self._channel.send_to_site(message)

    def multicast(self, message: Message, receivers) -> None:
        """Send one message to a subset of sites, charged once per receiver.

        Used by shard-aware coordinators (the root aggregator of
        :mod:`repro.monitoring.sharding`) to refresh exactly the stale
        receivers instead of broadcasting to everyone.
        """
        if self._channel is None:
            raise ProtocolError(
                "coordinator is not attached to a channel; "
                "add it to a MonitoringNetwork first"
            )
        self._channel.multicast(message, receivers)

    @abc.abstractmethod
    def receive_message(self, message: Message) -> None:
        """Handle a message arriving from a site."""

    @abc.abstractmethod
    def estimate(self) -> float:
        """Return the coordinator's current estimate ``fhat(n)``."""
