"""Two-level sharded hierarchy: shard coordinators under a root aggregator.

The flat topology puts one coordinator in front of all ``k`` sites, which
caps scalability at what a single Python object (and a single message queue)
can absorb.  This module refactors the substrate into a two-level hierarchy:

* a :class:`ShardCoordinator` owns a *disjoint group* of sites and runs any
  existing :class:`~repro.monitoring.coordinator.Coordinator` — the block
  template, Cormode, Huang, the naive counter — locally over its own counted
  channel, completely unmodified (the inner coordinator is built for the
  shard's group size, so block closes complete on the shard's own reply
  count, never the global ``k``);
* a :class:`RootAggregator` merges the shard-level estimates into the global
  estimate and re-sends global level changes down to the shards whose
  recorded level is stale (a shard-aware multicast, charged per receiver).

Both levels run over ordinary counted channels, so **communication stays
separately accounted per shard**: each shard channel counts the up/down
traffic between its sites and its coordinator, and the root channel counts
the shard-to-root hops.  Injecting latency-aware channels at either level
(:func:`repro.asynchrony.build_sharded_async_network`) turns the shard-to-root
hop into a second latency leg.

Estimate contract (the hierarchical-merge property, pinned by
``tests/test_sharding_property.py``): every shard behaves *bit-for-bit* like a
flat coordinator run over its own substream, and the root's estimate is the
exact sum of the shard estimates.  With ``num_shards == 1`` the hierarchy
degenerates to the flat network itself — no root hop exists, and runs are
bit-for-bit identical to the flat engine in estimates, message counts, bit
counts and transcript order, across the per-update, batched and asynchronous
engines (``tests/test_sharding.py``).

Push granularity: a shard pushes its estimate to the root whenever the
estimate changed since the last push, evaluated after each delivery event
(one update on the per-update engine, one contiguous run on the batched and
columnar engines) and after each virtual-clock advance on the asynchronous
engine.  Shard-local traffic is engine-invariant by the existing
batched-equivalence contract — each shard's sites route their runs through
the same span kernel (:mod:`repro.engine`) as a flat network, multi-block
fast-forwarding included, against the shard's own coordinator; the
*root-hop count* depends on delivery granularity, exactly like
transport-level batching on a real uplink.  The asynchronous bulk span
engine (``run_tracking_async(batched=True)``) extends the same trade to the
transport: one in-flight event per shard-local span, estimate pushes at
segment boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, ProtocolError
from repro.monitoring.channel import Channel, ChannelStats
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.messages import (
    BROADCAST_SITE,
    COORDINATOR,
    Message,
    MessageKind,
)
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.site import Site

__all__ = [
    "ShardingPolicy",
    "ContiguousSharding",
    "StridedSharding",
    "ShardUplink",
    "ShardCoordinator",
    "RootAggregator",
    "ShardedChannelView",
    "ShardedNetwork",
    "build_sharded_network",
]


def _check_shard_counts(num_sites: int, num_shards: int) -> None:
    if num_sites < 1:
        raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
    if not 1 <= num_shards <= num_sites:
        raise ConfigurationError(
            f"num_shards must be in 1..{num_sites} (one site per shard at "
            f"least), got {num_shards}"
        )


class ShardingPolicy:
    """Protocol for policies partitioning global site ids into shard groups.

    ``partition(num_sites, num_shards)`` must return ``num_shards`` disjoint,
    non-empty groups of global site ids that together cover
    ``range(num_sites)``.  The order of ids within a group defines the
    shard-local site ids ``0..len(group) - 1``.
    """

    def partition(self, num_sites: int, num_shards: int) -> List[List[int]]:
        raise NotImplementedError


class ContiguousSharding(ShardingPolicy):
    """Each shard owns a contiguous range of sites, balanced to within one.

    The natural layout for blocked ingestion: consecutive site ids land in
    the same shard, so contiguous site runs stay shard-local.
    """

    def partition(self, num_sites: int, num_shards: int) -> List[List[int]]:
        _check_shard_counts(num_sites, num_shards)
        base, extra = divmod(num_sites, num_shards)
        groups: List[List[int]] = []
        start = 0
        for shard_id in range(num_shards):
            size = base + (1 if shard_id < extra else 0)
            groups.append(list(range(start, start + size)))
            start += size
        return groups


class StridedSharding(ShardingPolicy):
    """Site ``i`` goes to shard ``i mod num_shards`` (round-robin interleave).

    Spreads a round-robin site assignment evenly over the shards, the
    balanced counterpart to :class:`ContiguousSharding` for interleaved
    workloads.
    """

    def partition(self, num_sites: int, num_shards: int) -> List[List[int]]:
        _check_shard_counts(num_sites, num_shards)
        return [
            [site for site in range(num_sites) if site % num_shards == shard_id]
            for shard_id in range(num_shards)
        ]


class ShardUplink(Site):
    """A shard coordinator's port on the root channel.

    The root network treats each shard as a "site" with id ``shard_id``; the
    uplink relays root messages to its shard and gives the shard a counted
    :meth:`~repro.monitoring.site.Site.send` path to the root.  Stream
    updates never travel on the root channel.
    """

    def __init__(self, shard: "ShardCoordinator") -> None:
        super().__init__(shard.shard_id)
        self._shard = shard

    def receive_update(self, time: int, delta: int) -> None:
        raise ProtocolError(
            "the root channel carries shard estimates and level changes, "
            "never stream updates; deliver updates through the ShardedNetwork"
        )

    def receive_message(self, message: Message) -> None:
        self._shard.on_root_message(message)


class ShardCoordinator:
    """One shard: an unmodified flat network over a disjoint site group.

    The shard runs any existing coordinator/site set (built by the tracker
    factory for the *group's* size, so every protocol threshold and reply
    quorum is shard-local) over its own counted channel, and pushes its
    estimate to the root whenever it changes.

    Attributes:
        shard_id: Position of this shard on the root channel.
        network: The shard-local :class:`MonitoringNetwork`.
        site_ids: Global site ids owned by this shard; the position of an id
            in this tuple is its shard-local site id.
        root_level: Last global level received from the root aggregator
            (diagnostic — shard-local protocol behaviour never depends on it,
            which is what makes the hierarchy exactly compositional).
        uplink: This shard's port on the root channel.
    """

    def __init__(
        self,
        shard_id: int,
        network: MonitoringNetwork,
        site_ids: Sequence[int],
    ) -> None:
        if shard_id < 0:
            raise ConfigurationError(f"shard id must be >= 0, got {shard_id}")
        if len(site_ids) != network.num_sites:
            raise ConfigurationError(
                f"shard {shard_id} owns {len(site_ids)} global sites but its "
                f"network serves {network.num_sites}"
            )
        self.shard_id = shard_id
        self.network = network
        self.site_ids: Tuple[int, ...] = tuple(int(site) for site in site_ids)
        self.root_level = 0
        self.uplink = ShardUplink(self)
        self._last_pushed = 0.0
        #: Estimate pushes sent to the root so far (per-shard root-hop count).
        self.pushes = 0

    @property
    def num_sites(self) -> int:
        """Number of sites this shard serves."""
        return self.network.num_sites

    @property
    def coordinator(self) -> Coordinator:
        """The unmodified inner coordinator running this shard's protocol."""
        return self.network.coordinator

    @property
    def stats(self) -> ChannelStats:
        """Live communication counters of the shard-local channel."""
        return self.network.stats

    def estimate(self) -> float:
        """The shard's current estimate of its local substream value."""
        return self.network.estimate()

    def push_estimate(self, time: int) -> None:
        """Push the local estimate to the root if it changed since last push.

        The initial value 0.0 is the root's prior for every shard, so a shard
        that never communicates never pushes — matching the flat protocols,
        which also say nothing while their estimate sits at zero.
        """
        estimate = self.network.estimate()
        if estimate == self._last_pushed:
            return
        self._last_pushed = estimate
        self.pushes += 1
        self.uplink.send(
            Message(
                kind=MessageKind.REPORT,
                sender=self.shard_id,
                receiver=COORDINATOR,
                payload={"estimate": float(estimate)},
                time=time,
            )
        )

    def on_root_message(self, message: Message) -> None:
        """Record a level change re-sent by the root aggregator."""
        if message.kind is not MessageKind.BROADCAST:
            raise ConfigurationError(
                f"shard {self.shard_id} received unexpected root message kind "
                f"{message.kind}"
            )
        self.root_level = int(message.payload["level"])


class RootAggregator(Coordinator):
    """Root of the hierarchy: merges shard estimates, re-sends level changes.

    The root's estimate is the exact sum of the last estimate each shard
    pushed.  From the merged value it maintains the *global* block level
    (:func:`repro.core.blocks.block_level` with the global ``k``) and, when
    the level changes, multicasts it on the root channel to exactly the
    shards whose recorded level is stale — charged once per receiver, like a
    broadcast restricted to the stale subset.
    """

    def __init__(self, num_shards: int, num_sites: int) -> None:
        if num_shards < 2:
            raise ConfigurationError(
                f"a root aggregator needs at least two shards, got {num_shards} "
                "(a single shard is served by the flat network directly)"
            )
        super().__init__()
        self.num_shards = num_shards
        #: Global number of sites ``k`` (all shards together) — the level
        #: rule is evaluated against the global topology, not a shard's.
        self.num_sites = num_sites
        self._estimates: Dict[int, float] = {s: 0.0 for s in range(num_shards)}
        #: Global block level derived from the merged estimate.
        self.level = 0
        self._shard_levels: Dict[int, int] = {s: 0 for s in range(num_shards)}
        #: Estimate reports received, total and per shard.
        self.reports = 0
        self.reports_by_shard: Dict[int, int] = {s: 0 for s in range(num_shards)}

    def estimate(self) -> float:
        """Merged estimate: the sum of the shards' pushed estimates."""
        return float(sum(self._estimates.values()))

    def receive_message(self, message: Message) -> None:
        if message.kind is not MessageKind.REPORT:
            raise ConfigurationError(
                f"root aggregator received unexpected message kind {message.kind}"
            )
        shard_id = message.sender
        if shard_id not in self._estimates:
            raise ProtocolError(
                f"estimate report from unknown shard {shard_id}; root serves "
                f"shards 0..{self.num_shards - 1}"
            )
        self._estimates[shard_id] = float(message.payload["estimate"])
        self.reports += 1
        self.reports_by_shard[shard_id] += 1
        self._refresh_level(message.time)

    def _refresh_level(self, time: int) -> None:
        """Recompute the global level; re-send it to shards that are stale."""
        # Imported lazily: repro.core builds on repro.monitoring, so a
        # module-level import here would be circular.  At call time the core
        # package is fully initialised.
        from repro.core.blocks import block_level

        self.level = block_level(int(round(self.estimate())), self.num_sites)
        stale = [
            shard_id
            for shard_id in range(self.num_shards)
            if self._shard_levels[shard_id] != self.level
        ]
        if not stale:
            return
        self.multicast(
            Message(
                kind=MessageKind.BROADCAST,
                sender=COORDINATOR,
                receiver=BROADCAST_SITE,
                payload={"level": self.level},
                time=time,
            ),
            stale,
        )
        for shard_id in stale:
            self._shard_levels[shard_id] = self.level


class ShardedChannelView:
    """Read-only aggregate over the shard channels plus the root channel.

    Presents the runner-facing slice of the channel interface —
    ``is_synchronous`` and merged ``stats`` for the synchronous engines, the
    staleness signals (``delivery_ages``, ``inflight_highwater``,
    ``reordered_deliveries``), ``in_flight`` and ``now`` for the
    asynchronous one — so both runners drive a sharded network exactly like
    a flat one.  ``inflight_highwater`` is the *sum* of the per-channel
    high-water marks (channels peak at different instants, so this is an
    upper bound on the true global peak).
    """

    def __init__(
        self,
        local_channels: Sequence[Channel],
        root_channel: Optional[Channel],
    ) -> None:
        self._locals = tuple(local_channels)
        self._root = root_channel

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """All underlying channels: one per shard, then the root (if any)."""
        if self._root is None:
            return self._locals
        return self._locals + (self._root,)

    @property
    def is_synchronous(self) -> bool:
        """Whether every underlying channel delivers inline."""
        return all(channel.is_synchronous for channel in self.channels)

    @property
    def stats(self) -> ChannelStats:
        """Merged counters over every shard channel and the root channel."""
        return ChannelStats.merge(channel.stats for channel in self.channels)

    def enable_log(self) -> None:
        """Enable the per-transmission log on every underlying channel."""
        for channel in self.channels:
            channel.enable_log()

    @property
    def log_enabled(self) -> bool:
        """Whether any underlying channel records its transcript."""
        return any(channel.log_enabled for channel in self.channels)

    # -- asynchronous aggregates (duck-typed for summarize_staleness) --------

    @property
    def delivery_ages(self) -> List[float]:
        """All channels' delivery ages, shard order then root."""
        ages: List[float] = []
        for channel in self.channels:
            ages.extend(getattr(channel, "delivery_ages", ()))
        return ages

    @property
    def inflight_highwater(self) -> int:
        """Sum of the per-channel in-flight high-water marks."""
        return sum(getattr(channel, "inflight_highwater", 0) for channel in self.channels)

    @property
    def reordered_deliveries(self) -> int:
        """Total out-of-send-order deliveries across all channels."""
        return sum(
            getattr(channel, "reordered_deliveries", 0) for channel in self.channels
        )

    @property
    def in_flight(self) -> int:
        """Messages currently travelling on any underlying channel."""
        return sum(getattr(channel, "in_flight", 0) for channel in self.channels)

    @property
    def now(self) -> float:
        """Latest virtual clock across the underlying channels."""
        return max(
            (getattr(channel, "now", 0.0) for channel in self.channels), default=0.0
        )


class ShardedNetwork:
    """A two-level hierarchy of shard networks under one root aggregator.

    Exposes the same driving surface as :class:`MonitoringNetwork`
    (``deliver_update``, ``deliver_batch``, ``estimate``, ``stats``,
    ``channel``), so :func:`repro.monitoring.runner.run_tracking` and
    :func:`repro.asynchrony.run_tracking_async` run it unmodified.  Updates
    are routed to the owning shard (global site id to shard-local id), each
    shard's batched fast path runs against its own unmodified coordinator,
    and after every delivery the affected shard pushes its estimate to the
    root if it changed.

    With one shard there is no root: the network is the flat topology
    itself, bit-for-bit, and :meth:`estimate` reads the single shard
    directly.
    """

    def __init__(
        self,
        shards: Sequence[ShardCoordinator],
        root_network: Optional[MonitoringNetwork],
    ) -> None:
        if not shards:
            raise ConfigurationError("a sharded network needs at least one shard")
        self.shards: Tuple[ShardCoordinator, ...] = tuple(shards)
        if len(self.shards) == 1:
            if root_network is not None:
                raise ConfigurationError(
                    "a single-shard network is the flat topology; it takes no "
                    "root network (and pays no root hop)"
                )
        elif root_network is None:
            raise ConfigurationError(
                f"{len(self.shards)} shards need a root network to merge them"
            )
        elif root_network.num_sites != len(self.shards):
            raise ConfigurationError(
                f"root network serves {root_network.num_sites} uplinks, "
                f"topology has {len(self.shards)} shards"
            )
        self.root_network = root_network
        self._route: Dict[int, Tuple[ShardCoordinator, int]] = {}
        for shard in self.shards:
            for local_id, global_id in enumerate(shard.site_ids):
                if global_id in self._route:
                    raise ConfigurationError(
                        f"site {global_id} is owned by more than one shard"
                    )
                self._route[global_id] = (shard, local_id)
        expected = set(range(len(self._route)))
        if set(self._route) != expected:
            raise ConfigurationError(
                "shard site groups must cover exactly 0..k-1, got "
                f"{sorted(self._route)}"
            )
        self.channel = ShardedChannelView(
            [shard.network.channel for shard in self.shards],
            None if root_network is None else root_network.channel,
        )

    # -- topology ------------------------------------------------------------

    @property
    def num_sites(self) -> int:
        """Global number of sites ``k`` across all shards."""
        return len(self._route)

    @property
    def num_shards(self) -> int:
        """Number of shards in the hierarchy."""
        return len(self.shards)

    @property
    def root(self) -> Optional[RootAggregator]:
        """The root aggregator, or ``None`` in the single-shard topology."""
        if self.root_network is None:
            return None
        return self.root_network.coordinator

    def shard_of(self, site_id: int) -> ShardCoordinator:
        """Return the shard that owns global site ``site_id``."""
        return self._locate(site_id)[0]

    def _locate(self, site_id: int) -> Tuple[ShardCoordinator, int]:
        try:
            return self._route[int(site_id)]
        except KeyError:
            raise ProtocolError(
                f"update destined for site {site_id}, but network has "
                f"{self.num_sites} sites"
            ) from None

    # -- accounting ----------------------------------------------------------

    @property
    def stats(self) -> ChannelStats:
        """Merged counters: every shard channel plus the root channel."""
        return self.channel.stats

    def shard_stats(self) -> List[ChannelStats]:
        """Per-shard snapshots of the shard-local communication counters."""
        return [shard.stats.snapshot() for shard in self.shards]

    @property
    def local_stats(self) -> ChannelStats:
        """Merged shard-local counters, excluding the root channel."""
        return ChannelStats.merge(shard.stats for shard in self.shards)

    @property
    def root_stats(self) -> ChannelStats:
        """Counters of the shard-to-root channel (zero in flat topology)."""
        if self.root_network is None:
            return ChannelStats()
        return self.root_network.stats.snapshot()

    # -- delivery ------------------------------------------------------------

    def deliver_update(self, time: int, site_id: int, delta: int) -> None:
        """Route one stream update to its owning shard, then sync the root."""
        shard, local_id = self._locate(site_id)
        shard.network.deliver_update(time, local_id, delta)
        if self.root_network is not None:
            shard.push_estimate(time)

    def deliver_batch(
        self, site_id: int, times: Sequence[int], deltas: Sequence[int]
    ) -> None:
        """Route a contiguous same-site run to its shard, then sync the root."""
        shard, local_id = self._locate(site_id)
        shard.network.deliver_batch(local_id, times, deltas)
        if self.root_network is not None and len(times):
            shard.push_estimate(int(times[-1]))

    def estimate(self) -> float:
        """The hierarchy's estimate: the root's merged view (flat: shard 0)."""
        if self.root_network is None:
            return self.shards[0].estimate()
        return self.root_network.estimate()

    # -- asynchronous driving (see repro.asynchrony.runner) ------------------

    def advance_to(self, until: float) -> None:
        """Advance every clock to ``until``, then push fresh shard estimates.

        The root channel advances *before* the pushes so its clock sits at
        the window frontier when a push is transmitted: an estimate formed by
        a shard delivery inside the window is pushed at ``until`` (at or
        after the moment it came to exist), never back-dated to the previous
        advance point — the root cannot receive knowledge before the shard
        had it.  Requires latency-aware channels at both levels
        (:func:`repro.asynchrony.build_sharded_async_network`).
        """
        if self.root_network is not None:
            self.root_network.channel.advance_to(until)
        for shard in self.shards:
            shard.network.channel.advance_to(until)
            if self.root_network is not None:
                shard.push_estimate(int(until))

    def drain(self) -> float:
        """Deliver every in-flight message at both levels; return the clock.

        Loops shard drains, estimate pushes and root drains until the whole
        hierarchy is quiescent, so the root settles on the final merged
        estimate once the last shard report lands.  As in :meth:`advance_to`,
        the root clock is raised to the global frontier before each push
        round, keeping the shard-to-root leg causal.
        """
        while True:
            for shard in self.shards:
                shard.network.channel.drain()
            if self.root_network is not None:
                self.root_network.channel.advance_to(self.channel.now)
                for shard in self.shards:
                    shard.push_estimate(int(self.channel.now))
                self.root_network.channel.drain()
            if self.channel.in_flight == 0:
                return self.channel.now


def build_sharded_network(
    factory,
    num_shards: int,
    sharding: Optional[ShardingPolicy] = None,
    local_channel_factory=None,
    root_channel_factory=None,
) -> ShardedNetwork:
    """Build a two-level sharded hierarchy from a flat tracker factory.

    The factory's ``k`` sites are partitioned into ``num_shards`` disjoint
    groups by ``sharding`` (contiguous, balanced-to-within-one by default).
    Each group gets an independent copy of the tracker, built by
    ``factory.shard_factory(group_size, shard_id)`` — the hook every tracker
    factory exposes (see
    :meth:`repro.core.template.BlockTrackerFactory.shard_factory`) — wired as
    a flat network over its own counted channel.  With more than one shard, a
    :class:`RootAggregator` is wired over a second counted channel whose
    "sites" are the shard uplinks.

    Args:
        factory: Flat tracker factory exposing ``num_sites`` and
            ``shard_factory`` (all Section 3 trackers and baselines do).
        num_shards: Number of shards; ``1`` yields the flat topology with no
            root hop.
        sharding: Site-to-shard partition policy; default
            :class:`ContiguousSharding`.
        local_channel_factory: Optional ``(shard_id, group_size) -> Channel``
            used to inject shard-local channels (the async builder injects
            latency-aware ones).
        root_channel_factory: Optional ``(num_shards) -> Channel`` for the
            shard-to-root channel.

    Returns:
        A wired :class:`ShardedNetwork`.
    """
    num_sites = getattr(factory, "num_sites", None)
    if num_sites is None:
        raise ConfigurationError(
            "build_sharded_network needs a tracker factory exposing num_sites"
        )
    shard_factory = getattr(factory, "shard_factory", None)
    if shard_factory is None:
        raise ConfigurationError(
            f"{type(factory).__name__} does not expose shard_factory(num_sites, "
            "shard_id); add one to run it sharded"
        )
    policy = sharding if sharding is not None else ContiguousSharding()
    groups = policy.partition(num_sites, num_shards)
    if len(groups) != num_shards or any(not group for group in groups):
        raise ConfigurationError(
            f"sharding policy returned {len(groups)} groups (some possibly "
            f"empty) for {num_shards} shards"
        )
    shards: List[ShardCoordinator] = []
    for shard_id, group in enumerate(groups):
        sub_factory = shard_factory(len(group), shard_id)
        base = sub_factory.build_network()
        if local_channel_factory is not None:
            base = MonitoringNetwork(
                base.coordinator,
                base.sites,
                channel=local_channel_factory(shard_id, len(group)),
            )
        shards.append(ShardCoordinator(shard_id, base, group))
    root_network: Optional[MonitoringNetwork] = None
    if num_shards > 1:
        root = RootAggregator(num_shards=num_shards, num_sites=num_sites)
        uplinks = [shard.uplink for shard in shards]
        root_channel = (
            root_channel_factory(num_shards) if root_channel_factory is not None else None
        )
        root_network = MonitoringNetwork(root, uplinks, channel=root_channel)
    return ShardedNetwork(shards, root_network)
