"""Recursive sharded hierarchy: coordinator subtrees under aggregators.

The flat topology puts one coordinator in front of all ``k`` sites, which
caps scalability at what a single Python object (and a single message queue)
can absorb.  This module refactors the substrate into a *recursively
composable* hierarchy:

* a :class:`ShardCoordinator` owns a *disjoint group* of sites and runs any
  existing :class:`~repro.monitoring.coordinator.Coordinator` — the block
  template, Cormode, Huang, the naive counter — locally over its own counted
  channel, completely unmodified (the inner coordinator is built for the
  shard's group size, so block closes complete on the shard's own reply
  count, never the global ``k``);
* a :class:`RootAggregator` merges the shard-level estimates into the global
  estimate and re-sends global level changes down to the shards whose
  recorded level is stale (a shard-aware multicast, charged per receiver);
* crucially, a :class:`ShardCoordinator`'s inner network may itself be a
  :class:`ShardedNetwork`: the shard's uplink is then the *subtree's* port on
  its parent's channel, and the two-level hierarchy generalizes to an
  L-level monitoring tree (:func:`repro.monitoring.tree.build_tree_network`)
  with no change to the delivery, push or accounting semantics at any single
  level.  Delivery, virtual-clock advancement, draining and per-level
  accounting all recurse structurally through the nesting.

Both levels run over ordinary counted channels, so **communication stays
separately accounted per shard**: each shard channel counts the up/down
traffic between its sites and its coordinator, and the root channel counts
the shard-to-root hops.  Injecting latency-aware channels at either level
(:func:`repro.asynchrony.build_sharded_async_network`) turns the shard-to-root
hop into a second latency leg.

Estimate contract (the hierarchical-merge property, pinned by
``tests/test_sharding_property.py``): every shard behaves *bit-for-bit* like a
flat coordinator run over its own substream, and the root's estimate is the
exact sum of the shard estimates.  With ``num_shards == 1`` the hierarchy
degenerates to the flat network itself — no root hop exists, and runs are
bit-for-bit identical to the flat engine in estimates, message counts, bit
counts and transcript order, across the per-update, batched and asynchronous
engines (``tests/test_sharding.py``).

Push granularity: a shard pushes its estimate to the root whenever the
estimate changed since the last push, evaluated after each delivery event
(one update on the per-update engine, one contiguous run on the batched and
columnar engines) and after each virtual-clock advance on the asynchronous
engine.  Shard-local traffic is engine-invariant by the existing
batched-equivalence contract — each shard's sites route their runs through
the same span kernel (:mod:`repro.engine`) as a flat network, multi-block
fast-forwarding included, against the shard's own coordinator; the
*root-hop count* depends on delivery granularity, exactly like
transport-level batching on a real uplink.  The asynchronous bulk span
engine (``run_tracking_async(batched=True)``) extends the same trade to the
transport: one in-flight event per shard-local span, estimate pushes at
segment boundaries.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, ProtocolError
from repro.monitoring.channel import Channel, ChannelStats
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.messages import (
    BROADCAST_SITE,
    COORDINATOR,
    Message,
    MessageKind,
)
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.site import Site

__all__ = [
    "ShardingPolicy",
    "ContiguousSharding",
    "StridedSharding",
    "ShardUplink",
    "ShardCoordinator",
    "RootAggregator",
    "ShardedChannelView",
    "ShardedNetwork",
    "build_sharded_network",
]


def _check_shard_counts(num_sites: int, num_shards: int) -> None:
    if num_sites < 1:
        raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
    if not 1 <= num_shards <= num_sites:
        raise ConfigurationError(
            f"num_shards must be in 1..{num_sites} (one site per shard at "
            f"least), got {num_shards}"
        )


class ShardingPolicy:
    """Protocol for policies partitioning global site ids into shard groups.

    ``partition(num_sites, num_shards)`` must return ``num_shards`` disjoint,
    non-empty groups of global site ids that together cover
    ``range(num_sites)``.  The order of ids within a group defines the
    shard-local site ids ``0..len(group) - 1``.
    """

    def partition(self, num_sites: int, num_shards: int) -> List[List[int]]:
        raise NotImplementedError


class ContiguousSharding(ShardingPolicy):
    """Each shard owns a contiguous range of sites, balanced to within one.

    The natural layout for blocked ingestion: consecutive site ids land in
    the same shard, so contiguous site runs stay shard-local.
    """

    def partition(self, num_sites: int, num_shards: int) -> List[Sequence[int]]:
        _check_shard_counts(num_sites, num_shards)
        base, extra = divmod(num_sites, num_shards)
        groups: List[Sequence[int]] = []
        start = 0
        for shard_id in range(num_shards):
            size = base + (1 if shard_id < extra else 0)
            # Groups are ``range`` objects: consumers only index/iterate
            # them, and keeping them symbolic lets the sharded network
            # route contiguous layouts arithmetically instead of building
            # O(k) dictionaries per tree level.
            groups.append(range(start, start + size))
            start += size
        return groups


class StridedSharding(ShardingPolicy):
    """Site ``i`` goes to shard ``i mod num_shards`` (round-robin interleave).

    Spreads a round-robin site assignment evenly over the shards, the
    balanced counterpart to :class:`ContiguousSharding` for interleaved
    workloads.
    """

    def partition(self, num_sites: int, num_shards: int) -> List[List[int]]:
        _check_shard_counts(num_sites, num_shards)
        return [
            [site for site in range(num_sites) if site % num_shards == shard_id]
            for shard_id in range(num_shards)
        ]


class ShardUplink(Site):
    """A shard coordinator's port on the root channel.

    The root network treats each shard as a "site" with id ``shard_id``; the
    uplink relays root messages to its shard and gives the shard a counted
    :meth:`~repro.monitoring.site.Site.send` path to the root.  Stream
    updates never travel on the root channel.
    """

    def __init__(self, shard: "ShardCoordinator") -> None:
        super().__init__(shard.shard_id)
        self._shard = shard

    def receive_update(self, time: int, delta: int) -> None:
        raise ProtocolError(
            "the root channel carries shard estimates and level changes, "
            "never stream updates; deliver updates through the ShardedNetwork"
        )

    def receive_message(self, message: Message) -> None:
        self._shard.on_root_message(message)


class ShardCoordinator:
    """One shard: an unmodified inner network over a disjoint site group.

    The shard runs any existing coordinator/site set (built by the tracker
    factory for the *group's* size, so every protocol threshold and reply
    quorum is shard-local) over its own counted channel, and pushes its
    estimate to its parent aggregator whenever it changes by more than the
    shard's push deadband (0 by default: push on any change).

    The inner ``network`` may itself be a :class:`ShardedNetwork` — then this
    object wraps a whole *subtree* and its uplink is the subtree's port on
    the parent channel, which is what makes the hierarchy recursively
    composable to any depth.

    Attributes:
        shard_id: Position of this shard on its parent's channel.
        network: The inner network — a flat :class:`MonitoringNetwork` for a
            leaf shard, or a nested :class:`ShardedNetwork` for a subtree.
        site_ids: Site ids owned by this shard *in the parent's id space*
            (global ids at the top level); the position of an id in this
            tuple is its shard-local site id.
        root_level: Last level received from the parent aggregator
            (diagnostic — shard-local protocol behaviour never depends on it,
            which is what makes the hierarchy exactly compositional).
        uplink: This shard's port on the parent channel.
        push_deadband: Relative budget for upward pushes: a new estimate is
            withheld while ``|new - last| <= push_deadband * |last|``.  The
            default 0.0 pushes on any change (the exact legacy behaviour);
            positive values are assigned by the tree builder's epsilon-split
            policy and trade root-leg traffic for bounded per-hop error.
        parent_network: The :class:`ShardedNetwork` whose ``shards`` tuple
            contains this shard (set by that network; ``None`` until wired).
    """

    def __init__(
        self,
        shard_id: int,
        network,
        site_ids: Sequence[int],
    ) -> None:
        if shard_id < 0:
            raise ConfigurationError(f"shard id must be >= 0, got {shard_id}")
        if len(site_ids) != network.num_sites:
            raise ConfigurationError(
                f"shard {shard_id} owns {len(site_ids)} global sites but its "
                f"network serves {network.num_sites}"
            )
        self.shard_id = shard_id
        self.network = network
        if isinstance(network, ShardedNetwork):
            network.wrapper = self
        # A contiguous group stays a symbolic ``range`` (indexing, length
        # and membership behave exactly like the tuple) so million-site
        # trees never materialise per-site id tuples level by level.
        self.site_ids: Sequence[int] = (
            site_ids
            if isinstance(site_ids, range)
            else tuple(int(site) for site in site_ids)
        )
        self.root_level = 0
        self.uplink = ShardUplink(self)
        self._last_pushed = 0.0
        #: Estimate pushes sent to the parent so far (per-shard uplink count).
        self.pushes = 0
        #: Pushes withheld by the deadband (saved uplink messages).
        self.pushes_suppressed = 0
        self.push_deadband = 0.0
        self.parent_network: Optional["ShardedNetwork"] = None

    @property
    def is_leaf(self) -> bool:
        """Whether this shard's inner network is flat (serves real sites)."""
        return not isinstance(self.network, ShardedNetwork)

    def replace_network(self, network) -> None:
        """Swap the inner network during a migration state handoff.

        The wrapper object itself survives the handoff — its uplink stays
        registered on the parent channel and its push counters keep
        accumulating — only the inner network is rebuilt around the new
        membership (see :func:`repro.monitoring.tree.migrate_site`).
        """
        if isinstance(network, ShardedNetwork):
            network.wrapper = self
        self.network = network

    @property
    def num_sites(self) -> int:
        """Number of sites this shard serves."""
        return self.network.num_sites

    @property
    def coordinator(self) -> Coordinator:
        """The unmodified inner coordinator running this shard's protocol."""
        return self.network.coordinator

    @property
    def stats(self) -> ChannelStats:
        """Live communication counters of the shard-local channel."""
        return self.network.stats

    def estimate(self) -> float:
        """The shard's current estimate of its local substream value."""
        return self.network.estimate()

    def push_estimate(self, time: int) -> None:
        """Push the local estimate to the parent if it moved past the deadband.

        The initial value 0.0 is the parent's prior for every shard, so a
        shard that never communicates never pushes — matching the flat
        protocols, which also say nothing while their estimate sits at zero.
        With a positive :attr:`push_deadband` ``b``, a change is withheld
        while ``|new - last| <= b * |last|`` — one relative-error hop of the
        split budget — and counted in :attr:`pushes_suppressed`.
        """
        estimate = self.network.estimate()
        if estimate == self._last_pushed:
            return
        if self.push_deadband > 0.0 and abs(estimate - self._last_pushed) <= (
            self.push_deadband * abs(self._last_pushed)
        ):
            self.pushes_suppressed += 1
            return
        self._last_pushed = estimate
        self.pushes += 1
        self.uplink.send(
            Message(
                kind=MessageKind.REPORT,
                sender=self.shard_id,
                receiver=COORDINATOR,
                payload={"estimate": float(estimate)},
                time=time,
            )
        )

    def on_root_message(self, message: Message) -> None:
        """Record a level change re-sent by the root aggregator."""
        if message.kind is not MessageKind.BROADCAST:
            raise ConfigurationError(
                f"shard {self.shard_id} received unexpected root message kind "
                f"{message.kind}"
            )
        self.root_level = int(message.payload["level"])


class RootAggregator(Coordinator):
    """Root of the hierarchy: merges shard estimates, re-sends level changes.

    The root's estimate is the exact sum of the last estimate each shard
    pushed.  From the merged value it maintains the *global* block level
    (:func:`repro.core.blocks.block_level` with the global ``k``) and, when
    the level changes, multicasts it on the root channel to exactly the
    shards whose recorded level is stale — charged once per receiver, like a
    broadcast restricted to the stale subset.
    """

    def __init__(
        self,
        num_shards: int,
        num_sites: int,
        broadcast_deadband: float = 0.0,
    ) -> None:
        if num_shards < 2:
            raise ConfigurationError(
                f"a root aggregator needs at least two shards, got {num_shards} "
                "(a single shard is served by the flat network directly)"
            )
        if broadcast_deadband < 0.0:
            raise ConfigurationError(
                f"broadcast_deadband must be >= 0, got {broadcast_deadband}"
            )
        super().__init__()
        self.num_shards = num_shards
        #: Number of sites ``k`` this aggregator's whole subtree serves — the
        #: level rule is evaluated against the subtree's topology, not a
        #: single shard's (at the top of the tree this is the global ``k``).
        self.num_sites = num_sites
        self._estimates: Dict[int, float] = {s: 0.0 for s in range(num_shards)}
        #: Global block level derived from the merged estimate.
        self.level = 0
        self._shard_levels: Dict[int, int] = {s: 0 for s in range(num_shards)}
        #: Estimate reports received, total and per shard.
        self.reports = 0
        self.reports_by_shard: Dict[int, int] = {s: 0 for s in range(num_shards)}
        #: Relative deadband on downward level re-broadcasts: while the
        #: merged estimate has moved less than this fraction since the last
        #: broadcast, stale shards are left stale (E19 follow-on).  0.0
        #: re-broadcasts on every level change, the exact legacy behaviour.
        self.broadcast_deadband = broadcast_deadband
        #: Broadcast copies withheld by the deadband so far (each suppression
        #: event counts the stale shards it would have refreshed).
        self.broadcasts_suppressed = 0
        self._estimate_at_broadcast = 0.0

    def estimate(self) -> float:
        """Merged estimate: the sum of the shards' pushed estimates."""
        return float(sum(self._estimates.values()))

    def receive_message(self, message: Message) -> None:
        if message.kind is not MessageKind.REPORT:
            raise ConfigurationError(
                f"root aggregator received unexpected message kind {message.kind}"
            )
        shard_id = message.sender
        if shard_id not in self._estimates:
            raise ProtocolError(
                f"estimate report from unknown shard {shard_id}; root serves "
                f"shards 0..{self.num_shards - 1}"
            )
        self._estimates[shard_id] = float(message.payload["estimate"])
        self.reports += 1
        self.reports_by_shard[shard_id] += 1
        self._refresh_level(message.time)

    def _refresh_level(self, time: int) -> None:
        """Recompute the global level; re-send it to shards that are stale."""
        # Imported lazily: repro.core builds on repro.monitoring, so a
        # module-level import here would be circular.  At call time the core
        # package is fully initialised.
        from repro.core.blocks import block_level

        estimate = self.estimate()
        self.level = block_level(int(round(estimate)), self.num_sites)
        stale = [
            shard_id
            for shard_id in range(self.num_shards)
            if self._shard_levels[shard_id] != self.level
        ]
        if not stale:
            return
        if self.broadcast_deadband > 0.0 and abs(
            estimate - self._estimate_at_broadcast
        ) <= self.broadcast_deadband * abs(self._estimate_at_broadcast):
            self.broadcasts_suppressed += len(stale)
            return
        self._estimate_at_broadcast = estimate
        self.multicast(
            Message(
                kind=MessageKind.BROADCAST,
                sender=COORDINATOR,
                receiver=BROADCAST_SITE,
                payload={"level": self.level},
                time=time,
            ),
            stale,
        )
        for shard_id in stale:
            self._shard_levels[shard_id] = self.level


class ShardedChannelView:
    """Read-only aggregate over every real channel in a (sub)hierarchy.

    Presents the runner-facing slice of the channel interface —
    ``is_synchronous`` and merged ``stats`` for the synchronous engines, the
    staleness signals (``delivery_ages``, ``inflight_highwater``,
    ``reordered_deliveries``), ``in_flight`` and ``now`` for the
    asynchronous one — so both runners drive a sharded network exactly like
    a flat one.  ``inflight_highwater`` is the *sum* of the per-channel
    high-water marks (channels peak at different instants, so this is an
    upper bound on the true global peak).

    The view is *live*: it holds the network, not a channel list, and
    resolves :attr:`channels` on every access.  Nested subtrees are
    flattened to their real channels, and a migration that rebuilds a leaf
    network is reflected immediately — cumulative stats stay monotone
    because rebuilt channels adopt their predecessor's counters.
    """

    def __init__(self, network: "ShardedNetwork") -> None:
        self._network = network

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """All real channels: each shard's (subtrees flattened), then the root."""
        flat: List[Channel] = []
        for shard in self._network.shards:
            channel = shard.network.channel
            if isinstance(channel, ShardedChannelView):
                flat.extend(channel.channels)
            else:
                flat.append(channel)
        root_network = self._network.root_network
        if root_network is not None:
            flat.append(root_network.channel)
        return tuple(flat)

    @property
    def is_synchronous(self) -> bool:
        """Whether every underlying channel delivers inline."""
        return all(channel.is_synchronous for channel in self.channels)

    @property
    def stats(self) -> ChannelStats:
        """Merged counters over every shard channel and the root channel."""
        return ChannelStats.merge(channel.stats for channel in self.channels)

    def enable_log(self) -> None:
        """Enable the per-transmission log on every underlying channel."""
        for channel in self.channels:
            channel.enable_log()

    @property
    def log_enabled(self) -> bool:
        """Whether any underlying channel records its transcript."""
        return any(channel.log_enabled for channel in self.channels)

    # -- asynchronous aggregates (duck-typed for summarize_staleness) --------

    @property
    def delivery_ages(self) -> List[float]:
        """All channels' delivery ages, shard order then root."""
        ages: List[float] = []
        for channel in self.channels:
            ages.extend(getattr(channel, "delivery_ages", ()))
        return ages

    @property
    def inflight_highwater(self) -> int:
        """Sum of the per-channel in-flight high-water marks."""
        return sum(getattr(channel, "inflight_highwater", 0) for channel in self.channels)

    @property
    def reordered_deliveries(self) -> int:
        """Total out-of-send-order deliveries across all channels."""
        return sum(
            getattr(channel, "reordered_deliveries", 0) for channel in self.channels
        )

    @property
    def in_flight(self) -> int:
        """Messages currently travelling on any underlying channel."""
        return sum(getattr(channel, "in_flight", 0) for channel in self.channels)

    @property
    def now(self) -> float:
        """Latest virtual clock across the underlying channels."""
        return max(
            (getattr(channel, "now", 0.0) for channel in self.channels), default=0.0
        )


class ShardedNetwork:
    """One level of the monitoring hierarchy: shards under an aggregator.

    Exposes the same driving surface as :class:`MonitoringNetwork`
    (``deliver_update``, ``deliver_batch``, ``estimate``, ``stats``,
    ``channel``), so :func:`repro.monitoring.runner.run_tracking` and
    :func:`repro.asynchrony.run_tracking_async` run it unmodified.  Updates
    are routed to the owning shard (site id to shard-local id), each leaf
    shard's batched fast path runs against its own unmodified coordinator,
    and after every delivery the affected shard pushes its estimate to the
    root if it changed.  A shard whose inner network is itself a
    :class:`ShardedNetwork` recurses: delivery, clock advancement, draining
    and accounting all descend structurally, so an L-level tree is just
    L - 1 nested instances of this one class
    (:func:`repro.monitoring.tree.build_tree_network`).

    With one shard there is no root: the network is the flat topology
    itself, bit-for-bit, and :meth:`estimate` reads the single shard
    directly.
    """

    def __init__(
        self,
        shards: Sequence[ShardCoordinator],
        root_network: Optional[MonitoringNetwork],
    ) -> None:
        if not shards:
            raise ConfigurationError("a sharded network needs at least one shard")
        self.shards: Tuple[ShardCoordinator, ...] = tuple(shards)
        #: The ShardCoordinator wrapping this network when it is a subtree of
        #: a deeper hierarchy; ``None`` at the top of the tree.
        self.wrapper: Optional[ShardCoordinator] = None
        if len(self.shards) == 1:
            if root_network is not None:
                raise ConfigurationError(
                    "a single-shard network is the flat topology; it takes no "
                    "root network (and pays no root hop)"
                )
        elif root_network is None:
            raise ConfigurationError(
                f"{len(self.shards)} shards need a root network to merge them"
            )
        elif root_network.num_sites != len(self.shards):
            raise ConfigurationError(
                f"root network serves {root_network.num_sites} uplinks, "
                f"topology has {len(self.shards)} shards"
            )
        self.root_network = root_network
        # Routing: when every shard owns a contiguous, in-order range of the
        # id space (the default ContiguousSharding layout), the map from
        # site id to (shard, local id) is pure arithmetic — disjointness and
        # 0..k-1 coverage hold by construction, and no per-site dictionary
        # is built (a million-site tree would otherwise pay O(k) per level).
        # Any other layout falls back to the explicit validated dictionary.
        self._route: Optional[Dict[int, Tuple[ShardCoordinator, int]]] = None
        self._starts: Optional[List[int]] = None
        offset = 0
        contiguous = True
        for shard in self.shards:
            ids = shard.site_ids
            if isinstance(ids, range) and ids.step == 1 and ids.start == offset and len(ids):
                offset += len(ids)
            else:
                contiguous = False
                break
        if contiguous:
            self._num_sites = offset
            self._starts = [shard.site_ids.start for shard in self.shards]
        else:
            route: Dict[int, Tuple[ShardCoordinator, int]] = {}
            for shard in self.shards:
                for local_id, global_id in enumerate(shard.site_ids):
                    if global_id in route:
                        raise ConfigurationError(
                            f"site {global_id} is owned by more than one shard"
                        )
                    route[global_id] = (shard, local_id)
            if set(route) != set(range(len(route))):
                raise ConfigurationError(
                    "shard site groups must cover exactly 0..k-1, got "
                    f"{sorted(route)}"
                )
            self._route = route
            self._num_sites = len(route)
        for shard in self.shards:
            shard.parent_network = self
        self.channel = ShardedChannelView(self)
        # Exact per-site running value and update count, maintained at the
        # top of the tree only (nested instances see deliveries with their
        # wrapper already set and skip the bookkeeping).  This is what the
        # live-migration state handoff checkpoints a site group from; the
        # default-0 entries of never-touched sites are never stored.
        self._site_values: Dict[int, int] = defaultdict(int)
        self._site_counts: Dict[int, int] = defaultdict(int)

    # -- topology ------------------------------------------------------------

    @property
    def num_sites(self) -> int:
        """Global number of sites ``k`` across all shards."""
        return self._num_sites

    @property
    def num_shards(self) -> int:
        """Number of shards in the hierarchy."""
        return len(self.shards)

    @property
    def root(self) -> Optional[RootAggregator]:
        """The root aggregator, or ``None`` in the single-shard topology."""
        if self.root_network is None:
            return None
        return self.root_network.coordinator

    @property
    def num_levels(self) -> int:
        """Number of coordinator levels in this (sub)hierarchy.

        A flat inner network counts one level (its shard coordinators); each
        aggregator above adds one.  The legacy two-level topology reports 2,
        its single-shard degenerate (no root) reports 1.
        """
        deepest = max(
            shard.network.num_levels if isinstance(shard.network, ShardedNetwork) else 1
            for shard in self.shards
        )
        return deepest + (1 if self.root_network is not None else 0)

    def leaves(self) -> List[ShardCoordinator]:
        """All leaf shards (the ones serving real sites), left to right."""
        out: List[ShardCoordinator] = []
        for shard in self.shards:
            if isinstance(shard.network, ShardedNetwork):
                out.extend(shard.network.leaves())
            else:
                out.append(shard)
        return out

    def shard_of(self, site_id: int) -> ShardCoordinator:
        """Return the shard that owns global site ``site_id``."""
        return self._locate(site_id)[0]

    def _locate(self, site_id: int) -> Tuple[ShardCoordinator, int]:
        site = int(site_id)
        if self._route is not None:
            try:
                return self._route[site]
            except KeyError:
                raise ProtocolError(
                    f"update destined for site {site_id}, but network has "
                    f"{self.num_sites} sites"
                ) from None
        if not 0 <= site < self._num_sites:
            raise ProtocolError(
                f"update destined for site {site_id}, but network has "
                f"{self.num_sites} sites"
            )
        shard = self.shards[bisect_right(self._starts, site) - 1]
        return shard, site - shard.site_ids.start

    # -- accounting ----------------------------------------------------------

    @property
    def stats(self) -> ChannelStats:
        """Merged counters: every shard channel plus the root channel."""
        return self.channel.stats

    def shard_stats(self) -> List[ChannelStats]:
        """Per-shard snapshots of the shard-local communication counters."""
        return [shard.stats.snapshot() for shard in self.shards]

    @property
    def local_stats(self) -> ChannelStats:
        """Merged shard-local counters, excluding the root channel."""
        return ChannelStats.merge(shard.stats for shard in self.shards)

    @property
    def root_stats(self) -> ChannelStats:
        """Counters of the shard-to-root channel (zero in flat topology)."""
        if self.root_network is None:
            return ChannelStats()
        return self.root_network.stats.snapshot()

    def level_stats(self) -> List[ChannelStats]:
        """Per-level channel counters, root level first, leaf level last.

        Index 0 is this network's own aggregator channel (absent in the
        single-shard degenerate), deeper indices merge the channels of every
        node at that depth; the last entry merges the leaf shards' local
        channels.  Summing the list reproduces :attr:`stats` exactly.
        """
        child_levels: List[List[ChannelStats]] = []
        for shard in self.shards:
            inner = shard.network
            if isinstance(inner, ShardedNetwork):
                child_levels.append(inner.level_stats())
            else:
                child_levels.append([inner.stats.snapshot()])
        depth = max(len(levels) for levels in child_levels)
        merged = [
            ChannelStats.merge(
                levels[d] for levels in child_levels if d < len(levels)
            )
            for d in range(depth)
        ]
        if self.root_network is not None:
            merged.insert(0, self.root_network.stats.snapshot())
        return merged

    def level_summary(self) -> List[dict]:
        """Per-level accounting as JSON-compatible dicts, root level first.

        Aggregation levels carry the upward-push and downward-broadcast
        counters alongside the channel totals — including the messages the
        push deadband and the broadcast deadband *saved* — so the split
        error budget's traffic effect is visible per level in
        ``result.summary()``.
        """
        stats = self.level_stats()
        meta = self._level_meta()
        out = []
        for depth, (level_stats, level_meta) in enumerate(zip(stats, meta)):
            entry = {
                "level": depth,
                "messages": level_stats.messages,
                "bits": level_stats.bits,
                "messages_by_kind": dict(level_stats.by_kind),
            }
            entry.update(level_meta)
            out.append(entry)
        return out

    def _level_meta(self) -> List[dict]:
        """Role and push/broadcast counters per level, aligned with level_stats."""
        child_meta: List[List[dict]] = []
        for shard in self.shards:
            inner = shard.network
            if isinstance(inner, ShardedNetwork):
                child_meta.append(inner._level_meta())
            else:
                child_meta.append([{"role": "leaf", "nodes": 1}])
        depth = max(len(meta) for meta in child_meta)
        merged: List[dict] = []
        for d in range(depth):
            entries = [meta[d] for meta in child_meta if d < len(meta)]
            combined = dict(entries[0])
            for entry in entries[1:]:
                for key, value in entry.items():
                    if key == "role":
                        continue
                    combined[key] = combined.get(key, 0) + value
            merged.append(combined)
        if self.root_network is not None:
            aggregator = self.root_network.coordinator
            merged.insert(
                0,
                {
                    "role": "aggregate",
                    "nodes": 1,
                    "pushes": sum(s.pushes for s in self.shards),
                    "pushes_suppressed": sum(
                        s.pushes_suppressed for s in self.shards
                    ),
                    "broadcasts_suppressed": getattr(
                        aggregator, "broadcasts_suppressed", 0
                    ),
                },
            )
        return merged

    # -- delivery ------------------------------------------------------------

    def deliver_update(self, time: int, site_id: int, delta: int) -> None:
        """Route one stream update to its owning shard, then sync the root.

        A nested shard's inner :class:`ShardedNetwork` routes again with the
        shard-local id, so the update descends the tree to its leaf and every
        aggregator on the path sees a (deadband-filtered) push afterwards.
        """
        shard, local_id = self._locate(site_id)
        shard.network.deliver_update(time, local_id, delta)
        if self.root_network is not None:
            shard.push_estimate(time)
        if self.wrapper is None:
            self._site_values[site_id] += int(delta)
            self._site_counts[site_id] += 1

    def deliver_batch(
        self, site_id: int, times: Sequence[int], deltas: Sequence[int]
    ) -> None:
        """Route a contiguous same-site run to its shard, then sync the root."""
        shard, local_id = self._locate(site_id)
        shard.network.deliver_batch(local_id, times, deltas)
        if self.root_network is not None and len(times):
            shard.push_estimate(int(times[-1]))
        if self.wrapper is None and len(times):
            total = deltas.sum() if hasattr(deltas, "sum") else sum(deltas)
            self._site_values[site_id] += int(total)
            self._site_counts[site_id] += len(deltas)

    def estimate(self) -> float:
        """The hierarchy's estimate: the root's merged view (flat: shard 0)."""
        if self.root_network is None:
            return self.shards[0].estimate()
        return self.root_network.estimate()

    # -- asynchronous driving (see repro.asynchrony.runner) ------------------

    def advance_to(self, until: float) -> None:
        """Advance every clock to ``until``, then push fresh shard estimates.

        The root channel advances *before* the pushes so its clock sits at
        the window frontier when a push is transmitted: an estimate formed by
        a shard delivery inside the window is pushed at ``until`` (at or
        after the moment it came to exist), never back-dated to the previous
        advance point — the root cannot receive knowledge before the shard
        had it.  Requires latency-aware channels at both levels
        (:func:`repro.asynchrony.build_sharded_async_network`).
        """
        if self.root_network is not None:
            self.root_network.channel.advance_to(until)
        for shard in self.shards:
            inner = shard.network
            if isinstance(inner, ShardedNetwork):
                inner.advance_to(until)
            else:
                inner.channel.advance_to(until)
            if self.root_network is not None:
                shard.push_estimate(int(until))

    def drain(self) -> float:
        """Deliver every in-flight message at both levels; return the clock.

        Loops shard drains, estimate pushes and root drains until the whole
        hierarchy is quiescent, so the root settles on the final merged
        estimate once the last shard report lands.  As in :meth:`advance_to`,
        the root clock is raised to the global frontier before each push
        round, keeping the shard-to-root leg causal.
        """
        while True:
            for shard in self.shards:
                inner = shard.network
                if isinstance(inner, ShardedNetwork):
                    inner.drain()
                else:
                    inner.channel.drain()
            if self.root_network is not None:
                self.root_network.channel.advance_to(self.channel.now)
                for shard in self.shards:
                    shard.push_estimate(int(self.channel.now))
                self.root_network.channel.drain()
            if self.channel.in_flight == 0:
                return self.channel.now


def build_sharded_network(
    factory,
    num_shards: int,
    sharding: Optional[ShardingPolicy] = None,
    local_channel_factory=None,
    root_channel_factory=None,
    broadcast_deadband: float = 0.0,
) -> ShardedNetwork:
    """Build a two-level sharded hierarchy from a flat tracker factory.

    The factory's ``k`` sites are partitioned into ``num_shards`` disjoint
    groups by ``sharding`` (contiguous, balanced-to-within-one by default).
    Each group gets an independent copy of the tracker, built by
    ``factory.shard_factory(group_size, shard_id)`` — the hook every tracker
    factory exposes (see
    :meth:`repro.core.template.BlockTrackerFactory.shard_factory`) — wired as
    a flat network over its own counted channel.  With more than one shard, a
    :class:`RootAggregator` is wired over a second counted channel whose
    "sites" are the shard uplinks.

    This is the two-level convenience entry of the general builder: the
    multi-shard case delegates to
    :func:`repro.monitoring.tree.build_tree_network` with a single fan-out
    level, so ``shards = S`` and ``levels = 2, fanout = S`` are the same
    construction by definition, not by parallel maintenance.

    Args:
        factory: Flat tracker factory exposing ``num_sites`` and
            ``shard_factory`` (all Section 3 trackers and baselines do).
        num_shards: Number of shards; ``1`` yields the flat topology with no
            root hop.
        sharding: Site-to-shard partition policy; default
            :class:`ContiguousSharding`.
        local_channel_factory: Optional ``(shard_id, group_size) -> Channel``
            used to inject shard-local channels (the async builder injects
            latency-aware ones).
        root_channel_factory: Optional ``(num_shards) -> Channel`` for the
            shard-to-root channel.
        broadcast_deadband: Relative deadband on the root's downward level
            re-broadcasts (see :class:`RootAggregator`); 0.0 keeps the exact
            legacy behaviour.

    Returns:
        A wired :class:`ShardedNetwork`.
    """
    num_sites = getattr(factory, "num_sites", None)
    if num_sites is None:
        raise ConfigurationError(
            "build_sharded_network needs a tracker factory exposing num_sites"
        )
    shard_factory = getattr(factory, "shard_factory", None)
    if shard_factory is None:
        raise ConfigurationError(
            f"{type(factory).__name__} does not expose shard_factory(num_sites, "
            "shard_id); add one to run it sharded"
        )
    policy = sharding if sharding is not None else ContiguousSharding()
    if num_shards == 1:
        groups = policy.partition(num_sites, 1)
        if len(groups) != 1 or not groups[0]:
            raise ConfigurationError(
                f"sharding policy returned {len(groups)} groups (some possibly "
                "empty) for 1 shard"
            )
        group = groups[0]
        sub_factory = shard_factory(len(group), 0)
        base = sub_factory.build_network()
        if local_channel_factory is not None:
            base = MonitoringNetwork(
                base.coordinator,
                base.sites,
                channel=local_channel_factory(0, len(group)),
            )
        return ShardedNetwork([ShardCoordinator(0, base, group)], None)
    # Imported lazily: the tree module builds on this one.
    from repro.monitoring.tree import build_tree_network

    channel_factory = None
    if local_channel_factory is not None or root_channel_factory is not None:

        def channel_factory(level: int, index: int, ports: int):
            if level == 0:
                if root_channel_factory is None:
                    return None
                return root_channel_factory(ports)
            if local_channel_factory is None:
                return None
            return local_channel_factory(index, ports)

    return build_tree_network(
        factory,
        fanouts=[num_shards],
        sharding=policy,
        channel_factory=channel_factory,
        broadcast_deadband=broadcast_deadband,
    )
