"""Distributed-monitoring substrate.

This package simulates the coordinator/site model of Cormode, Muthukrishnan
and Yi: ``k`` sites receive stream updates and exchange messages with a single
coordinator over counted channels.  Algorithms plug into the substrate by
implementing the :class:`Site` and :class:`Coordinator` protocols; the
:class:`MonitoringNetwork` wires them together and the
:func:`run_tracking` runner drives a stream through the network while
recording the coordinator's estimate, the exact value, and the communication
cost at every recording point.

Two delivery engines share identical protocol semantics.  The per-update
engine dispatches every update through
:meth:`MonitoringNetwork.deliver_update`.  The batched engine groups
contiguous same-site runs into :meth:`MonitoringNetwork.deliver_batch`
calls, which route through the span kernel (:mod:`repro.engine`):
block-template sites simulate whole protocol spans in closed form (NumPy
cumulative sums for report conditions, arithmetic for block trigger points,
bulk cost accounting for superseded messages) and fast-forward runs of
consecutive same-level block closes as one closed-form window — an order of
magnitude faster on long streams while staying bit-for-bit identical in
estimates, message counts and bit counts.  ``run_tracking`` accepts any
iterable of updates (no ``len()`` required) and keeps memory at
``O(records)``.

Past what one coordinator can serve, :mod:`repro.monitoring.sharding` scales
the substrate into a recursive hierarchy: disjoint site groups each run an
unmodified coordinator locally (:class:`ShardCoordinator`), and a
:class:`RootAggregator` merges the shard estimates over another counted
channel — communication stays separately accounted per shard, and the
single-shard configuration is bit-for-bit the flat engine.
:mod:`repro.monitoring.tree` composes these levels into L-level monitoring
trees (:func:`build_tree_network`) with the error budget split across levels
(:func:`resolve_epsilon_split`) and live site migration between leaf shards
(:func:`migrate_site`); the legacy two-level ``build_sharded_network`` is the
``fanouts=[num_shards]`` special case and delegates to the tree builder.
"""

from repro.monitoring.channel import Channel, ChannelStats
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.history import EstimateHistory
from repro.monitoring.messages import (
    BROADCAST_SITE,
    COORDINATOR,
    Message,
    MessageKind,
    integer_bit_length,
    message_bits,
)
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.runner import (
    TrackingResult,
    run_tracking,
    run_tracking_arrays,
    run_tracking_tree_arrays,
)
from repro.monitoring.sharding import (
    ContiguousSharding,
    RootAggregator,
    ShardCoordinator,
    ShardedNetwork,
    ShardingPolicy,
    StridedSharding,
    build_sharded_network,
)
from repro.monitoring.site import Site
from repro.monitoring.tree import (
    EPSILON_SPLIT_NAMES,
    EpsilonSplitPolicy,
    GeometricSplit,
    LeafSplit,
    MigrationReport,
    UniformSplit,
    build_tree_network,
    leaf_groups,
    migrate_site,
    resolve_epsilon_split,
    resolve_fanouts,
)

__all__ = [
    "Channel",
    "ChannelStats",
    "Coordinator",
    "EstimateHistory",
    "BROADCAST_SITE",
    "COORDINATOR",
    "Message",
    "MessageKind",
    "integer_bit_length",
    "message_bits",
    "MonitoringNetwork",
    "TrackingResult",
    "run_tracking",
    "run_tracking_arrays",
    "run_tracking_tree_arrays",
    "ContiguousSharding",
    "RootAggregator",
    "ShardCoordinator",
    "ShardedNetwork",
    "ShardingPolicy",
    "StridedSharding",
    "build_sharded_network",
    "Site",
    "EPSILON_SPLIT_NAMES",
    "EpsilonSplitPolicy",
    "LeafSplit",
    "UniformSplit",
    "GeometricSplit",
    "resolve_epsilon_split",
    "resolve_fanouts",
    "build_tree_network",
    "leaf_groups",
    "MigrationReport",
    "migrate_site",
]
