"""Recursive L-level monitoring trees with a split error budget.

This module is the topology layer above :mod:`repro.monitoring.sharding`:
it composes :class:`~repro.monitoring.sharding.ShardedNetwork` levels
recursively into a tree of any depth, splits the error budget ``eps``
across the levels, and supports *live migration* of a site between leaf
shards with an exact state handoff.

Topology
    :func:`build_tree_network` takes per-level fan-outs (top-down) and
    builds aggregators over aggregators until the leaves, each leaf an
    unmodified flat tracker over its site group.  A two-level tree with
    fan-out ``S`` constructs exactly the legacy ``num_shards = S``
    hierarchy — :func:`repro.monitoring.sharding.build_sharded_network`
    delegates here, so the equivalence is by construction.

Error budget
    An :class:`EpsilonSplitPolicy` divides ``eps`` into one budget per
    level, top-down: budgets for the aggregation levels become relative
    *push deadbands* (a child withholds a new estimate while it moved less
    than ``b_l`` relative to the last push), and the last budget is the
    ``eps`` the leaf trackers are built with.  Each hop's relative error is
    bounded by its budget, so the root's end-to-end relative error is
    bounded by ``prod(1 + b_l) - 1`` — for budgets summing to ``eps`` this
    is ``eps`` to first order (and at most ``e^eps - 1``).  The default
    :class:`LeafSplit` puts the whole budget at the leaves (zero deadbands),
    which preserves the legacy exact-merge behaviour bit for bit.

Migration
    :func:`migrate_site` moves one site between leaf shards mid-run:
    **drain** (the hierarchy settles, async transports deliver their
    backlog), **transfer** (both affected leaves checkpoint their exact
    per-site state, charged as a request/reply/broadcast exchange on their
    channels plus one state-transfer hop per aggregator level between the
    leaves), **re-register** (both leaves are rebuilt around the new
    membership via the tracker factory's ``bootstrap_network`` hook, their
    channels adopting the old cumulative accounting, and the routing tables
    of every ancestor are rewired).  From the handoff point onward the
    destination shard behaves exactly as a freshly bootstrapped network over
    its new group — pinned by ``tests/test_migration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ProtocolError
from repro.monitoring.channel import Channel, ChannelStats
from repro.monitoring.messages import (
    BROADCAST_SITE,
    COORDINATOR,
    Message,
    MessageKind,
)
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.sharding import (
    ContiguousSharding,
    RootAggregator,
    ShardCoordinator,
    ShardedNetwork,
    ShardingPolicy,
)

__all__ = [
    "EPSILON_SPLIT_NAMES",
    "EpsilonSplitPolicy",
    "LeafSplit",
    "UniformSplit",
    "GeometricSplit",
    "resolve_epsilon_split",
    "resolve_fanouts",
    "build_tree_network",
    "leaf_groups",
    "leaf_routing",
    "MigrationReport",
    "migrate_site",
]

#: Epsilon-split policies addressable by name (spec/CLI vocabulary).
EPSILON_SPLIT_NAMES = ("leaf", "uniform", "geometric")


# --------------------------------------------------------------------------
# Error-budget split policies.
# --------------------------------------------------------------------------

class EpsilonSplitPolicy:
    """Protocol for dividing the error budget across the tree's levels.

    ``split(epsilon, levels)`` returns one budget per level, top-down:
    entries ``0 .. levels - 2`` are the relative push deadbands of the
    aggregation levels (index 0 = pushes into the root), the last entry is
    the ``eps`` the leaf trackers run with.  Budgets must be non-negative,
    the leaf budget positive, and their sum must not exceed ``epsilon`` —
    that is what keeps the end-to-end bound ``prod(1 + b_l) - 1 <= e^eps - 1``.
    """

    def split(self, epsilon: float, levels: int) -> List[float]:
        raise NotImplementedError


class LeafSplit(EpsilonSplitPolicy):
    """All budget at the leaf trackers; aggregation relays exactly.

    Zero deadbands at every aggregation level mean every estimate change
    propagates to the root — the legacy exact-merge hierarchy, and the
    default: a two-level tree under this policy is bit-for-bit the
    pre-refactor sharded network.
    """

    def split(self, epsilon: float, levels: int) -> List[float]:
        return [0.0] * (levels - 1) + [float(epsilon)]


class UniformSplit(EpsilonSplitPolicy):
    """Equal budgets: every level gets ``eps / levels``."""

    def split(self, epsilon: float, levels: int) -> List[float]:
        share = float(epsilon) / levels
        return [share] * levels


class GeometricSplit(EpsilonSplitPolicy):
    """Geometrically decreasing budgets towards the root.

    The leaf level gets the largest share (it does the actual tracking) and
    each aggregation level above gets ``ratio`` times the share below it,
    normalised so the budgets sum to ``eps`` exactly.  With the default
    ``ratio = 0.5`` and three levels the split is ``eps * (1/7, 2/7, 4/7)``
    top-down.
    """

    def __init__(self, ratio: float = 0.5) -> None:
        if not 0.0 < ratio < 1.0:
            raise ConfigurationError(
                f"geometric split ratio must be in (0, 1), got {ratio}"
            )
        self.ratio = ratio

    def split(self, epsilon: float, levels: int) -> List[float]:
        weights = [self.ratio ** (levels - 1 - level) for level in range(levels)]
        total = sum(weights)
        return [float(epsilon) * weight / total for weight in weights]


def resolve_epsilon_split(policy, ratio: float = 0.5) -> EpsilonSplitPolicy:
    """Resolve a policy instance or a name from :data:`EPSILON_SPLIT_NAMES`."""
    if isinstance(policy, EpsilonSplitPolicy):
        return policy
    if policy is None or policy == "leaf":
        return LeafSplit()
    if policy == "uniform":
        return UniformSplit()
    if policy == "geometric":
        return GeometricSplit(ratio)
    raise ConfigurationError(
        f"unknown epsilon split {policy!r}; pick one of "
        f"{sorted(EPSILON_SPLIT_NAMES)} or pass an EpsilonSplitPolicy"
    )


def _split_budgets(
    policy: EpsilonSplitPolicy, epsilon: float, levels: int
) -> List[float]:
    """Run the policy and validate its output against the contract."""
    budgets = [float(b) for b in policy.split(epsilon, levels)]
    if len(budgets) != levels:
        raise ConfigurationError(
            f"{type(policy).__name__} returned {len(budgets)} budgets for "
            f"{levels} levels"
        )
    if any(budget < 0.0 for budget in budgets):
        raise ConfigurationError(
            f"{type(policy).__name__} returned a negative budget: {budgets}"
        )
    if not 0.0 < budgets[-1] < 1.0:
        raise ConfigurationError(
            f"the leaf level needs a tracker budget in (0, 1), got "
            f"{budgets[-1]} from {type(policy).__name__}"
        )
    if sum(budgets) > epsilon * (1.0 + 1e-9):
        raise ConfigurationError(
            f"{type(policy).__name__} budgets sum to {sum(budgets)}, "
            f"exceeding the end-to-end budget {epsilon}"
        )
    return budgets


# --------------------------------------------------------------------------
# Tree construction.
# --------------------------------------------------------------------------

def resolve_fanouts(
    levels: Optional[int] = None,
    fanout: Optional[int] = None,
    fanouts: Optional[Sequence[int]] = None,
) -> List[int]:
    """Normalise the three ways of describing a tree shape to a fan-out list.

    Returns the per-aggregation-level fan-outs, top-down (empty = flat).
    ``fanouts`` wins when given (``levels``, if also given, must agree);
    ``levels + fanout`` expands to a uniform list; ``levels = 1`` alone is
    the flat topology.
    """
    if fanouts is not None:
        resolved = [int(f) for f in fanouts]
        if fanout is not None:
            raise ConfigurationError(
                "fanout and fanouts are mutually exclusive; give the uniform "
                "fan-out or the explicit per-level list, not both"
            )
        if levels is not None and levels != len(resolved) + 1:
            raise ConfigurationError(
                f"levels={levels} disagrees with fanouts={resolved} "
                f"(a {len(resolved)}-entry fan-out list describes "
                f"{len(resolved) + 1} levels)"
            )
    elif levels is None:
        raise ConfigurationError(
            "describe the tree shape with levels (+ fanout) or fanouts"
        )
    elif levels == 1:
        if fanout is not None:
            raise ConfigurationError(
                f"levels=1 is the flat topology and takes no fanout "
                f"(got fanout={fanout})"
            )
        resolved = []
    else:
        if levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels}")
        if fanout is None:
            raise ConfigurationError(
                f"levels={levels} needs a fanout (or an explicit fanouts list)"
            )
        resolved = [int(fanout)] * (levels - 1)
    for value in resolved:
        if value < 2:
            raise ConfigurationError(
                f"every aggregation level needs fan-out >= 2, got {value} "
                f"in {resolved}"
            )
    return resolved


@dataclass
class _TreeRecipe:
    """Everything needed to rebuild one leaf of a tree during migration."""

    factory: object
    fanouts: List[int]
    sharding: ShardingPolicy
    budgets: List[float]
    broadcast_deadband: float
    channel_factory: Optional[Callable[[int, int, int], Optional[Channel]]]

    @property
    def leaf_level(self) -> int:
        return len(self.fanouts)

    @property
    def leaf_epsilon(self) -> float:
        return self.budgets[-1]

    def build_leaf(self, size: int, leaf_index: int) -> MonitoringNetwork:
        """Build one leaf's flat network exactly as the tree builder does."""
        sub_factory = self.factory.shard_factory(size, leaf_index)
        if sub_factory.epsilon != self.leaf_epsilon:
            sub_factory.epsilon = self.leaf_epsilon
        base = sub_factory.build_network()
        channel = (
            self.channel_factory(self.leaf_level, leaf_index, size)
            if self.channel_factory is not None
            else None
        )
        if channel is not None:
            base = MonitoringNetwork(base.coordinator, base.sites, channel=channel)
        return base, sub_factory


class _LazyLeafChannel:
    """Stand-in channel of a not-yet-materialised leaf.

    Answers the runner-facing read surface (``is_synchronous``, ``stats``,
    ``log_enabled``) with an untouched leaf's true values — synchronous,
    zero counters, no transcript — without building the leaf.  Anything
    that would make the leaf observable for real (enabling the log,
    attaching an observer) materialises it and forwards; once the leaf
    exists, every accessor delegates to its real channel, so references
    captured before materialisation stay truthful afterwards.
    """

    def __init__(self, owner: "_LazyLeafNetwork") -> None:
        self._owner = owner
        self._stats = ChannelStats()

    @property
    def _real(self) -> Optional[Channel]:
        network = self._owner._network
        return None if network is None else network.channel

    @property
    def is_synchronous(self) -> bool:
        real = self._real
        # Lazy leaves exist only in default-channel (synchronous) trees, so
        # True is the materialised answer too.
        return True if real is None else real.is_synchronous

    @property
    def stats(self) -> ChannelStats:
        real = self._real
        return self._stats if real is None else real.stats

    @property
    def log_enabled(self) -> bool:
        real = self._real
        return False if real is None else real.log_enabled

    def enable_log(self) -> None:
        self._owner.materialize().channel.enable_log()

    @property
    def observer(self):
        real = self._real
        return None if real is None else real.observer

    @observer.setter
    def observer(self, value) -> None:
        self._owner.materialize().channel.observer = value

    # -- adopt_accounting sources (migration of an untouched leaf) -----------

    @property
    def _log(self) -> List[Message]:
        real = self._real
        return [] if real is None else real._log

    @property
    def _record_log(self) -> bool:
        real = self._real
        return False if real is None else real._record_log


class _LazyLeafNetwork:
    """Placeholder for a leaf network that is built on first touch.

    A million-site tree spends its build time constructing per-leaf site
    and coordinator objects that a sparse trace never touches.  This proxy
    satisfies the read-only surface the hierarchy needs from an idle leaf —
    ``num_sites`` (routing/validation), ``estimate() == 0.0`` (what a fresh
    tracker answers, so the parent's pushes stay suppressed), ``channel`` /
    ``stats`` (empty counters) — in O(1), and materialises the real network
    via :meth:`_TreeRecipe.build_leaf` on the first delivery or any other
    attribute access, swapping itself out of its :class:`ShardCoordinator`
    wrapper so subsequent traffic runs on the real object directly.
    """

    def __init__(self, recipe: _TreeRecipe, size: int, leaf_index: int) -> None:
        self._recipe = recipe
        self._size = size
        self._leaf_index = leaf_index
        self._network: Optional[MonitoringNetwork] = None
        self._wrapper: Optional[ShardCoordinator] = None
        self._channel = _LazyLeafChannel(self)

    @property
    def num_sites(self) -> int:
        return self._size

    @property
    def channel(self) -> _LazyLeafChannel:
        return self._channel

    @property
    def stats(self) -> ChannelStats:
        return self._channel.stats

    def estimate(self) -> float:
        return 0.0 if self._network is None else self._network.estimate()

    def materialize(self) -> MonitoringNetwork:
        """Build the real leaf (idempotent) and rewire the wrapper to it."""
        if self._network is None:
            base, _ = self._recipe.build_leaf(self._size, self._leaf_index)
            self._network = base
            if self._wrapper is not None:
                self._wrapper.replace_network(base)
        return self._network

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.materialize(), name)


def build_tree_network(
    factory,
    levels: Optional[int] = None,
    fanout: Optional[int] = None,
    fanouts: Optional[Sequence[int]] = None,
    sharding: Optional[ShardingPolicy] = None,
    epsilon_split="leaf",
    split_ratio: float = 0.5,
    broadcast_deadband: float = 0.0,
    channel_factory: Optional[Callable[[int, int, int], Optional[Channel]]] = None,
    lazy: Optional[bool] = None,
):
    """Build a recursive L-level monitoring tree from a flat tracker factory.

    The factory's ``k`` sites are partitioned top-down: the root level
    splits them into ``fanouts[0]`` groups, each group is split again by the
    next fan-out, and so on; the final groups become leaf shards running an
    unmodified copy of the tracker built by
    ``factory.shard_factory(group_size, leaf_index)`` with the leaf level's
    share of the error budget.  Every aggregation node is a
    :class:`~repro.monitoring.sharding.RootAggregator` over its children's
    uplinks — a subtree is a :class:`~repro.monitoring.sharding.Site` of its
    parent at any depth.

    Args:
        factory: Flat tracker factory exposing ``num_sites``, ``epsilon``
            and ``shard_factory``.
        levels: Total number of coordinator levels (1 = flat, 2 = the legacy
            sharded hierarchy).  Give ``fanout`` with it, or use ``fanouts``.
        fanout: Uniform fan-out per aggregation level (with ``levels``).
        fanouts: Explicit per-level fan-outs, top-down (``len == levels-1``).
        sharding: Partition policy applied at every split; default
            :class:`~repro.monitoring.sharding.ContiguousSharding`.
        epsilon_split: :class:`EpsilonSplitPolicy` instance or name from
            :data:`EPSILON_SPLIT_NAMES`; default ``"leaf"`` (all budget at
            the leaves, aggregation exact — the legacy behaviour).
        split_ratio: Ratio for the named ``"geometric"`` policy.
        broadcast_deadband: Relative deadband on every aggregator's downward
            level re-broadcasts (0.0 = re-broadcast on every change).
        channel_factory: Optional ``(level, index, num_ports) -> Channel``
            injecting channels per node; ``level`` is the node's depth
            (0 = root aggregator, ``levels - 1`` = leaves) and ``index`` the
            node's left-to-right position within its level.  Returning
            ``None`` falls back to the default synchronous channel.  The
            async builder derives per-node latency RNG seeds from
            ``(level, index)`` breadth-first, which keeps the two-level tree
            seed-compatible with the legacy sharded async builder.
        lazy: Build leaf networks on first touch instead of eagerly, so a
            tree over ``k`` sites constructs in O(touched leaves) — the
            enabler for million-site trees.  Default (``None``) enables
            laziness exactly when no ``channel_factory`` is given (injected
            channels — in particular the async builder's latency channels —
            must exist up front).  Untouched leaves answer estimate 0.0 and
            empty counters, which is what a freshly built leaf answers too,
            so laziness is observationally invisible.

    Returns:
        The top-level :class:`~repro.monitoring.sharding.ShardedNetwork`
        (or a flat ``MonitoringNetwork`` when the shape resolves to one
        level), with the build recipe attached for live migration.
    """
    num_sites = getattr(factory, "num_sites", None)
    if num_sites is None:
        raise ConfigurationError(
            "build_tree_network needs a tracker factory exposing num_sites"
        )
    if getattr(factory, "shard_factory", None) is None:
        raise ConfigurationError(
            f"{type(factory).__name__} does not expose shard_factory(num_sites, "
            "shard_id); add one to run it in a tree"
        )
    resolved = resolve_fanouts(levels=levels, fanout=fanout, fanouts=fanouts)
    policy = sharding if sharding is not None else ContiguousSharding()
    if not resolved:
        base = factory.build_network()
        if channel_factory is not None:
            channel = channel_factory(0, 0, num_sites)
            if channel is not None:
                base = MonitoringNetwork(
                    base.coordinator, base.sites, channel=channel
                )
        return base
    min_sites = 1
    for value in resolved:
        min_sites *= value
    if min_sites > num_sites:
        raise ConfigurationError(
            f"fanouts {resolved} describe {min_sites} leaves, but the factory "
            f"serves only {num_sites} sites (every leaf needs >= 1 site)"
        )
    num_levels = len(resolved) + 1
    if lazy and channel_factory is not None:
        raise ConfigurationError(
            "lazy leaf instantiation requires the default channel; a "
            "channel_factory's per-leaf channels must exist up front"
        )
    use_lazy = channel_factory is None if lazy is None else bool(lazy)
    split = resolve_epsilon_split(epsilon_split, split_ratio)
    budgets = _split_budgets(split, float(factory.epsilon), num_levels)
    recipe = _TreeRecipe(
        factory=factory,
        fanouts=resolved,
        sharding=policy,
        budgets=budgets,
        broadcast_deadband=float(broadcast_deadband),
        channel_factory=channel_factory,
    )

    leaves_below = [1] * (len(resolved) + 1)
    for level in range(len(resolved) - 1, -1, -1):
        leaves_below[level] = resolved[level] * leaves_below[level + 1]

    def build_node(level: int, position: int, site_ids: List[int]):
        """Build the subtree rooted at (level, position) over ``site_ids``.

        ``site_ids`` are ids in the *parent's* space; the node's own space
        is positions ``0..len(site_ids)-1``.
        """
        if level == len(resolved):
            if use_lazy:
                return _LazyLeafNetwork(recipe, len(site_ids), position)
            base, _ = recipe.build_leaf(len(site_ids), position)
            return base
        fan = resolved[level]
        groups = policy.partition(len(site_ids), fan)
        if len(groups) != fan or any(not group for group in groups):
            raise ConfigurationError(
                f"sharding policy returned {len(groups)} groups (some "
                f"possibly empty) for fan-out {fan}"
            )
        wrappers: List[ShardCoordinator] = []
        for child_index, group in enumerate(groups):
            child = build_node(
                level + 1, position * fan + child_index, list(group)
            )
            wrapper = ShardCoordinator(child_index, child, group)
            if isinstance(child, _LazyLeafNetwork):
                child._wrapper = wrapper
            wrapper.push_deadband = budgets[level]
            wrappers.append(wrapper)
        aggregator = RootAggregator(
            num_shards=fan,
            num_sites=len(site_ids),
            broadcast_deadband=recipe.broadcast_deadband,
        )
        channel = (
            channel_factory(level, position, fan)
            if channel_factory is not None
            else None
        )
        aggregator_network = MonitoringNetwork(
            aggregator, [wrapper.uplink for wrapper in wrappers], channel=channel
        )
        return ShardedNetwork(wrappers, aggregator_network)

    network = build_node(0, 0, list(range(num_sites)))
    network._tree_recipe = recipe
    return network


# --------------------------------------------------------------------------
# Tree inspection.
# --------------------------------------------------------------------------

def leaf_groups(network: ShardedNetwork) -> List[List[int]]:
    """Global site ids of every leaf shard, left to right.

    The position of an id within its leaf's list is the site's leaf-local
    id, whatever partition policy (contiguous, strided, nested) produced the
    placement — the composite global-to-leaf map is read off the routing
    tables level by level.
    """

    def descend(node, ids: List[int]) -> List[List[int]]:
        groups: List[List[int]] = []
        for shard in node.shards:
            owned = [ids[position] for position in shard.site_ids]
            if isinstance(shard.network, ShardedNetwork):
                groups.extend(descend(shard.network, owned))
            else:
                groups.append(owned)
        return groups

    return descend(network, list(range(network.num_sites)))


def leaf_routing(network: ShardedNetwork) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised global-to-leaf map: ``(leaf_of, local_of)`` arrays.

    ``leaf_of[site]`` indexes the owning leaf in :meth:`ShardedNetwork.leaves`
    (left-to-right, the same order as :func:`leaf_groups`) and
    ``local_of[site]`` is the site's leaf-local id.  The composite map is the
    same one :func:`leaf_groups` reads off the routing tables, built with
    array indexing instead of a per-site Python walk, so a million-site tree
    routes in milliseconds — this is what lets the tree-direct columnar
    engine skip the level-by-level ``_locate`` descent per segment.
    """
    num_sites = network.num_sites
    leaf_of = np.empty(num_sites, dtype=np.int64)
    local_of = np.empty(num_sites, dtype=np.int64)
    next_leaf = 0

    def descend(node: ShardedNetwork, ids: np.ndarray) -> None:
        nonlocal next_leaf
        for shard in node.shards:
            site_ids = shard.site_ids
            if isinstance(site_ids, range) and site_ids.step == 1:
                owned = ids[site_ids.start : site_ids.stop]
            else:
                owned = ids[
                    np.fromiter(site_ids, dtype=np.int64, count=len(site_ids))
                ]
            if isinstance(shard.network, ShardedNetwork):
                descend(shard.network, owned)
            else:
                leaf_of[owned] = next_leaf
                local_of[owned] = np.arange(len(owned), dtype=np.int64)
                next_leaf += 1

    descend(network, np.arange(num_sites, dtype=np.int64))
    return leaf_of, local_of


def _wrapper_chain(leaf: ShardCoordinator) -> List[ShardCoordinator]:
    """The shard wrappers from ``leaf`` up to (and excluding) the top."""
    chain = [leaf]
    node = leaf.parent_network
    while node is not None and node.wrapper is not None:
        chain.append(node.wrapper)
        node = node.wrapper.parent_network
    return chain


def _aggregator_networks(leaf: ShardCoordinator) -> List[ShardedNetwork]:
    """Every hierarchy level above ``leaf`` that has an aggregator channel."""
    out = []
    node = leaf.parent_network
    while node is not None:
        if node.root_network is not None:
            out.append(node)
        node = None if node.wrapper is None else node.wrapper.parent_network
    return out


# --------------------------------------------------------------------------
# Live migration.
# --------------------------------------------------------------------------

@dataclass
class MigrationReport:
    """What one :func:`migrate_site` handoff did and charged.

    Attributes:
        site_id: The migrated global site id (ids are stable across moves).
        source_leaf: Leaf index the site left.
        dest_leaf: Leaf index the site joined.
        time: Timestep stamped on the handoff traffic.
        checkpoint_messages: Messages charged for the two leaf checkpoints
            (request/reply/broadcast per member site).
        transfer_hops: Aggregator levels the site's state crossed.
        handoff_messages: Total messages charged by the handoff.
        handoff_bits: Total bits charged by the handoff.
    """

    site_id: int
    source_leaf: int
    dest_leaf: int
    time: int
    checkpoint_messages: int = 0
    transfer_hops: int = 0
    handoff_messages: int = 0
    handoff_bits: int = 0


@dataclass
class _HandoffLedger:
    """Accumulates the cost of every message the handoff charges."""

    messages: int = 0
    bits: int = 0

    def charge(self, channel: Channel, message: Message) -> None:
        size = message.bits()
        channel.charge(message.kind, 1, size)
        self.messages += 1
        self.bits += size


def migrate_site(
    network: ShardedNetwork,
    site_id: int,
    dest_leaf: int,
    time: int = 0,
) -> MigrationReport:
    """Move one site to another leaf shard mid-run, with exact state handoff.

    The protocol is drain -> transfer -> re-register:

    1. **Drain.**  On asynchronous transports the whole hierarchy is drained
       so every in-flight message lands and each node settles (synchronous
       channels are always settled).
    2. **Transfer.**  The source and destination leaves checkpoint: each
       pays one request/reply exchange per member site (the coordinator
       collecting exact per-site state) plus a broadcast announcing the
       bootstrapped level, and the migrating site's state pays one transfer
       message per aggregator level between the two leaves.  All of it is
       charged on the real channels, so the migration cost is visible in the
       per-level accounting.
    3. **Re-register.**  Both leaves are rebuilt by the original factory for
       their new sizes, bootstrapped with the exact checkpointed values via
       the factory's ``bootstrap_network`` hook (estimates exact, fresh
       block at the recomputed level), their new channels adopt the old
       cumulative counters (and virtual clock), the routing tables of every
       ancestor are rewired, and fresh estimates are pushed up the two
       affected paths so the root's merged view is exact again.

    Global site ids are stable: the stream keeps addressing the site by the
    same id; only the internal placement changes.

    Args:
        network: The *top-level* tree, built by :func:`build_tree_network`
            (or ``build_sharded_network``).
        site_id: Global id of the site to move.
        dest_leaf: Destination leaf index (see
            :meth:`~repro.monitoring.sharding.ShardedNetwork.leaves`).
        time: Timestep stamped on the handoff traffic and pushes.

    Returns:
        A :class:`MigrationReport` with the handoff's accounted cost.
    """
    if not isinstance(network, ShardedNetwork) or network.wrapper is not None:
        raise ConfigurationError(
            "migrate_site operates on the top-level ShardedNetwork of a tree"
        )
    recipe: Optional[_TreeRecipe] = getattr(network, "_tree_recipe", None)
    if recipe is None:
        raise ConfigurationError(
            "this network was not built by build_tree_network / "
            "build_sharded_network; migration needs the build recipe to "
            "rebuild the affected leaves"
        )
    if network.channel.log_enabled:
        raise ProtocolError(
            "the state handoff uses charge-only accounting, which would "
            "desynchronise the message transcript; disable logging to migrate"
        )
    leaves = network.leaves()
    groups = leaf_groups(network)
    if not 0 <= dest_leaf < len(leaves):
        raise ConfigurationError(
            f"dest_leaf {dest_leaf} out of range 0..{len(leaves) - 1}"
        )
    source_leaf = None
    for index, group in enumerate(groups):
        if site_id in group:
            source_leaf = index
            break
    if source_leaf is None:
        raise ProtocolError(
            f"site {site_id} does not exist; the network serves "
            f"{network.num_sites} sites"
        )
    if source_leaf == dest_leaf:
        raise ConfigurationError(
            f"site {site_id} already lives in leaf {dest_leaf}"
        )
    if len(groups[source_leaf]) < 2:
        raise ConfigurationError(
            f"cannot migrate the last site out of leaf {source_leaf}; every "
            "leaf shard needs at least one site"
        )

    # 1. Drain: settle the hierarchy so checkpoints read exact state.
    if not network.channel.is_synchronous:
        network.drain()

    new_groups = [list(group) for group in groups]
    new_groups[source_leaf] = [s for s in groups[source_leaf] if s != site_id]
    new_groups[dest_leaf] = list(groups[dest_leaf]) + [site_id]

    ledger = _HandoffLedger()

    # 2. Transfer: rebuild and bootstrap the two affected leaves, charging
    # the checkpoint exchange on their (adopted) channels.
    for leaf_index in (source_leaf, dest_leaf):
        wrapper = leaves[leaf_index]
        members = new_groups[leaf_index]
        values = [network._site_values[s] for s in members]
        counts = [network._site_counts[s] for s in members]
        old_channel = wrapper.network.channel
        base, sub_factory = recipe.build_leaf(len(members), leaf_index)
        base.channel.adopt_accounting(old_channel)
        bootstrap = getattr(sub_factory, "bootstrap_network", None)
        if bootstrap is None:
            raise ConfigurationError(
                f"{type(sub_factory).__name__} has no bootstrap_network hook; "
                "this tracker cannot take a live state handoff"
            )
        bootstrap(base, values, counts)
        _charge_checkpoint(ledger, base, values, counts, time)
        wrapper.replace_network(base)

    # One state-transfer message per aggregator level between the leaves.
    crossed = {id(node): node for node in _aggregator_networks(leaves[source_leaf])}
    crossed.update(
        (id(node), node) for node in _aggregator_networks(leaves[dest_leaf])
    )
    transfer = Message(
        kind=MessageKind.REPORT,
        sender=leaves[source_leaf].shard_id,
        receiver=COORDINATOR,
        payload={
            "count": network._site_counts[site_id],
            "change": network._site_values[site_id],
        },
        time=time,
    )
    for node in crossed.values():
        ledger.charge(node.root_network.channel, transfer)

    # 3. Re-register: rewire every ancestor's routing to the new membership
    # and push fresh estimates up both affected paths.
    _rewire(network, new_groups)
    refreshed: Dict[int, ShardCoordinator] = {}
    for leaf in (leaves[source_leaf], leaves[dest_leaf]):
        for wrapper in _wrapper_chain(leaf):
            refreshed.setdefault(id(wrapper), wrapper)
    for wrapper in sorted(
        refreshed.values(), key=lambda w: -len(_wrapper_chain(w))
    ):
        parent = wrapper.parent_network
        if parent is not None and parent.root_network is not None:
            wrapper.push_estimate(time)

    report = MigrationReport(
        site_id=site_id,
        source_leaf=source_leaf,
        dest_leaf=dest_leaf,
        time=time,
        checkpoint_messages=3 * (len(new_groups[source_leaf]) + len(new_groups[dest_leaf])),
        transfer_hops=len(crossed),
        handoff_messages=ledger.messages,
        handoff_bits=ledger.bits,
    )
    # The rebuilt leaf channels adopted their predecessors' observers, but
    # the fresh coordinators start blank — let any attached instrumentation
    # re-walk the tree and record the handoff.
    observer = getattr(network, "observer", None)
    if observer is not None:
        observer.on_migration(network, report)
    return report


def _charge_checkpoint(
    ledger: _HandoffLedger,
    leaf_network: MonitoringNetwork,
    values: Sequence[int],
    counts: Sequence[int],
    time: int,
) -> None:
    """Charge a leaf's checkpoint: request/reply per site plus the level cast.

    Mirrors a block close's exchange — the coordinator asks every member for
    its exact state, each replies, and the freshly bootstrapped level is
    broadcast — which is exactly what the bootstrap just simulated.
    """
    channel = leaf_network.channel
    level = getattr(leaf_network.coordinator, "level", 0)
    for local_id, (value, count) in enumerate(zip(values, counts)):
        ledger.charge(
            channel,
            Message(
                kind=MessageKind.REQUEST,
                sender=COORDINATOR,
                receiver=local_id,
                payload={},
                time=time,
            ),
        )
        ledger.charge(
            channel,
            Message(
                kind=MessageKind.REPLY,
                sender=local_id,
                receiver=COORDINATOR,
                payload={"count": int(count), "change": int(value)},
                time=time,
            ),
        )
        ledger.charge(
            channel,
            Message(
                kind=MessageKind.BROADCAST,
                sender=COORDINATOR,
                receiver=BROADCAST_SITE,
                payload={"level": int(level)},
                time=time,
            ),
        )


def _rewire(network: ShardedNetwork, new_groups: List[List[int]]) -> None:
    """Rebuild every level's id space and routing for a new leaf membership.

    Each node's id space is positional; after a migration the spaces are
    relabelled as the concatenation of the children's orderings (which
    preserves the composite global-to-leaf-local map for untouched leaves),
    the routing tables and per-site bookkeeping are rebuilt, and every
    aggregator's subtree site count is refreshed.
    """

    def count_leaves(node) -> int:
        if not isinstance(node, ShardedNetwork):
            return 1
        return sum(count_leaves(shard.network) for shard in node.shards)

    def apply(node: ShardedNetwork, groups: List[List[int]], top: bool) -> List[int]:
        child_orders: List[List[int]] = []
        cursor = 0
        for shard in node.shards:
            span = count_leaves(shard.network)
            slice_groups = groups[cursor:cursor + span]
            cursor += span
            if isinstance(shard.network, ShardedNetwork):
                child_orders.append(apply(shard.network, slice_groups, top=False))
            else:
                members = slice_groups[0]
                if len(members) != shard.network.num_sites:
                    raise ConfigurationError(
                        f"leaf rebuild serves {shard.network.num_sites} sites "
                        f"but the new membership lists {len(members)}"
                    )
                child_orders.append(list(members))
        route = {}
        offset = 0
        for shard, order in zip(node.shards, child_orders):
            ids = tuple(order) if top else tuple(
                range(offset, offset + len(order))
            )
            shard.site_ids = ids
            for local_id, space_id in enumerate(ids):
                route[space_id] = (shard, local_id)
            offset += len(order)
        node._route = route
        node._starts = None
        node._num_sites = offset
        if node.root_network is not None:
            node.root_network.coordinator.num_sites = offset
        return [space_id for order in child_orders for space_id in order]

    apply(network, new_groups, top=True)
