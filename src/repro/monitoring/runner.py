"""Simulation runner: drive a distributed stream through a tracking algorithm.

The runner is the integration point used by the tests, examples and
benchmarks.  It consumes any *iterable* of updates — a list, a generator, a
file reader — one buffered chunk at a time, so memory stays ``O(records)``
regardless of stream length and ``len()`` is never required.  It maintains
the exact value ``f(t)`` alongside, records the coordinator's estimate and
the cumulative communication cost at every recording point, and finally
summarises error and cost statistics in a :class:`TrackingResult`.

Two delivery engines share identical protocol semantics:

* **per-update** — every update flows through
  :meth:`~repro.monitoring.network.MonitoringNetwork.deliver_update`, one
  Python-level dispatch per timestep (the original hot path).
* **batched** — contiguous runs of updates destined for the same site are
  handed to
  :meth:`~repro.monitoring.network.MonitoringNetwork.deliver_batch`, which
  lets sites absorb communication-free prefixes in bulk (NumPy cumulative
  sums instead of per-update condition checks).  Runs are split at recording
  points so records are taken at exactly the same timesteps.

Both engines produce bit-for-bit identical estimates, message counts and bit
counts; ``tests/test_batch_equivalence.py`` asserts this on every stream
class the paper analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, List, Optional

import numpy as np

from repro.exceptions import ProtocolError
from repro.monitoring.history import EstimateHistory
from repro.monitoring.network import MonitoringNetwork
from repro.types import EstimateRecord, Update

__all__ = [
    "TrackingResult",
    "run_tracking",
    "run_tracking_arrays",
    "run_tracking_tree_arrays",
]

#: Maximum number of updates buffered at once by the batched engine.  Bounds
#: the engine's working memory independently of ``record_every``.
_CHUNK_SIZE = 32_768


@dataclass
class TrackingResult:
    """Outcome of running one tracking algorithm over one distributed stream.

    Attributes:
        records: One :class:`EstimateRecord` per recorded timestep.
        total_messages: Total messages charged by the channel.
        total_bits: Total bits charged by the channel.
        messages_by_kind: Message counts broken down by protocol role.
        history: The coordinator's estimate history (for tracing queries).
        levels: Per-level communication view (root level first) when the run
            drove a hierarchical network, ``None`` for flat networks.  Each
            entry is one :meth:`ShardedNetwork.level_summary` row.
        provenance: Self-certification stamp (spec hash + library version)
            attached by :meth:`repro.api.spec.BuiltRun.run`; ``None`` for
            runs driven outside the spec layer.
    """

    records: List[EstimateRecord] = field(default_factory=list)
    total_messages: int = 0
    total_bits: int = 0
    messages_by_kind: dict = field(default_factory=dict)
    history: EstimateHistory = field(default_factory=EstimateHistory)
    levels: Optional[List[dict]] = None
    provenance: Optional[dict] = None

    @property
    def length(self) -> int:
        """Number of recorded timesteps in the run."""
        return len(self.records)

    def max_relative_error(self) -> float:
        """Largest relative error over the run (errors at ``f = 0`` count as
        0 if the estimate is also ~0, else as infinity)."""
        if not self.records:
            return 0.0
        count = len(self.records)
        true_values = np.fromiter(
            (record.true_value for record in self.records), dtype=float, count=count
        )
        errors = np.abs(
            true_values
            - np.fromiter(
                (record.estimate for record in self.records), dtype=float, count=count
            )
        )
        at_zero = true_values == 0.0
        if np.any(errors[at_zero] > 1e-9):
            return float("inf")
        nonzero = ~at_zero
        if not nonzero.any():
            return 0.0
        return float(np.max(errors[nonzero] / np.abs(true_values[nonzero])))

    def error_violations(self, epsilon: float) -> int:
        """Number of timesteps at which the estimate breaks the eps guarantee."""
        return sum(
            1 for record in self.records if not record.within_relative_error(epsilon)
        )

    def violation_fraction(self, epsilon: float) -> float:
        """Fraction of timesteps violating the eps guarantee."""
        if not self.records:
            return 0.0
        return self.error_violations(epsilon) / len(self.records)

    def _elapsed_clock(self) -> float:
        """The run's elapsed (virtual) time, for rate normalisation.

        The synchronous engines' clock is the stream timestamp of the last
        recorded step; the asynchronous result overrides this with the
        transport's final virtual clock when that runs ahead.
        """
        if not self.records:
            return 0.0
        return float(self.records[-1].time)

    def rates(self) -> dict:
        """Message and bit throughput over the run's elapsed (virtual) time.

        Delegates to :meth:`repro.monitoring.channel.ChannelStats.rate`, the
        same helper the live service's rate gauges use, so a Prometheus
        scrape and a batch summary report identical numbers.
        """
        from repro.monitoring.channel import ChannelStats

        stats = ChannelStats(messages=self.total_messages, bits=self.total_bits)
        return stats.rate(self._elapsed_clock())

    def summary(self, epsilon: Optional[float] = None) -> dict:
        """The run's headline numbers as one JSON-compatible dict.

        The shared vocabulary for every JSON-emitting surface (``repro run
        --config``, the benchmark artifacts), so nobody hand-assembles the
        same dict with drifting key names.  Violation accounting needs the
        guarantee parameter, so it appears only when ``epsilon`` is given.

        Args:
            epsilon: Error parameter for violation accounting (optional).

        Returns:
            A dict with ``num_records``, ``total_messages``, ``total_bits``,
            ``messages_by_kind``, ``max_relative_error`` and ``rates``
            (messages/bits per unit of the run's clock) — plus ``epsilon``,
            ``error_violations`` and ``violation_fraction`` when ``epsilon``
            is given, ``levels`` (the per-level communication view) for
            hierarchical runs, and ``provenance`` when the run came through
            the spec layer.
        """
        data = {
            "num_records": self.length,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "messages_by_kind": dict(self.messages_by_kind),
            "max_relative_error": self.max_relative_error(),
            "rates": self.rates(),
        }
        if epsilon is not None:
            data["epsilon"] = epsilon
            data["error_violations"] = self.error_violations(epsilon)
            data["violation_fraction"] = self.violation_fraction(epsilon)
        if self.levels is not None:
            data["levels"] = [dict(row) for row in self.levels]
        if self.provenance is not None:
            data["provenance"] = dict(self.provenance)
        return data

    def to_dict(self, epsilon: Optional[float] = None) -> dict:
        """Full serialization: :meth:`summary` plus the per-step records."""
        data = self.summary(epsilon)
        data["records"] = [
            {
                "time": record.time,
                "true_value": record.true_value,
                "estimate": record.estimate,
                "messages": record.messages,
                "bits": record.bits,
            }
            for record in self.records
        ]
        return data


def _capture_levels(result: TrackingResult, network) -> None:
    """Attach the hierarchy's per-level communication view, if it has one.

    Flat networks expose no ``level_summary`` and keep ``result.levels``
    ``None``; sharded/tree networks report one row per level, root first.
    """
    level_summary = getattr(network, "level_summary", None)
    if callable(level_summary):
        result.levels = level_summary()


def _record(
    result: TrackingResult, network: MonitoringNetwork, time: int, true_value: int
) -> None:
    """Append one estimate record at the current network state."""
    stats = network.stats
    estimate = network.estimate()
    result.records.append(
        EstimateRecord(
            time=time,
            true_value=true_value,
            estimate=estimate,
            messages=stats.messages,
            bits=stats.bits,
        )
    )
    result.history.record(time, estimate)


def _run_per_update(
    network: MonitoringNetwork,
    updates: Iterable[Update],
    record_every: int,
    result: TrackingResult,
) -> None:
    """Original engine: one ``deliver_update`` dispatch per timestep."""
    true_value = 0
    last_time = 0
    seen_any = False
    recorded_last = False
    for index, update in enumerate(updates):
        network.deliver_update(update.time, update.site, update.delta)
        true_value += update.delta
        last_time = update.time
        seen_any = True
        if index % record_every == 0:
            _record(result, network, update.time, true_value)
            recorded_last = True
        else:
            recorded_last = False
    if seen_any and not recorded_last:
        _record(result, network, last_time, true_value)


def _segment_cuts(site_array: np.ndarray, start_index: int, record_every: int):
    """Segmentation rule, owned by :func:`repro.engine.segment_cuts`.

    Imported lazily so the engine package (which builds on
    ``repro.monitoring.messages``) and this module can load in either order.
    """
    from repro.engine import segment_cuts

    return segment_cuts(site_array, start_index, record_every)


def _deliver_segments(
    network: MonitoringNetwork,
    times: np.ndarray,
    sites: np.ndarray,
    deltas: np.ndarray,
    start_index: int,
    record_every: int,
    result: TrackingResult,
    true_value: int,
    advance=None,
    deliver=None,
) -> tuple:
    """Deliver one columnar slice as contiguous same-site segments.

    The single recording loop behind both array-driven engines: the batched
    update-object engine feeds it one buffered chunk at a time, the columnar
    trace engine feeds it the whole trace.  Segments are cut at site changes
    *and* at recording points (the kernel's segmentation rule), so records
    are taken at exactly the per-update engine's timesteps; ``advance``
    hooks the asynchronous transport in at segment granularity.

    Args:
        times: Timestep column of the slice.
        sites: Destination-site column.
        deltas: Delta column.
        start_index: Global index of the slice's first update (recording
            points are global, not slice-relative).
        true_value: Exact stream value before the slice.
        advance: Optional virtual-clock hook, called with each segment's
            first timestep before the segment is delivered.
        deliver: Optional segment deliverer ``deliver(start, end)`` replacing
            the default routing through the network's ``deliver_update`` /
            ``deliver_batch`` — the tree-direct columnar engine injects its
            precomputed leaf routing here while keeping this one
            segmentation-and-recording loop, so the engines cannot drift.

    Returns:
        ``(true_value, last_time, recorded_last)`` after the slice.
    """
    running = true_value + np.cumsum(deltas)
    last_time = 0
    recorded_last = False
    start = 0
    for end in _segment_cuts(sites, start_index, record_every):
        if advance is not None:
            advance(int(times[start]))
        if deliver is not None:
            deliver(start, end)
        elif end - start == 1:
            network.deliver_update(
                int(times[start]), int(sites[start]), int(deltas[start])
            )
        else:
            network.deliver_batch(
                int(sites[start]), times[start:end], deltas[start:end]
            )
        last_time = int(times[end - 1])
        if (start_index + end - 1) % record_every == 0:
            _record(result, network, last_time, int(running[end - 1]))
            recorded_last = True
        else:
            recorded_last = False
        start = end
    return int(running[-1]), last_time, recorded_last


def _run_batched(
    network: MonitoringNetwork,
    updates: Iterable[Update],
    record_every: int,
    result: TrackingResult,
    advance=None,
) -> None:
    """Batched engine: contiguous same-site runs go through ``deliver_batch``.

    Buffers the update iterable one bounded chunk at a time, converts each
    chunk to columns and routes it through :func:`_deliver_segments` — the
    same recording logic the columnar trace engine uses, so the two cannot
    drift.  ``advance`` hooks in the asynchronous engine: when given, it is
    called with the first timestep of every segment before the segment is
    delivered, letting a virtual-clock transport deliver in-flight messages
    at segment granularity (see
    :func:`repro.asynchrony.runner.run_tracking_async`).
    """
    iterator = iter(updates)
    true_value = 0
    index = 0  # global index of the first update in the current chunk
    last_time = 0
    seen_any = False
    recorded_last = False
    while True:
        chunk = list(islice(iterator, _CHUNK_SIZE))
        if not chunk:
            break
        seen_any = True
        length = len(chunk)
        times = np.fromiter((u.time for u in chunk), dtype=np.int64, count=length)
        sites = np.fromiter((u.site for u in chunk), dtype=np.int64, count=length)
        deltas = np.fromiter((u.delta for u in chunk), dtype=np.int64, count=length)
        true_value, last_time, recorded_last = _deliver_segments(
            network,
            times,
            sites,
            deltas,
            index,
            record_every,
            result,
            true_value,
            advance=advance,
        )
        index += length
    if seen_any and not recorded_last:
        _record(result, network, last_time, true_value)


def run_tracking(
    network: MonitoringNetwork,
    updates: Iterable[Update],
    record_every: int = 1,
    batched: Optional[bool] = None,
) -> TrackingResult:
    """Run a distributed stream through a network and collect per-step records.

    Args:
        network: The wired coordinator/site network to drive.
        updates: The distributed stream, one update per timestep, in time
            order.  Any iterable works — lists, generators, lazy readers —
            and is consumed exactly once without ever calling ``len()``.
        record_every: Record an :class:`EstimateRecord` only every this many
            timesteps (the exact value and estimate are still checked at every
            recorded step).  Use values > 1 to keep memory small on very long
            streams; error statistics then refer to the recorded steps only.
            The final timestep is always recorded.
        batched: Select the delivery engine.  ``True`` forces the batched
            fast path, ``False`` forces per-update dispatch, and ``None``
            (the default) picks batching exactly when ``record_every > 1``
            (with ``record_every == 1`` every update is followed by a record,
            so there is nothing to batch).  Both engines produce identical
            estimates, message counts and bit counts.

    Returns:
        A :class:`TrackingResult` with per-step records and total costs.
    """
    if record_every < 1:
        raise ValueError(f"record_every must be >= 1, got {record_every}")
    if not network.channel.is_synchronous:
        raise ProtocolError(
            "run_tracking drives synchronous channels only; this network is "
            "wired over an asynchronous channel — use "
            "repro.asynchrony.run_tracking_async, which advances the virtual "
            "clock and drains in-flight messages"
        )
    use_batch = batched if batched is not None else record_every > 1
    result = TrackingResult()
    if use_batch:
        _run_batched(network, updates, record_every, result)
    else:
        _run_per_update(network, updates, record_every, result)
    final_stats = network.stats
    result.total_messages = final_stats.messages
    result.total_bits = final_stats.bits
    result.messages_by_kind = dict(final_stats.by_kind)
    _capture_levels(result, network)
    return result


def _validate_columns(times, sites, deltas, record_every, engine_name):
    """Shared argument validation for the columnar engines."""
    if record_every < 1:
        raise ValueError(f"record_every must be >= 1, got {record_every}")
    times = np.asarray(times, dtype=np.int64)
    sites = np.asarray(sites, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.int64)
    if times.ndim != 1 or times.shape != sites.shape or times.shape != deltas.shape:
        raise ProtocolError(
            f"{engine_name} needs equal-length 1-D times/sites/deltas, got "
            f"shapes {times.shape}/{sites.shape}/{deltas.shape}"
        )
    return times, sites, deltas


def run_tracking_arrays(
    network: MonitoringNetwork,
    times,
    sites,
    deltas,
    record_every: int = 1,
) -> TrackingResult:
    """Columnar engine: drive a network from ``times``/``sites``/``deltas`` arrays.

    The array-native counterpart of :func:`run_tracking` for replayed traces
    (see :func:`repro.streams.io.load_trace_columns`): contiguous same-site
    runs are cut directly out of the arrays and fed to
    :meth:`~repro.monitoring.network.MonitoringNetwork.deliver_batch`, so no
    per-:class:`~repro.types.Update` objects are ever constructed.  Runs are
    split at recording points exactly like the batched engine, and the result
    is bit-for-bit identical — estimates, message counts, bit counts — to
    ``run_tracking`` over the equivalent update sequence
    (``tests/test_columnar_runner.py``).

    Args:
        network: The wired network to drive (flat or sharded).
        times: 1-D integer array of update timesteps, in order.
        sites: Matching array of destination site ids.
        deltas: Matching array of per-timestep changes.
        record_every: Recording stride, as in :func:`run_tracking`; the final
            timestep is always recorded.

    Returns:
        A :class:`TrackingResult` with per-step records and total costs.
    """
    if not network.channel.is_synchronous:
        raise ProtocolError(
            "run_tracking_arrays drives synchronous channels only; use "
            "repro.asynchrony.run_tracking_async for latency-aware transports"
        )
    times, sites, deltas = _validate_columns(
        times, sites, deltas, record_every, "columnar tracking"
    )
    result = TrackingResult()
    # A zero-length trace mirrors run_tracking on an empty iterable: no
    # records, but the totals below are still populated from the (quiet)
    # channel, so downstream summary() consumers see a complete result.
    if times.size:
        true_value, last_time, recorded_last = _deliver_segments(
            network, times, sites, deltas, 0, record_every, result, 0
        )
        if not recorded_last:
            _record(result, network, last_time, true_value)
    final_stats = network.stats
    result.total_messages = final_stats.messages
    result.total_bits = final_stats.bits
    result.messages_by_kind = dict(final_stats.by_kind)
    _capture_levels(result, network)
    return result


def run_tracking_tree_arrays(
    network,
    times,
    sites,
    deltas,
    record_every: int = 1,
) -> TrackingResult:
    """Tree-direct columnar engine: route each segment straight to its leaf.

    :func:`run_tracking_arrays` over a hierarchical network pays a
    ``_locate`` descent through every tree level per segment, and routing a
    whole trace through the top of a lazily built million-site tree touches
    machinery proportional to the tree, not to the data.  This engine
    precomputes the composite global-to-leaf map once
    (:func:`repro.monitoring.tree.leaf_routing`), then drives each contiguous
    same-site segment directly into its owning leaf's flat network — the span
    kernel runs per leaf — followed by the exact estimate-push sweep the
    nested delivery would have performed (leaf wrapper first, then each
    aggregated ancestor).  Leaves that the trace never touches are never
    materialised.

    The segmentation-and-recording loop is shared with the other columnar
    engines (:func:`_deliver_segments` with an injected deliverer), so the
    result is bit-for-bit identical — estimates, message counts, bit counts,
    per-kind breakdowns — to :func:`run_tracking_arrays` and
    :func:`run_tracking` over the equivalent update sequence
    (``tests/test_columnar_runner.py``).

    Args:
        network: A :class:`~repro.monitoring.sharding.ShardedNetwork` (any
            depth).  A flat network falls back to
            :func:`run_tracking_arrays` — there is no leaf structure to
            exploit.
        times: 1-D integer array of update timesteps, in order.
        sites: Matching array of destination site ids.
        deltas: Matching array of per-timestep changes.
        record_every: Recording stride, as in :func:`run_tracking`; the final
            timestep is always recorded.

    Returns:
        A :class:`TrackingResult` with per-step records and total costs.
    """
    from repro.monitoring.sharding import ShardedNetwork
    from repro.monitoring.tree import _wrapper_chain, leaf_routing

    if not isinstance(network, ShardedNetwork):
        return run_tracking_arrays(network, times, sites, deltas, record_every)
    if not network.channel.is_synchronous:
        raise ProtocolError(
            "run_tracking_tree_arrays drives synchronous channels only; use "
            "repro.asynchrony.run_tracking_async for latency-aware transports"
        )
    times, sites, deltas = _validate_columns(
        times, sites, deltas, record_every, "tree-direct columnar tracking"
    )
    num_sites = network.num_sites
    if sites.size:
        out_of_range = (sites < 0) | (sites >= num_sites)
        if out_of_range.any():
            bad = int(sites[out_of_range][0])
            raise ProtocolError(
                f"update destined for site {bad}, but network has "
                f"{num_sites} sites"
            )
    leaf_of, local_of = leaf_routing(network)
    leaves = network.leaves()
    # Per leaf: the *bound* push methods of the wrappers whose push the
    # nested delivery would trigger, innermost first (an un-aggregated
    # level — root_network None — pushes nothing, exactly as in
    # ShardedNetwork.deliver_batch).
    push_chains = [
        tuple(
            wrapper.push_estimate
            for wrapper in _wrapper_chain(leaf)
            if wrapper.parent_network.root_network is not None
        )
        for leaf in leaves
    ]
    at_top = network.wrapper is None
    # One vectorised group-by pass replaces the per-segment routing lookups:
    # segment boundaries come from the shared segmentation rule (the same
    # cuts ``_deliver_segments`` will walk, so the two stay aligned by
    # construction), and each segment's destination leaf, local site id and
    # closing timestep are gathered up front — at high leaf-touch rates the
    # per-segment ``int(...)`` conversions and routing-table probes used to
    # rival the kernel work itself.
    from repro.engine import segment_cuts

    seg_ends = np.asarray(
        segment_cuts(sites, 0, record_every) if sites.size else [],
        dtype=np.int64,
    )
    seg_starts = np.concatenate(([0], seg_ends[:-1])) if seg_ends.size else seg_ends
    seg_sites = sites[seg_starts] if seg_ends.size else seg_ends
    seg_leaves = leaf_of[seg_sites].tolist()
    seg_locals = local_of[seg_sites].tolist()
    seg_last_times = (
        times[seg_ends - 1].tolist() if seg_ends.size else []
    )
    if at_top and seg_ends.size:
        # The per-site replay tallies are pure functions of the trace, so
        # they are folded in one ``np.unique`` + scatter-add pass instead of
        # two dict updates per segment; nothing reads them mid-replay.
        prefix = np.cumsum(deltas)
        seg_totals = prefix[seg_ends - 1] - prefix[seg_starts] + deltas[seg_starts]
        unique_sites, inverse = np.unique(seg_sites, return_inverse=True)
        value_sums = np.zeros(unique_sites.size, dtype=np.int64)
        count_sums = np.zeros(unique_sites.size, dtype=np.int64)
        np.add.at(value_sums, inverse, seg_totals)
        np.add.at(count_sums, inverse, seg_ends - seg_starts)
        site_values = network._site_values
        site_counts = network._site_counts
        for site_id, value, count in zip(
            unique_sites.tolist(), value_sums.tolist(), count_sums.tolist()
        ):
            site_values[site_id] += value
            site_counts[site_id] += count
    # Materialised leaf networks and their site lists, resolved on first
    # touch: ``leaf.network`` on a lazy leaf routes every attribute through
    # ``__getattr__`` until materialisation, and even a real network's
    # ``deliver_batch`` re-validates bounds per call — both are loop
    # invariants after the first segment into a leaf.
    leaf_networks = [None] * len(leaves)
    leaf_sites = [None] * len(leaves)
    cursor = [0]

    def deliver(start: int, end: int) -> None:
        index = cursor[0]
        cursor[0] = index + 1
        leaf_index = seg_leaves[index]
        members = leaf_sites[leaf_index]
        if members is None:
            real = leaves[leaf_index].network
            materialize = getattr(real, "materialize", None)
            if materialize is not None:
                real = materialize()
            leaf_networks[leaf_index] = real
            members = leaf_sites[leaf_index] = real.sites
        site = members[seg_locals[index]]
        if end - start == 1:
            site.receive_update(times[start].item(), deltas[start].item())
        else:
            site.receive_batch(
                times[start:end], deltas[start:end],
                network=leaf_networks[leaf_index],
            )
        last_time = seg_last_times[index]
        for push in push_chains[leaf_index]:
            push(last_time)

    result = TrackingResult()
    if times.size:
        true_value, last_time, recorded_last = _deliver_segments(
            network,
            times,
            sites,
            deltas,
            0,
            record_every,
            result,
            0,
            deliver=deliver,
        )
        if not recorded_last:
            _record(result, network, last_time, true_value)
    final_stats = network.stats
    result.total_messages = final_stats.messages
    result.total_bits = final_stats.bits
    result.messages_by_kind = dict(final_stats.by_kind)
    _capture_levels(result, network)
    return result
