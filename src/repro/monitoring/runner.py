"""Simulation runner: drive a distributed stream through a tracking algorithm.

The runner is the integration point used by the tests, examples and
benchmarks.  It feeds updates to the network one timestep at a time,
maintains the exact value ``f(t)`` alongside, records the coordinator's
estimate and the cumulative communication cost after every step, and finally
summarises error and cost statistics in a :class:`TrackingResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.monitoring.history import EstimateHistory
from repro.monitoring.network import MonitoringNetwork
from repro.types import EstimateRecord, Update

__all__ = ["TrackingResult", "run_tracking"]


@dataclass
class TrackingResult:
    """Outcome of running one tracking algorithm over one distributed stream.

    Attributes:
        records: One :class:`EstimateRecord` per timestep.
        total_messages: Total messages charged by the channel.
        total_bits: Total bits charged by the channel.
        messages_by_kind: Message counts broken down by protocol role.
        history: The coordinator's estimate history (for tracing queries).
    """

    records: List[EstimateRecord] = field(default_factory=list)
    total_messages: int = 0
    total_bits: int = 0
    messages_by_kind: dict = field(default_factory=dict)
    history: EstimateHistory = field(default_factory=EstimateHistory)

    @property
    def length(self) -> int:
        """Number of timesteps in the run."""
        return len(self.records)

    def max_relative_error(self) -> float:
        """Largest relative error over the run (errors at ``f = 0`` count as
        0 if the estimate is also ~0, else as infinity)."""
        worst = 0.0
        for record in self.records:
            if record.true_value == 0:
                if record.absolute_error > 1e-9:
                    return float("inf")
                continue
            worst = max(worst, record.absolute_error / abs(record.true_value))
        return worst

    def error_violations(self, epsilon: float) -> int:
        """Number of timesteps at which the estimate breaks the eps guarantee."""
        return sum(
            1 for record in self.records if not record.within_relative_error(epsilon)
        )

    def violation_fraction(self, epsilon: float) -> float:
        """Fraction of timesteps violating the eps guarantee."""
        if not self.records:
            return 0.0
        return self.error_violations(epsilon) / len(self.records)


def run_tracking(
    network: MonitoringNetwork,
    updates: Sequence[Update],
    record_every: int = 1,
) -> TrackingResult:
    """Run a distributed stream through a network and collect per-step records.

    Args:
        network: The wired coordinator/site network to drive.
        updates: The distributed stream, one update per timestep, in time order.
        record_every: Record an :class:`EstimateRecord` only every this many
            timesteps (the exact value and estimate are still checked at every
            recorded step).  Use values > 1 to keep memory small on very long
            streams; error statistics then refer to the recorded steps only.

    Returns:
        A :class:`TrackingResult` with per-step records and total costs.
    """
    if record_every < 1:
        raise ValueError(f"record_every must be >= 1, got {record_every}")
    result = TrackingResult()
    true_value = 0
    for index, update in enumerate(updates):
        network.deliver_update(update.time, update.site, update.delta)
        true_value += update.delta
        if index % record_every == 0 or index == len(updates) - 1:
            stats = network.stats
            estimate = network.estimate()
            result.records.append(
                EstimateRecord(
                    time=update.time,
                    true_value=true_value,
                    estimate=estimate,
                    messages=stats.messages,
                    bits=stats.bits,
                )
            )
            result.history.record(update.time, estimate)
    final_stats = network.stats
    result.total_messages = final_stats.messages
    result.total_bits = final_stats.bits
    result.messages_by_kind = dict(final_stats.by_kind)
    return result
