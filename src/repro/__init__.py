"""repro — a reproduction of "Variability in Data Streams" (Felber & Ostrovsky, PODS 2016).

The library implements the paper's variability framework for continuous
distributed tracking of non-monotonic integer streams:

* the **variability** parameter ``v(n)`` and its bounds for natural stream
  classes (:mod:`repro.core.variability`, :mod:`repro.analysis.bounds`);
* the **deterministic** and **randomized** distributed counters of Section 3
  built on a block partition of time (:mod:`repro.core`);
* **item-frequency tracking** and **single-site aggregate tracking**
  extensions (Appendices H and I);
* the **lower-bound constructions** and the tracing-problem reduction of
  Section 4 (:mod:`repro.lowerbounds`);
* the monitoring substrate, stream generators, sketches and baseline
  algorithms everything above runs on.

Quickstart::

    from repro import DeterministicCounter, random_walk_stream, assign_sites

    stream = random_walk_stream(100_000, seed=1)
    updates = assign_sites(stream, num_sites=8)
    result = DeterministicCounter(num_sites=8, epsilon=0.05).track(updates)
    print(result.total_messages, result.max_relative_error())
"""

from repro.baselines import (
    CormodeCounter,
    HuangCounter,
    LiuStyleCounter,
    NaiveCounter,
    StaticThresholdCounter,
)
from repro.core import (
    Block,
    BlockPartitioner,
    DeterministicCounter,
    FrequencyTracker,
    RandomizedCounter,
    SingleSiteTracker,
    VariabilityTracker,
    expand_stream,
    expand_update,
    f1_variability,
    run_single_site,
    variability,
    variability_increments,
)
from repro.core.history_quantiles import HistoricalQuantileTracker, ValueUpdate
from repro.core.threshold import ThresholdMonitor
from repro.sketches.gk_quantile import GKQuantileSummary
from repro.core.frequencies import (
    CRPrecisReducer,
    HashReducer,
    IdentityReducer,
    run_frequency_tracking,
)
from repro.exceptions import (
    ConfigurationError,
    ProtocolError,
    QueryError,
    ReproError,
    StreamError,
)
from repro.lowerbounds import (
    DeterministicFlipFamily,
    IndexReduction,
    OverlapChain,
    RandomizedFlipFamily,
    TranscriptTracer,
)
from repro.asynchrony import (
    AsyncChannel,
    AsyncTrackingResult,
    ConstantLatency,
    HeavyTailLatency,
    UniformLatency,
    build_async_network,
    build_sharded_async_network,
    run_tracking_async,
)
from repro.api import (
    BuiltRun,
    RunSpec,
    SourceSpec,
    Sweep,
    SweepError,
    SweepPoint,
    TopologySpec,
    TrackerSpec,
    TransportSpec,
)
from repro.monitoring import (
    MonitoringNetwork,
    ShardedNetwork,
    TrackingResult,
    build_sharded_network,
    run_tracking,
    run_tracking_arrays,
    run_tracking_tree_arrays,
)
from repro.sketches import AmsF2Sketch, CountMinSketch, CRPrecis
from repro.streams import (
    assign_sites,
    biased_walk_stream,
    database_size_trace,
    monotone_stream,
    nearly_monotone_stream,
    random_walk_stream,
    sawtooth_stream,
    zipfian_item_stream,
)
from repro.streams.model import StreamSpec
from repro.types import EstimateRecord, ItemUpdate, Update

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "QueryError",
    "StreamError",
    # types
    "Update",
    "ItemUpdate",
    "EstimateRecord",
    "StreamSpec",
    # unified experiment API
    "RunSpec",
    "BuiltRun",
    "SourceSpec",
    "TrackerSpec",
    "TopologySpec",
    "TransportSpec",
    "Sweep",
    "SweepError",
    "SweepPoint",
    # core
    "variability",
    "variability_increments",
    "f1_variability",
    "VariabilityTracker",
    "Block",
    "BlockPartitioner",
    "DeterministicCounter",
    "RandomizedCounter",
    "SingleSiteTracker",
    "run_single_site",
    "FrequencyTracker",
    "run_frequency_tracking",
    "IdentityReducer",
    "HashReducer",
    "CRPrecisReducer",
    "expand_stream",
    "expand_update",
    "HistoricalQuantileTracker",
    "ValueUpdate",
    "ThresholdMonitor",
    # monitoring
    "MonitoringNetwork",
    "ShardedNetwork",
    "TrackingResult",
    "build_sharded_network",
    "run_tracking",
    "run_tracking_arrays",
    "run_tracking_tree_arrays",
    "build_sharded_async_network",
    # asynchrony
    "AsyncChannel",
    "AsyncTrackingResult",
    "ConstantLatency",
    "UniformLatency",
    "HeavyTailLatency",
    "build_async_network",
    "run_tracking_async",
    # streams
    "assign_sites",
    "monotone_stream",
    "nearly_monotone_stream",
    "random_walk_stream",
    "biased_walk_stream",
    "sawtooth_stream",
    "database_size_trace",
    "zipfian_item_stream",
    # sketches
    "AmsF2Sketch",
    "CountMinSketch",
    "CRPrecis",
    "GKQuantileSummary",
    # baselines
    "NaiveCounter",
    "CormodeCounter",
    "HuangCounter",
    "LiuStyleCounter",
    "StaticThresholdCounter",
    # lower bounds
    "DeterministicFlipFamily",
    "RandomizedFlipFamily",
    "OverlapChain",
    "TranscriptTracer",
    "IndexReduction",
]
