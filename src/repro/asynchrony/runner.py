"""Event-driven runner: interleave stream updates with delayed deliveries.

:func:`run_tracking_async` is the asynchronous counterpart of
:func:`repro.monitoring.runner.run_tracking`.  Both consume any iterable of
updates in time order and record the coordinator's estimate against the exact
value at a configurable stride; the difference is the clock.  The
asynchronous runner drives the channel's *virtual* clock: before the update
at timestep ``t`` is handed to its site, every in-flight message due at or
before ``t`` is delivered (in deterministic ``(due, send order)`` order), so
protocol reactions and stream progress interleave exactly as they would on a
network where delivery takes time.  After the last update the channel is
drained, letting the coordinator settle on its final estimate.

Under the zero-latency model every message is delivered inline at its send
instant, the event queue stays empty, and the run is bit-for-bit identical —
estimates, message counts, bit counts, transcript order — to the synchronous
engine (``tests/test_async_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.staleness import StalenessSummary, summarize_staleness
from repro.asynchrony.channel import AsyncChannel
from repro.asynchrony.latency import ZERO_LATENCY, LatencyModel
from repro.exceptions import ProtocolError
from repro.faults.channel import FaultPlan, FaultyChannel
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.runner import (
    TrackingResult,
    _capture_levels,
    _record,
    _run_batched,
)
from repro.monitoring.sharding import (
    ShardedNetwork,
    ShardingPolicy,
    build_sharded_network,
)
from repro.monitoring.tree import build_tree_network, resolve_fanouts
from repro.types import Update

__all__ = [
    "AsyncTrackingResult",
    "run_tracking_async",
    "build_async_network",
    "build_sharded_async_network",
    "build_tree_async_network",
]


@dataclass
class AsyncTrackingResult(TrackingResult):
    """A :class:`TrackingResult` plus the asynchronous run's staleness signals.

    Attributes:
        staleness: Message-age, in-flight and reordering aggregates.
        final_clock: Virtual time at which the last in-flight message landed.
        final_estimate: The coordinator's estimate after the drain — with
            zero latency this equals the last record's estimate; with real
            latency it shows where the estimate *settles* once the backlog
            clears.
        final_true_value: The exact ``f(n)`` at end of stream.
        dropped: Transmission attempts the fault plan lost on the wire.
        retransmitted: Timeout-triggered re-sends (all charged in
            ``total_messages``/``total_bits``); after a full drain this
            equals ``dropped + duplicates``.
        duplicates: Arrivals suppressed by receiver-side dedup.
    """

    staleness: StalenessSummary = field(default_factory=StalenessSummary)
    final_clock: float = 0.0
    final_estimate: float = 0.0
    final_true_value: int = 0
    dropped: int = 0
    retransmitted: int = 0
    duplicates: int = 0

    def settled_error(self) -> float:
        """Absolute estimate error after every in-flight message landed."""
        return abs(self.final_true_value - self.final_estimate)

    def _elapsed_clock(self) -> float:
        """The transport's drained clock, which runs past the last record."""
        return max(self.final_clock, super()._elapsed_clock())

    def summary(self, epsilon=None) -> dict:
        """The synchronous summary plus the asynchronous run's signals.

        Extends :meth:`TrackingResult.summary` with the staleness
        aggregates, the final virtual clock and the settled estimate, so
        JSON consumers of ``repro run --config`` see the transport axis in
        the same document.  (``to_dict`` picks this up automatically.)
        """
        data = super().summary(epsilon)
        data["staleness"] = {
            "delivered": self.staleness.delivered,
            "mean_age": self.staleness.mean_age,
            "max_age": self.staleness.max_age,
            "p95_age": self.staleness.p95_age,
            "inflight_highwater": self.staleness.inflight_highwater,
            "reordered": self.staleness.reordered,
        }
        data["final_clock"] = self.final_clock
        data["final_estimate"] = self.final_estimate
        data["final_true_value"] = self.final_true_value
        data["settled_error"] = self.settled_error()
        data["reliability"] = {
            "dropped": self.dropped,
            "retransmitted": self.retransmitted,
            "duplicates": self.duplicates,
        }
        return data


def _make_async_channel(
    num_ports: int,
    latency: LatencyModel,
    seed: Optional[int],
    preserve_order: bool,
    faults: Optional[FaultPlan],
    fault_seed: Optional[int],
) -> AsyncChannel:
    """One node's channel: plain, or fault-injecting when a plan is given.

    The plan is re-seeded per node with ``fault_seed`` (derived by the
    topology builders exactly like the latency seeds), and each channel
    builds its own loss-model instance, so per-link burst state never leaks
    between nodes.
    """
    if faults is None:
        return AsyncChannel(
            num_ports, latency=latency, seed=seed, preserve_order=preserve_order
        )
    return FaultyChannel(
        num_ports,
        latency=latency,
        seed=seed,
        preserve_order=preserve_order,
        plan=faults.with_seed(fault_seed),
    )


def build_async_network(
    factory,
    latency: LatencyModel = ZERO_LATENCY,
    seed: Optional[int] = 0,
    preserve_order: bool = True,
    faults: Optional[FaultPlan] = None,
) -> MonitoringNetwork:
    """Wire a tracker factory's coordinator and sites over an async channel.

    Works with any factory exposing ``build_network()`` (the Section 3
    trackers and every baseline), so existing algorithms run unmodified over
    the asynchronous transport: the factory builds its usual actors, and this
    helper re-wires them onto a fresh :class:`AsyncChannel`.

    Args:
        factory: Tracker factory (e.g. ``DeterministicCounter(k, eps)``).
        latency: Delivery-latency model for the channel.
        seed: Seed for the channel's latency RNG.
        preserve_order: Per-link FIFO (default) versus reordering allowed.
        faults: Optional :class:`~repro.faults.channel.FaultPlan`; when given
            the channel is a fault-injecting
            :class:`~repro.faults.channel.FaultyChannel` (a zero-loss plan is
            inert, i.e. bit-for-bit this builder's plain channel).

    Returns:
        A :class:`MonitoringNetwork` whose channel is the async transport.
    """
    base = factory.build_network()
    channel = _make_async_channel(
        base.num_sites,
        latency,
        seed,
        preserve_order,
        faults,
        None if faults is None else faults.seed,
    )
    return MonitoringNetwork(base.coordinator, base.sites, channel=channel)


def build_sharded_async_network(
    factory,
    num_shards: int,
    latency: LatencyModel = ZERO_LATENCY,
    root_latency: Optional[LatencyModel] = None,
    seed: Optional[int] = 0,
    preserve_order: bool = True,
    sharding: Optional[ShardingPolicy] = None,
    faults: Optional[FaultPlan] = None,
) -> ShardedNetwork:
    """Wire a sharded hierarchy whose both levels are latency-aware.

    Every shard's site-to-coordinator channel and the shard-to-root channel
    become :class:`AsyncChannel` instances, so a shard estimate crosses *two*
    latency legs before the root sees it: site to shard coordinator, then
    shard to root.  Each channel draws from its own deterministic RNG (shard
    ``s`` from ``seed + 1 + s``, the root from ``seed``), so runs reproduce
    exactly.  With zero latency at both levels the run is bit-for-bit the
    synchronous sharded engine.

    Args:
        factory: Flat tracker factory exposing ``num_sites``/``shard_factory``.
        num_shards: Number of shards (1 = flat topology, no root leg).
        latency: Latency model for the shard-local (site-to-coordinator) legs.
        root_latency: Latency model for the shard-to-root leg; defaults to
            the shard-local model.
        seed: Base seed for the channels' latency RNGs.
        preserve_order: Per-link FIFO (default) versus reordering allowed.

    Returns:
        A :class:`~repro.monitoring.sharding.ShardedNetwork` over async
        channels, ready for :func:`run_tracking_async`.
    """
    chosen_root_latency = latency if root_latency is None else root_latency

    fault_base = None if faults is None else faults.seed

    def local_channel(shard_id: int, group_size: int) -> AsyncChannel:
        # A single shard has no root leg, and its channel must draw exactly
        # the same latency sequence as build_async_network's — that is what
        # keeps shards=1 bit-for-bit the flat async engine under jitter.
        # Loss seeds mirror the latency-seed scheme.
        if num_shards == 1:
            local_seed, fault_seed = seed, fault_base
        else:
            local_seed = None if seed is None else seed + 1 + shard_id
            fault_seed = None if fault_base is None else fault_base + 1 + shard_id
        return _make_async_channel(
            group_size, latency, local_seed, preserve_order, faults, fault_seed
        )

    def root_channel(shard_count: int) -> AsyncChannel:
        return _make_async_channel(
            shard_count,
            chosen_root_latency,
            seed,
            preserve_order,
            faults,
            fault_base,
        )

    return build_sharded_network(
        factory,
        num_shards,
        sharding=sharding,
        local_channel_factory=local_channel,
        root_channel_factory=root_channel,
    )


def build_tree_async_network(
    factory,
    levels: Optional[int] = None,
    fanout: Optional[int] = None,
    fanouts=None,
    latency: LatencyModel = ZERO_LATENCY,
    root_latency: Optional[LatencyModel] = None,
    seed: Optional[int] = 0,
    preserve_order: bool = True,
    sharding: Optional[ShardingPolicy] = None,
    epsilon_split="leaf",
    split_ratio: float = 0.5,
    broadcast_deadband: float = 0.0,
    faults: Optional[FaultPlan] = None,
):
    """Wire an L-level monitoring tree whose every level is latency-aware.

    The asynchronous counterpart of
    :func:`repro.monitoring.tree.build_tree_network`: each node — every leaf
    shard and every aggregator — gets its own :class:`AsyncChannel`, so an
    estimate originating at a site crosses ``levels`` latency legs before the
    root sees it.  Channel RNG seeds are derived breadth-first from the
    node's ``(level, position)``: the root draws from ``seed``, the node at
    position ``p`` of level ``l`` from ``seed + offset(l) + p`` where
    ``offset`` counts all nodes above.  For a two-level tree that is exactly
    the legacy :func:`build_sharded_async_network` assignment (root =
    ``seed``, shard ``s`` = ``seed + 1 + s``), so the tree generalisation is
    seed-compatible with the existing async hierarchy, and with zero latency
    everywhere the run is bit-for-bit the synchronous tree.

    Args:
        factory: Flat tracker factory exposing ``num_sites``/``shard_factory``.
        levels: Total coordinator levels (1 = flat; give ``fanout`` too).
        fanout: Uniform per-level fan-out (with ``levels``).
        fanouts: Explicit per-level fan-outs, top-down (overrides ``fanout``).
        latency: Latency model for the leaf (site-to-shard) legs.
        root_latency: Latency model for every aggregation leg; defaults to
            the leaf model.
        seed: Base seed for the channels' latency RNGs.
        preserve_order: Per-link FIFO (default) versus reordering allowed.
        sharding: Partition policy applied at every split.
        epsilon_split: Per-level error-budget policy (name or instance).
        split_ratio: Ratio for the named ``"geometric"`` policy.
        broadcast_deadband: Relative deadband on downward level re-broadcasts.

    Returns:
        A tree :class:`~repro.monitoring.sharding.ShardedNetwork` over async
        channels (or a flat async network for one level), ready for
        :func:`run_tracking_async`.
    """
    resolved = resolve_fanouts(levels=levels, fanout=fanout, fanouts=fanouts)
    chosen_root_latency = latency if root_latency is None else root_latency
    # Breadth-first node counts per level: 1 root, then products of fan-outs.
    sizes = [1]
    for fan in resolved:
        sizes.append(sizes[-1] * fan)
    offsets = [sum(sizes[:level]) for level in range(len(sizes))]
    leaf_level = len(resolved)

    fault_base = None if faults is None else faults.seed

    def channel_factory(level: int, position: int, num_ports: int) -> AsyncChannel:
        node_seed = None if seed is None else seed + offsets[level] + position
        fault_seed = (
            None if fault_base is None else fault_base + offsets[level] + position
        )
        node_latency = latency if level == leaf_level else chosen_root_latency
        return _make_async_channel(
            num_ports, node_latency, node_seed, preserve_order, faults, fault_seed
        )

    return build_tree_network(
        factory,
        fanouts=resolved,
        sharding=sharding,
        epsilon_split=epsilon_split,
        split_ratio=split_ratio,
        broadcast_deadband=broadcast_deadband,
        channel_factory=channel_factory,
    )


def run_tracking_async(
    network: MonitoringNetwork,
    updates: Iterable[Update],
    record_every: int = 1,
    drain: bool = True,
    batched: bool = False,
) -> AsyncTrackingResult:
    """Run a distributed stream over the asynchronous transport.

    Args:
        network: A network wired over an :class:`AsyncChannel` (see
            :func:`build_async_network`), or a
            :class:`~repro.monitoring.sharding.ShardedNetwork` whose shard
            and root channels are all asynchronous (see
            :func:`build_sharded_async_network`) — there the shard-to-root
            hop is scheduled as a second latency leg after the site-to-shard
            one.
        updates: The distributed stream, one update per timestep, in time
            order; any iterable works and is consumed exactly once.
        record_every: Record an estimate-vs-truth point every this many
            timesteps (the final timestep is always recorded).  Records taken
            while messages are in flight show the *stale* estimate — that is
            the instrumentation this runner exists for.
        drain: Deliver all remaining in-flight messages after the stream
            ends (default).  Disable to inspect the undelivered backlog on
            the channel instead.
        batched: Opt into the bulk span engine: contiguous same-site runs
            are segmented by the span kernel (exactly like the synchronous
            batched engine) and each trigger-free span's count reports fly
            as *one* prepaid in-flight event instead of one per message
            (:meth:`AsyncChannel.send_prepaid_to_coordinator`), with
            in-flight deliveries advanced at segment boundaries.  With zero
            latency this is bit-for-bit the synchronous engine (the
            existing equivalence contract); with real latency it models
            delivery timing at span granularity — the transport-level
            batching any real uplink performs — which is what lets latency
            sweeps reach 10^7-update streams.  The default stays
            per-update, the exact per-message transport model.

    Returns:
        An :class:`AsyncTrackingResult` with per-step records, total costs
        and staleness aggregates.
    """
    channel = network.channel
    if isinstance(network, ShardedNetwork):
        # Sharded hierarchy: the network advances every shard clock, pushes
        # fresh estimates onto the root channel (the second latency leg) and
        # advances the root — see ShardedNetwork.advance_to.  All underlying
        # channels must be latency-aware.
        if not all(isinstance(ch, AsyncChannel) for ch in channel.channels):
            raise ProtocolError(
                "run_tracking_async needs every shard channel and the root "
                "channel to be asynchronous; build the network with "
                "repro.asynchrony.build_sharded_async_network (use "
                "run_tracking for synchronous channels)"
            )
        advance = network.advance_to
        drain_all = network.drain
    elif isinstance(channel, AsyncChannel):
        advance = channel.advance_to
        drain_all = channel.drain
    else:
        raise ProtocolError(
            "run_tracking_async needs a network wired over an AsyncChannel; "
            "build one with repro.asynchrony.build_async_network (use "
            "run_tracking for synchronous channels)"
        )
    if record_every < 1:
        raise ValueError(f"record_every must be >= 1, got {record_every}")
    result = AsyncTrackingResult()
    true_value = 0
    if batched:
        # The synchronous batched loop, with the virtual clock advanced to
        # each segment's first timestep before the segment is delivered.
        _run_batched(network, updates, record_every, result, advance=advance)
        if result.records:
            true_value = result.records[-1].true_value
    else:
        last_time = 0
        seen_any = False
        recorded_last = False
        for index, update in enumerate(updates):
            advance(update.time)
            network.deliver_update(update.time, update.site, update.delta)
            true_value += update.delta
            last_time = update.time
            seen_any = True
            if index % record_every == 0:
                _record(result, network, update.time, true_value)
                recorded_last = True
            else:
                recorded_last = False
        if seen_any and not recorded_last:
            _record(result, network, last_time, true_value)
    if drain:
        drain_all()
    stats = network.stats
    result.total_messages = stats.messages
    result.total_bits = stats.bits
    result.messages_by_kind = dict(stats.by_kind)
    result.staleness = summarize_staleness(channel)
    result.final_clock = channel.now
    result.final_estimate = network.estimate()
    result.final_true_value = true_value
    result.dropped = stats.dropped
    result.retransmitted = stats.retransmitted
    result.duplicates = stats.duplicates
    _capture_levels(result, network)
    return result
