"""Event-driven runner: interleave stream updates with delayed deliveries.

:func:`run_tracking_async` is the asynchronous counterpart of
:func:`repro.monitoring.runner.run_tracking`.  Both consume any iterable of
updates in time order and record the coordinator's estimate against the exact
value at a configurable stride; the difference is the clock.  The
asynchronous runner drives the channel's *virtual* clock: before the update
at timestep ``t`` is handed to its site, every in-flight message due at or
before ``t`` is delivered (in deterministic ``(due, send order)`` order), so
protocol reactions and stream progress interleave exactly as they would on a
network where delivery takes time.  After the last update the channel is
drained, letting the coordinator settle on its final estimate.

Under the zero-latency model every message is delivered inline at its send
instant, the event queue stays empty, and the run is bit-for-bit identical —
estimates, message counts, bit counts, transcript order — to the synchronous
engine (``tests/test_async_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.staleness import StalenessSummary, summarize_staleness
from repro.asynchrony.channel import AsyncChannel
from repro.asynchrony.latency import ZERO_LATENCY, LatencyModel
from repro.exceptions import ProtocolError
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.runner import TrackingResult, _record
from repro.types import Update

__all__ = ["AsyncTrackingResult", "run_tracking_async", "build_async_network"]


@dataclass
class AsyncTrackingResult(TrackingResult):
    """A :class:`TrackingResult` plus the asynchronous run's staleness signals.

    Attributes:
        staleness: Message-age, in-flight and reordering aggregates.
        final_clock: Virtual time at which the last in-flight message landed.
        final_estimate: The coordinator's estimate after the drain — with
            zero latency this equals the last record's estimate; with real
            latency it shows where the estimate *settles* once the backlog
            clears.
        final_true_value: The exact ``f(n)`` at end of stream.
    """

    staleness: StalenessSummary = field(default_factory=StalenessSummary)
    final_clock: float = 0.0
    final_estimate: float = 0.0
    final_true_value: int = 0

    def settled_error(self) -> float:
        """Absolute estimate error after every in-flight message landed."""
        return abs(self.final_true_value - self.final_estimate)


def build_async_network(
    factory,
    latency: LatencyModel = ZERO_LATENCY,
    seed: Optional[int] = 0,
    preserve_order: bool = True,
) -> MonitoringNetwork:
    """Wire a tracker factory's coordinator and sites over an async channel.

    Works with any factory exposing ``build_network()`` (the Section 3
    trackers and every baseline), so existing algorithms run unmodified over
    the asynchronous transport: the factory builds its usual actors, and this
    helper re-wires them onto a fresh :class:`AsyncChannel`.

    Args:
        factory: Tracker factory (e.g. ``DeterministicCounter(k, eps)``).
        latency: Delivery-latency model for the channel.
        seed: Seed for the channel's latency RNG.
        preserve_order: Per-link FIFO (default) versus reordering allowed.

    Returns:
        A :class:`MonitoringNetwork` whose channel is the async transport.
    """
    base = factory.build_network()
    channel = AsyncChannel(
        base.num_sites, latency=latency, seed=seed, preserve_order=preserve_order
    )
    return MonitoringNetwork(base.coordinator, base.sites, channel=channel)


def run_tracking_async(
    network: MonitoringNetwork,
    updates: Iterable[Update],
    record_every: int = 1,
    drain: bool = True,
) -> AsyncTrackingResult:
    """Run a distributed stream over the asynchronous transport.

    Args:
        network: A network wired over an :class:`AsyncChannel` (see
            :func:`build_async_network`).
        updates: The distributed stream, one update per timestep, in time
            order; any iterable works and is consumed exactly once.
        record_every: Record an estimate-vs-truth point every this many
            timesteps (the final timestep is always recorded).  Records taken
            while messages are in flight show the *stale* estimate — that is
            the instrumentation this runner exists for.
        drain: Deliver all remaining in-flight messages after the stream
            ends (default).  Disable to inspect the undelivered backlog on
            the channel instead.

    Returns:
        An :class:`AsyncTrackingResult` with per-step records, total costs
        and staleness aggregates.
    """
    channel = network.channel
    if not isinstance(channel, AsyncChannel):
        raise ProtocolError(
            "run_tracking_async needs a network wired over an AsyncChannel; "
            "build one with repro.asynchrony.build_async_network (use "
            "run_tracking for synchronous channels)"
        )
    if record_every < 1:
        raise ValueError(f"record_every must be >= 1, got {record_every}")
    result = AsyncTrackingResult()
    true_value = 0
    last_time = 0
    seen_any = False
    recorded_last = False
    for index, update in enumerate(updates):
        channel.advance_to(update.time)
        network.deliver_update(update.time, update.site, update.delta)
        true_value += update.delta
        last_time = update.time
        seen_any = True
        if index % record_every == 0:
            _record(result, network, update.time, true_value)
            recorded_last = True
        else:
            recorded_last = False
    if seen_any and not recorded_last:
        _record(result, network, last_time, true_value)
    if drain:
        channel.drain()
    stats = network.stats
    result.total_messages = stats.messages
    result.total_bits = stats.bits
    result.messages_by_kind = dict(stats.by_kind)
    result.staleness = summarize_staleness(channel)
    result.final_clock = channel.now
    result.final_estimate = network.estimate()
    result.final_true_value = true_value
    return result
