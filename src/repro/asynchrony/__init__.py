"""Discrete-event asynchronous transport for the monitoring substrate.

The paper's model delivers every site-to-coordinator message synchronously
and instantly.  This package asks what happens when delivery takes time: a
deterministic discrete-event scheduler (:mod:`repro.asynchrony.events`),
pluggable latency models (:mod:`repro.asynchrony.latency`), a latency-aware
:class:`AsyncChannel` that conforms to the synchronous channel's counting
contract while holding messages in flight (:mod:`repro.asynchrony.channel`),
and an event-driven runner that interleaves stream updates with deliveries
on a virtual clock (:mod:`repro.asynchrony.runner`).

Existing algorithms — the Section 3 trackers and every baseline — run
unmodified over this transport via :func:`build_async_network`; the
coordinator close protocols complete when the last (possibly delayed) reply
lands, which over a synchronous channel degenerates to exactly the paper's
reentrant behaviour.  The zero-latency configuration is bit-for-bit
identical to the synchronous engine (estimates, message counts, bit counts,
transcript order), which anchors every latency experiment to the paper's
semantics.  Staleness aggregates live in
:mod:`repro.analysis.staleness`.
"""

from repro.asynchrony.channel import AsyncChannel, InFlightMessage
from repro.asynchrony.events import EventScheduler, ScheduledEvent
from repro.asynchrony.latency import (
    ZERO_LATENCY,
    AsymmetricLatency,
    ConstantLatency,
    HeavyTailLatency,
    LatencyModel,
    UniformLatency,
)
from repro.asynchrony.runner import (
    AsyncTrackingResult,
    build_async_network,
    build_sharded_async_network,
    build_tree_async_network,
    run_tracking_async,
)

__all__ = [
    "AsyncChannel",
    "InFlightMessage",
    "EventScheduler",
    "ScheduledEvent",
    "ZERO_LATENCY",
    "AsymmetricLatency",
    "ConstantLatency",
    "HeavyTailLatency",
    "LatencyModel",
    "UniformLatency",
    "AsyncTrackingResult",
    "build_async_network",
    "build_sharded_async_network",
    "build_tree_async_network",
    "run_tracking_async",
]
