"""Pluggable delivery-latency models for the asynchronous channel.

A latency model answers one question: how long does *this* transmission take,
in virtual time units (the unit is one stream timestep)?  Models receive the
channel's seeded generator plus the link endpoints, so per-link asymmetry and
heavy-tailed jitter are both expressible while the whole simulation stays
reproducible from a single seed.

The zero-latency model is the bridge back to the paper: under
``ConstantLatency(0)`` every message is delivered inline at its send instant,
and the asynchronous engine is bit-for-bit identical to the synchronous one
(``tests/test_async_equivalence.py`` pins this down).
"""

from __future__ import annotations

from typing import Mapping, Optional, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "HeavyTailLatency",
    "AsymmetricLatency",
    "ZERO_LATENCY",
]


@runtime_checkable
class LatencyModel(Protocol):
    """Protocol for per-transmission delivery delays.

    Implementations must be pure functions of ``rng`` draws and the link
    endpoints — never of wall-clock state — so that a seeded run is
    reproducible.  Returned delays are in virtual-time units and must be
    finite and non-negative (the channel clamps tiny negative float noise).
    """

    def sample(self, rng: np.random.Generator, sender: int, receiver: int) -> float:
        """Return the delivery delay for one transmission on ``sender -> receiver``."""
        ...


class ConstantLatency:
    """Every transmission takes exactly ``delay`` virtual-time units.

    ``ConstantLatency(0)`` is the synchronous degenerate case: the async
    channel delivers such messages inline, reproducing the paper's
    instant-delivery model exactly.
    """

    def __init__(self, delay: float = 0.0) -> None:
        if not delay >= 0.0:
            raise ConfigurationError(f"latency must be >= 0, got {delay}")
        self.delay = float(delay)

    def sample(self, rng: np.random.Generator, sender: int, receiver: int) -> float:
        return self.delay


class UniformLatency:
    """Uniform jitter: delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0.0 <= low <= high:
            raise ConfigurationError(
                f"uniform latency needs 0 <= low <= high, got [{low}, {high}]"
            )
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator, sender: int, receiver: int) -> float:
        if self.low == self.high:
            return self.low
        return float(rng.uniform(self.low, self.high))


class HeavyTailLatency:
    """Pareto-tailed delays: mostly near ``scale``, occasionally much larger.

    The delay is ``scale * (1 + Pareto(alpha))``, optionally truncated at
    ``cap`` to keep the drain phase bounded.  Smaller ``alpha`` means heavier
    tails; ``alpha <= 1`` has infinite mean, which is allowed but best paired
    with a cap.
    """

    def __init__(self, scale: float, alpha: float = 1.5, cap: Optional[float] = None) -> None:
        if not scale > 0.0:
            raise ConfigurationError(f"heavy-tail scale must be > 0, got {scale}")
        if not alpha > 0.0:
            raise ConfigurationError(f"heavy-tail alpha must be > 0, got {alpha}")
        if cap is not None and cap < scale:
            raise ConfigurationError(
                f"heavy-tail cap ({cap}) must be >= scale ({scale})"
            )
        self.scale = float(scale)
        self.alpha = float(alpha)
        self.cap = None if cap is None else float(cap)

    def sample(self, rng: np.random.Generator, sender: int, receiver: int) -> float:
        delay = self.scale * (1.0 + float(rng.pareto(self.alpha)))
        if self.cap is not None:
            delay = min(delay, self.cap)
        return delay


class AsymmetricLatency:
    """Per-site scaling of a base model: some links are slower than others.

    The site end of the link (the sender for site-to-coordinator traffic, the
    receiver for coordinator-to-site traffic) selects a multiplicative factor
    applied to the base model's draw.  Sites without an explicit factor use
    ``default_factor``.  This models, e.g., one site behind a slow WAN link
    while its peers sit in the same rack as the coordinator.
    """

    def __init__(
        self,
        base: LatencyModel,
        site_factors: Mapping[int, float],
        default_factor: float = 1.0,
    ) -> None:
        if not default_factor >= 0.0:
            raise ConfigurationError(
                f"default latency factor must be >= 0, got {default_factor}"
            )
        for site_id, factor in site_factors.items():
            if site_id < 0:
                raise ConfigurationError(f"site id must be >= 0, got {site_id}")
            if not factor >= 0.0:
                raise ConfigurationError(
                    f"latency factor for site {site_id} must be >= 0, got {factor}"
                )
        self.base = base
        self.site_factors = dict(site_factors)
        self.default_factor = float(default_factor)

    def sample(self, rng: np.random.Generator, sender: int, receiver: int) -> float:
        # Exactly one endpoint of every link is a site (non-negative id); the
        # coordinator end uses the COORDINATOR/BROADCAST sentinels (< 0).
        site_end = sender if sender >= 0 else receiver
        factor = self.site_factors.get(site_end, self.default_factor)
        return factor * self.base.sample(rng, sender, receiver)


#: The synchronous degenerate case, shared so callers don't re-allocate it.
ZERO_LATENCY = ConstantLatency(0.0)
