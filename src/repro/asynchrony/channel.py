"""Latency-aware asynchronous channel with in-flight messages.

:class:`AsyncChannel` conforms to the :class:`repro.monitoring.channel.Channel`
counting contract — every transmission is charged (messages, bits, per-kind
breakdown, optional transcript log) at *send* time, exactly like the
synchronous channel — but delivery happens later: each message is held in
flight and handed to its destination handler at a scheduled virtual time,
``send instant + sampled latency``.  The channel owns the virtual clock; the
event-driven runner (:func:`repro.asynchrony.runner.run_tracking_async`)
advances it as stream updates arrive and drains the queue between them.

Ordering semantics are explicit:

* ``preserve_order=True`` (default) keeps each directed link (one site to the
  coordinator, or the coordinator to one site) FIFO, like a TCP connection:
  a message never overtakes an earlier one on the same link, even when the
  latency model hands it a smaller delay.
* ``preserve_order=False`` allows reordering within a link (UDP-like); the
  channel counts how many deliveries arrived out of send order so experiments
  can correlate reordering with estimate error.

A sampled delay of exactly zero is delivered *inline*, synchronously, through
the same code path as the synchronous channel (provided the link has nothing
in flight that FIFO would force it behind).  Under ``ConstantLatency(0)``
every message takes this path, which is why the zero-latency asynchronous
engine is bit-for-bit identical to the synchronous one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.asynchrony.events import EventScheduler
from repro.asynchrony.latency import ZERO_LATENCY, LatencyModel
from repro.exceptions import ProtocolError
from repro.monitoring.channel import Channel
from repro.monitoring.messages import BROADCAST_SITE, COORDINATOR, Message

__all__ = ["InFlightMessage", "AsyncChannel"]

#: A directed link: ("up", site_id) for site-to-coordinator traffic and
#: ("down", site_id) for coordinator-to-site traffic (broadcast copies use the
#: receiving site's down link, one in-flight copy per site).
Link = Tuple[str, int]


@dataclass(frozen=True)
class InFlightMessage:
    """One transmission travelling through the asynchronous channel.

    Attributes:
        message: The message being delivered (already charged at send time).
        handler: Destination handler to invoke at delivery.
        link: Directed link the transmission travels on.
        link_order: Send index on that link (0-based), used to detect
            reordered deliveries.
        sent_at: Virtual time at which the transmission was sent.
    """

    message: Message
    handler: Callable[[Message], None]
    link: Link
    link_order: int
    sent_at: float


class AsyncChannel(Channel):
    """A counted channel whose deliveries take (virtual) time.

    Cost accounting is identical to the synchronous :class:`Channel` — the
    shared ``_account`` helper charges every transmission at send time — so
    experiments compare communication bounds across transports without
    recalibration.  What changes is *when* handlers run: messages wait in a
    deterministic heap-based event queue and are delivered by
    :meth:`advance_to` / :meth:`drain` in ``(due time, send order)`` order.

    Staleness instrumentation is collected as messages flow: the age of every
    delivery (virtual time spent in flight), the in-flight high-water mark,
    and the number of deliveries that arrived out of send order on their
    link.  :func:`repro.analysis.staleness.summarize_staleness` aggregates
    these into a report.
    """

    def __init__(
        self,
        num_sites: int,
        latency: LatencyModel = ZERO_LATENCY,
        seed: Optional[int] = 0,
        preserve_order: bool = True,
    ) -> None:
        super().__init__(num_sites)
        self._latency = latency
        self._rng = np.random.default_rng(seed)
        self._preserve_order = preserve_order
        self._scheduler = EventScheduler()
        self._clock = 0.0
        # Per-link bookkeeping: queued-but-undelivered count (FIFO inline
        # guard), latest scheduled due time (FIFO delivery floor), send and
        # delivery counters (reordering detection).
        self._link_pending: Dict[Link, int] = {}
        self._link_front: Dict[Link, float] = {}
        self._link_sent: Dict[Link, int] = {}
        self._link_delivered_high: Dict[Link, int] = {}
        #: Virtual-time age of every delivery so far, in send order of
        #: delivery (inline deliveries contribute 0.0).
        self.delivery_ages: List[float] = []
        #: Largest number of messages simultaneously in flight.
        self.inflight_highwater = 0
        #: Deliveries that arrived out of send order on their link.
        self.reordered_deliveries = 0

    # -- clock & queue introspection ----------------------------------------

    @property
    def is_synchronous(self) -> bool:
        """Asynchronous delivery: inline closed-form closes must not be used."""
        return False

    @property
    def supports_span_events(self) -> bool:
        """Whether the span kernel may bulk-schedule a span's count reports.

        ``True``: the kernel's batched fast path may run over this channel,
        charging a trigger-free span's count reports in one bulk call and
        putting a single prepaid aggregate in flight per span
        (:meth:`send_prepaid_to_coordinator`) — one event per span, not one
        per message.  Simulated block closes stay disabled
        (``is_synchronous`` is ``False``), so close steps travel as real
        per-message traffic and the protocol's request/reply/broadcast
        exchanges keep their exact latency behaviour.
        """
        return True

    @property
    def now(self) -> float:
        """Current virtual time (monotone; advanced by the runner)."""
        return self._clock

    @property
    def in_flight(self) -> int:
        """Number of messages currently travelling through the channel."""
        return len(self._scheduler)

    @property
    def delivered_count(self) -> int:
        """Total deliveries so far (inline and queued)."""
        return len(self.delivery_ages)

    def adopt_accounting(self, other) -> None:
        """Continue ``other``'s counters, clock and staleness lists here.

        Extends :meth:`repro.monitoring.channel.Channel.adopt_accounting`
        with the asynchronous signals: the virtual clock keeps its value
        across a migration handoff (time never rewinds) and the staleness
        aggregates stay cumulative.  The old channel must be quiescent —
        the handoff protocol drains the hierarchy first.
        """
        super().adopt_accounting(other)
        if isinstance(other, AsyncChannel):
            if other.in_flight:
                raise ProtocolError(
                    f"cannot adopt a channel with {other.in_flight} messages "
                    "still in flight; drain the hierarchy before the handoff"
                )
            self._clock = max(self._clock, other._clock)
            self.delivery_ages = other.delivery_ages
            self.inflight_highwater = other.inflight_highwater
            self.reordered_deliveries = other.reordered_deliveries

    # -- send paths (Channel contract) ---------------------------------------

    def send_to_coordinator(self, message: Message) -> None:
        """Charge a site-to-coordinator message and put it in flight."""
        if self._coordinator_handler is None:
            raise ProtocolError("no coordinator registered on this channel")
        self._account(message)
        delay = self._latency.sample(self._rng, message.sender, COORDINATOR)
        self._transmit(
            message, self._coordinator_handler, ("up", message.sender), delay
        )

    def send_to_site(self, message: Message) -> None:
        """Charge a coordinator-to-site message (or broadcast) and put it in flight.

        A broadcast is charged ``k`` transmissions, exactly like the
        synchronous channel, and each copy samples its *own* latency: under
        jitter, different sites learn new protocol parameters at different
        virtual times.
        """
        if message.receiver == BROADCAST_SITE:
            handlers = [
                self._site_handler(site_id) for site_id in range(self._num_sites)
            ]
            self._account(message, copies=self._num_sites)
            for site_id, handler in enumerate(handlers):
                delay = self._latency.sample(self._rng, COORDINATOR, site_id)
                self._transmit(message, handler, ("down", site_id), delay)
            return
        handler = self._site_handler(message.receiver)
        self._account(message)
        delay = self._latency.sample(self._rng, COORDINATOR, message.receiver)
        self._transmit(message, handler, ("down", message.receiver), delay)

    def send_prepaid_to_coordinator(self, message: Message) -> None:
        """Put an already-charged span aggregate in flight as one event.

        The span kernel charges a trigger-free span's count reports in bulk
        (identical message and bit accounting to sending each individually)
        and then coalesces their coordinator-side effect into one aggregate
        ``REPORT`` whose payload carries the span's *total* count.  This
        method schedules that aggregate without charging it again: one
        in-flight event per span, which is what lets virtual-time latency
        sweeps scale to 10^7-update streams.  Delivery runs through the
        ordinary receive path, so an aggregate that crosses the block
        trigger when it lands (reports from other sites may have arrived
        first) still closes the block correctly.

        With zero latency the aggregate is delivered inline, reproducing the
        synchronous kernel's ``absorb_count_reports`` exactly; with real
        latency the span's reports share one sampled delay, trading
        per-message timing granularity for event-queue volume — the
        transport-level batching any real uplink performs.
        """
        if self._coordinator_handler is None:
            raise ProtocolError("no coordinator registered on this channel")
        delay = self._latency.sample(self._rng, message.sender, COORDINATOR)
        self._transmit(
            message, self._coordinator_handler, ("up", message.sender), delay
        )

    def multicast(self, message: Message, receivers) -> None:
        """Charge one copy per receiver and put each copy in flight.

        Same accounting as the synchronous channel's multicast; like a
        broadcast, every copy samples its *own* latency, so different shards
        learn a new global level at different virtual times.
        """
        if not receivers:
            raise ProtocolError("multicast needs at least one receiver")
        if len(set(receivers)) != len(receivers):
            raise ProtocolError(
                f"multicast receivers must be distinct, got {list(receivers)}"
            )
        handlers = [self._site_handler(site_id) for site_id in receivers]
        self._account(message, copies=len(receivers))
        for site_id, handler in zip(receivers, handlers):
            delay = self._latency.sample(self._rng, COORDINATOR, site_id)
            self._transmit(message, handler, ("down", site_id), delay)

    # -- scheduling and delivery ---------------------------------------------

    def _transmit(
        self,
        message: Message,
        handler: Callable[[Message], None],
        link: Link,
        delay: float,
    ) -> None:
        """Deliver inline (zero effective delay) or schedule for later."""
        delay = max(0.0, float(delay))
        order = self._link_sent.get(link, 0)
        self._link_sent[link] = order + 1
        item = InFlightMessage(
            message=message,
            handler=handler,
            link=link,
            link_order=order,
            sent_at=self._clock,
        )
        fifo_clear = not self._preserve_order or self._link_pending.get(link, 0) == 0
        if delay == 0.0 and fifo_clear:
            # Synchronous degenerate case: same reentrant delivery as the
            # synchronous channel, so zero latency is provably equivalent.
            self._deliver(item, self._clock)
            return
        due = self._clock + delay
        if self._preserve_order:
            due = max(due, self._link_front.get(link, 0.0))
            self._link_front[link] = due
        self._link_pending[link] = self._link_pending.get(link, 0) + 1
        self._scheduler.push(due, item)
        self.inflight_highwater = max(self.inflight_highwater, len(self._scheduler))

    def _deliver(self, item: InFlightMessage, at: float) -> None:
        """Hand one in-flight message to its handler at virtual time ``at``."""
        self._clock = at
        self.delivery_ages.append(at - item.sent_at)
        if self.observer is not None:
            self.observer.on_delivery(item.message, at - item.sent_at)
        high = self._link_delivered_high.get(item.link, -1)
        if item.link_order < high:
            self.reordered_deliveries += 1
        else:
            self._link_delivered_high[item.link] = item.link_order
        item.handler(item.message)

    def advance_to(self, until: float) -> None:
        """Advance the virtual clock to ``until``, delivering everything due.

        Deliveries happen in ``(due time, send order)`` order; a delivery
        that sends further messages (a reply, a broadcast) may have them
        delivered in the same sweep when their due times also fall inside
        the window.  The clock never moves backwards: a stale ``until`` just
        delivers nothing.
        """
        for event in self._scheduler.pop_due(float(until)):
            item = event.payload
            self._link_pending[item.link] -= 1
            self._deliver(item, event.due)
        self._clock = max(self._clock, float(until))

    def drain(self) -> float:
        """Deliver every remaining in-flight message; return the final clock.

        Used at end of stream so the coordinator settles on its final
        estimate once the last in-flight message lands.
        """
        for event in self._scheduler.pop_all():
            item = event.payload
            self._link_pending[item.link] -= 1
            self._deliver(item, event.due)
        return self._clock
