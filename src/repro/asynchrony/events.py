"""Deterministic discrete-event scheduler for the asynchronous transport.

The scheduler is a heap-based event queue over *virtual time*.  Determinism
is the design constraint: given the same pushes, :meth:`EventScheduler.pop_due`
always yields the same events in the same order, because ties in due time are
broken by a monotonically increasing sequence number (insertion order) rather
than by object identity.  All randomness in the asynchronous subsystem lives
in the seeded latency models (:mod:`repro.asynchrony.latency`); the queue
itself is a pure data structure, so a fixed seed reproduces a run exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional

from repro.exceptions import ProtocolError

__all__ = ["ScheduledEvent", "EventScheduler"]


@dataclass(frozen=True, order=True)
class ScheduledEvent:
    """One event in the virtual-time queue.

    Ordering is ``(due, seq)``: earlier virtual time first, insertion order
    among ties.  The payload is excluded from comparisons.

    Attributes:
        due: Virtual time at which the event becomes deliverable.
        seq: Global insertion index, the deterministic tie-breaker.
        payload: Arbitrary event data (the async channel stores in-flight
            messages here).
    """

    due: float
    seq: int
    payload: Any = field(compare=False)


class EventScheduler:
    """Heap-ordered event queue over virtual time.

    Events pushed at or before the current frontier are delivered in
    ``(due, seq)`` order by :meth:`pop_due`, which supports reentrant pushes:
    handling one event may schedule further events, and any that fall inside
    the window being drained are delivered in the same sweep.
    """

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def next_due(self) -> Optional[float]:
        """Due time of the earliest pending event, or ``None`` if empty."""
        return self._heap[0].due if self._heap else None

    def push(self, due: float, payload: Any) -> ScheduledEvent:
        """Schedule ``payload`` at virtual time ``due`` and return the event."""
        if due < 0:
            raise ProtocolError(f"event due time must be >= 0, got {due}")
        event = ScheduledEvent(due=float(due), seq=self._seq, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop_due(self, until: float) -> Iterator[ScheduledEvent]:
        """Yield every event with ``due <= until``, in ``(due, seq)`` order.

        The iterator is lazy and re-examines the heap after every yield, so
        events pushed while one is being handled are included when they fall
        inside the window.  Consuming the iterator fully drains the window.
        """
        while self._heap and self._heap[0].due <= until:
            yield heapq.heappop(self._heap)

    def pop_all(self) -> Iterator[ScheduledEvent]:
        """Yield every remaining event in ``(due, seq)`` order."""
        while self._heap:
            yield heapq.heappop(self._heap)
