"""Declarative run specification: one entry point over every axis.

Four scaling PRs left the repo with a combinatorial front door: three
runners (:func:`~repro.monitoring.runner.run_tracking`,
:func:`~repro.monitoring.runner.run_tracking_arrays`,
:func:`~repro.asynchrony.runner.run_tracking_async`), three network
builders, and a CLI that re-plumbs the same knobs per subcommand.
:class:`RunSpec` composes the five orthogonal axes the repo already
implements behind one serializable dataclass:

* **source** — a named stream generator distributed over ``k`` sites by a
  named assignment policy, or a recorded columnar trace file (CSV or
  memory-mappable npz);
* **tracker** — any Section 3 tracker or baseline, by name;
* **topology** — flat, or the two-level sharded hierarchy with a named
  partition strategy;
* **transport** — synchronous instant delivery, or the discrete-event
  asynchronous channel with a named latency model;
* **engine** — per-update dispatch, the span kernel's batched fast path,
  columnar array replay (routed tree-direct through
  :func:`~repro.monitoring.runner.run_tracking_tree_arrays` when the
  topology is hierarchical), or ``auto``.

The lifecycle is ``validate() -> build() -> run()``: validation centralizes
every cross-axis combination check that used to live scattered across the
runners and the CLI (arrays x async, trace x engine, shards bounds, unknown
names), :meth:`RunSpec.build` returns the fully wired network plus the
materialized workload, and :meth:`RunSpec.run` dispatches to the matching
legacy runner — bit-for-bit identical to calling it by hand
(``tests/test_api_equivalence.py``).  :meth:`RunSpec.to_dict` /
:meth:`RunSpec.from_dict` round-trip the whole scenario through JSON, which
is what ``python -m repro run --config spec.json`` executes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.baselines import (
    CormodeCounter,
    HuangCounter,
    LiuStyleCounter,
    NaiveCounter,
    StaticThresholdCounter,
)
from repro.core import DeterministicCounter, RandomizedCounter
from repro.exceptions import ProtocolError
from repro.monitoring.runner import (
    TrackingResult,
    run_tracking,
    run_tracking_arrays,
    run_tracking_tree_arrays,
)
from repro.monitoring.sharding import (
    ContiguousSharding,
    ShardingPolicy,
    StridedSharding,
    build_sharded_network,
)
from repro.streams import (
    BlockedAssignment,
    RandomAssignment,
    RoundRobinAssignment,
    SingleSiteAssignment,
    SkewedAssignment,
    assign_sites,
    biased_walk_stream,
    database_size_trace,
    monotone_stream,
    nearly_monotone_stream,
    oscillating_stream,
    random_walk_stream,
    sawtooth_stream,
)
from repro.streams.io import TraceColumns
from repro.streams.model import StreamSpec

__all__ = [
    "SourceSpec",
    "TrackerSpec",
    "TopologySpec",
    "TransportSpec",
    "RunSpec",
    "BuiltRun",
    "STREAM_REGISTRY",
    "TRACKER_NAMES",
    "ASSIGNMENT_NAMES",
    "LATENCY_NAMES",
    "PARTITION_NAMES",
    "LOSS_MODEL_NAMES",
    "ENGINE_NAMES",
]

PathLike = Union[str, pathlib.Path]


# --------------------------------------------------------------------------
# Registries: the names a serialized spec may use on each axis.
# --------------------------------------------------------------------------

def _build_monotone(n, seed, **params):
    return monotone_stream(n, **params)


def _build_nearly_monotone(n, seed, **params):
    return nearly_monotone_stream(n, seed=seed, **params)


def _build_random_walk(n, seed, **params):
    return random_walk_stream(n, seed=seed, **params)


def _build_biased_walk(n, seed, **params):
    params.setdefault("drift", 0.5)
    return biased_walk_stream(n, seed=seed, **params)


def _build_database_trace(n, seed, **params):
    return database_size_trace(n, seed=seed, **params)


def _build_oscillating(n, seed, **params):
    params.setdefault("target", 64)
    return oscillating_stream(n, seed=seed, **params)


def _build_sawtooth(n, seed, **params):
    params.setdefault("amplitude", max(10, n // 100))
    return sawtooth_stream(n, **params)


#: Stream generators addressable from a spec: ``name -> (n, seed, **params)``.
#: Shared with the CLI (``repro.cli.STREAM_GENERATORS``) so the vocabulary
#: cannot drift between the two surfaces.
STREAM_REGISTRY = {
    "monotone": _build_monotone,
    "nearly_monotone": _build_nearly_monotone,
    "random_walk": _build_random_walk,
    "biased_walk": _build_biased_walk,
    "oscillating": _build_oscillating,
    "database_trace": _build_database_trace,
    "sawtooth": _build_sawtooth,
}

#: Trackers addressable from a spec (the Section 3 trackers, every baseline,
#: and the fixed-threshold ablation tracker).
TRACKER_NAMES = (
    "deterministic",
    "randomized",
    "cormode",
    "huang",
    "liu",
    "naive",
    "static",
)

#: Stream-to-site assignment policies addressable from a spec.
ASSIGNMENT_NAMES = ("round_robin", "blocked", "random", "skewed", "single_site")

#: Latency models addressable from a spec (async transport only).  The
#: concrete model for a positive ``scale`` matches the CLI's ``latency``
#: subcommand and :func:`repro.analysis.staleness.run_latency_sweep`:
#: ``constant`` is a fixed delay, ``uniform`` is jitter on
#: ``[scale/2, 3*scale/2]``, ``heavytail`` is a Pareto tail around the scale.
LATENCY_NAMES = ("zero", "constant", "uniform", "heavytail")

#: Site-to-shard partition strategies addressable from a spec.
PARTITION_NAMES = ("contiguous", "strided")

#: Loss models addressable from a spec (async transport only): ``iid`` drops
#: every attempt independently, ``burst`` is the Gilbert–Elliott two-state
#: chain.  Mirrors :data:`repro.faults.channel.LOSS_MODEL_NAMES` (pinned by a
#: test) without importing the faults package on the sync-only path.
LOSS_MODEL_NAMES = ("iid", "burst")

#: Delivery engines addressable from a spec ("per-update" and "perupdate"
#: are interchangeable spellings; the canonical form is "per-update").
ENGINE_NAMES = ("auto", "per-update", "batched", "arrays")


def _check_name(value: str, allowed: Sequence[str], field_path: str) -> None:
    if value not in allowed:
        raise ValueError(
            f"{field_path}={value!r} is not a known choice; pick one of "
            f"{sorted(allowed)}"
        )


# --------------------------------------------------------------------------
# Axis specs.
# --------------------------------------------------------------------------

@dataclass
class SourceSpec:
    """The **source** axis: where the distributed stream comes from.

    Exactly one of ``stream`` (a generator name from
    :data:`STREAM_REGISTRY`, distributed over ``sites`` by ``assignment``),
    ``trace`` (a recorded ``time,site,delta`` trace file, CSV or npz;
    npz traces can be memory-mapped with ``mmap``) and ``live`` (updates
    arrive incrementally over a feed — served by ``repro serve``, never
    batch-run) must be set.  For trace sources the site count is derived
    from the trace itself.

    Attributes:
        stream: Generator name, or ``None`` for a trace source.
        length: Stream length ``n`` (generator sources).
        seed: Generator / assignment-policy seed.
        sites: Number of sites ``k`` the stream is distributed over.
        assignment: Assignment-policy name from :data:`ASSIGNMENT_NAMES`.
        params: Extra keyword arguments for the generator (e.g.
            ``{"drift": 0.8}`` for ``biased_walk``).
        assignment_params: Extra keyword arguments for the assignment policy
            (e.g. ``{"block_length": 4096}`` for ``blocked``).
        trace: Path to a recorded trace file, or ``None``.
        mmap: Memory-map an npz trace instead of loading it.
        live: Updates are pushed in at service time over ``sites`` sites;
            the spec describes a :class:`repro.observability.live.LiveTracker`
            deployment and refuses batch :meth:`RunSpec.run`.
    """

    stream: Optional[str] = "random_walk"
    length: int = 10_000
    seed: int = 0
    sites: int = 4
    assignment: str = "round_robin"
    params: Dict[str, object] = field(default_factory=dict)
    assignment_params: Dict[str, object] = field(default_factory=dict)
    trace: Optional[str] = None
    mmap: bool = False
    live: bool = False

    def validate(self) -> None:
        if self.stream is not None and self.trace is not None:
            raise ProtocolError(
                "source.stream and source.trace are mutually exclusive — a "
                "run either generates its workload or replays a recorded "
                f"trace (got source.stream={self.stream!r} and "
                f"source.trace={self.trace!r})"
            )
        if self.live and (self.stream is not None or self.trace is not None):
            raise ProtocolError(
                "source.live specs take their updates from the service feed; "
                "they are mutually exclusive with source.stream and "
                f"source.trace (got source.stream={self.stream!r}, "
                f"source.trace={self.trace!r})"
            )
        if self.stream is None and self.trace is None and not self.live:
            raise ValueError(
                "the source axis needs a workload: set source.stream (a "
                f"generator from {sorted(STREAM_REGISTRY)}) or source.trace "
                "(a recorded trace file)"
            )
        if self.live and self.sites < 1:
            raise ValueError(f"source.sites must be >= 1, got {self.sites}")
        if self.stream is not None:
            _check_name(self.stream, tuple(STREAM_REGISTRY), "source.stream")
            if self.length < 1:
                raise ValueError(
                    f"source.length must be >= 1, got {self.length}"
                )
            if self.sites < 1:
                raise ValueError(f"source.sites must be >= 1, got {self.sites}")
            _check_name(self.assignment, ASSIGNMENT_NAMES, "source.assignment")
        if self.mmap:
            if self.trace is None:
                raise ProtocolError(
                    "source.mmap memory-maps a trace file; it needs "
                    "source.trace to point at a binary .npz trace"
                )
            if not str(self.trace).endswith(".npz"):
                raise ValueError(
                    "source.mmap applies to binary .npz traces only, got "
                    f"source.trace={self.trace!r}"
                )

    def build_assignment(self):
        """Instantiate the named assignment policy."""
        params = dict(self.assignment_params)
        if self.assignment == "round_robin":
            return RoundRobinAssignment(**params)
        if self.assignment == "blocked":
            return BlockedAssignment(**params)
        if self.assignment == "random":
            params.setdefault("seed", self.seed)
            return RandomAssignment(**params)
        if self.assignment == "skewed":
            params.setdefault("seed", self.seed)
            return SkewedAssignment(**params)
        if self.assignment == "single_site":
            return SingleSiteAssignment(**params)
        raise ValueError(
            f"source.assignment={self.assignment!r} is not a known choice; "
            f"pick one of {sorted(ASSIGNMENT_NAMES)}"
        )

    def build_stream(self) -> StreamSpec:
        """Generate the named stream (generator sources only)."""
        if self.stream is None:
            raise ProtocolError(
                "source.trace runs replay a recorded trace; there is no "
                "generator stream to build"
            )
        return STREAM_REGISTRY[self.stream](
            self.length, self.seed, **dict(self.params)
        )

    def build_updates(self) -> list:
        """Generate and assign the stream: the materialized update list."""
        return assign_sites(
            self.build_stream(), self.sites, self.build_assignment()
        )

    def load_columns(self) -> TraceColumns:
        """Load the recorded trace (trace sources only).

        Goes through the process-wide :mod:`repro.api.trace_cache`, so
        repeated builds over the same on-disk trace (a sweep's grid points,
        a pool worker's task stream) open the file once per process rather
        than once per run.  A trace rewritten on disk is detected by its
        ``(mtime, size)`` fingerprint and reloaded.
        """
        if self.trace is None:
            raise ProtocolError(
                "source.stream runs generate their workload; there is no "
                "trace file to load"
            )
        from repro.api.trace_cache import shared_trace_columns

        return shared_trace_columns(self.trace, mmap=bool(self.mmap))


@dataclass
class TrackerSpec:
    """The **tracker** axis: which algorithm maintains the estimate.

    Attributes:
        name: Tracker name from :data:`TRACKER_NAMES`.
        epsilon: Relative-error parameter ``eps``.
        seed: Seed for the randomized trackers (randomized, huang, liu).
        threshold: Per-site drift threshold (``static`` tracker only).
    """

    name: str = "deterministic"
    epsilon: float = 0.1
    seed: int = 0
    threshold: int = 64

    def validate(self) -> None:
        _check_name(self.name, TRACKER_NAMES, "tracker.name")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(
                f"tracker.epsilon must be in (0, 1), got {self.epsilon}"
            )
        if self.name == "static" and self.threshold < 1:
            raise ValueError(
                f"tracker.threshold must be >= 1, got {self.threshold}"
            )

    def build_factory(self, num_sites: int):
        """Instantiate the named tracker factory for ``num_sites`` sites."""
        if self.name == "deterministic":
            return DeterministicCounter(num_sites, self.epsilon)
        if self.name == "randomized":
            return RandomizedCounter(num_sites, self.epsilon, seed=self.seed)
        if self.name == "cormode":
            return CormodeCounter(num_sites, self.epsilon)
        if self.name == "huang":
            return HuangCounter(num_sites, self.epsilon, seed=self.seed)
        if self.name == "liu":
            return LiuStyleCounter(num_sites, self.epsilon, seed=self.seed)
        if self.name == "naive":
            return NaiveCounter(num_sites, self.epsilon)
        if self.name == "static":
            return StaticThresholdCounter(
                num_sites, self.threshold, self.epsilon
            )
        raise ValueError(
            f"tracker.name={self.name!r} is not a known choice; pick one of "
            f"{sorted(TRACKER_NAMES)}"
        )


@dataclass
class TopologySpec:
    """The **topology** axis: flat star, sharded hierarchy, or L-level tree.

    Three equivalent vocabularies, most specific wins:

    * ``shards`` — the legacy axis: ``1`` is the flat star (bit-for-bit, no
      root hop), above 1 the two-level hierarchy (identical to ``levels=2,
      fanout=shards``);
    * ``levels`` + ``fanout`` — a uniform L-level tree from
      :func:`repro.monitoring.tree.build_tree_network`;
    * ``fanouts`` — explicit per-level fan-outs, top-down, for ragged trees.

    Attributes:
        shards: Coordinator shards for the legacy two-level vocabulary.
        partition: Site-to-shard partition strategy from
            :data:`PARTITION_NAMES`, applied at every split of a tree.
        levels: Total coordinator levels of a uniform tree (with ``fanout``).
        fanout: Per-level fan-out of a uniform tree (with ``levels``).
        fanouts: Explicit per-level fan-outs, top-down (overrides the
            uniform vocabulary).
        epsilon_split: Per-level error-budget policy name from
            :data:`repro.monitoring.tree.EPSILON_SPLIT_NAMES`; ``"leaf"``
            (default) keeps the whole budget at the leaf trackers,
            aggregation relaying exactly — the legacy behaviour.
        split_ratio: Ratio for the ``"geometric"`` split.
        broadcast_deadband: Relative deadband on every aggregator's downward
            level re-broadcasts; ``0.0`` re-broadcasts on every change.
    """

    shards: int = 1
    partition: str = "contiguous"
    levels: Optional[int] = None
    fanout: Optional[int] = None
    fanouts: Optional[List[int]] = None
    epsilon_split: str = "leaf"
    split_ratio: float = 0.5
    broadcast_deadband: float = 0.0

    def is_tree(self) -> bool:
        """Whether the tree vocabulary (levels/fanout/fanouts) is in use."""
        return (
            self.levels is not None
            or self.fanout is not None
            or self.fanouts is not None
        )

    def resolve_fanouts(self) -> List[int]:
        """Per-aggregation-level fan-outs, top-down (empty = flat star).

        Normalises all three vocabularies: the legacy ``shards`` axis maps
        to ``[shards]`` (or ``[]`` for one shard), the tree axes go through
        :func:`repro.monitoring.tree.resolve_fanouts`.
        """
        from repro.monitoring.tree import resolve_fanouts

        if self.is_tree():
            return resolve_fanouts(
                levels=self.levels, fanout=self.fanout, fanouts=self.fanouts
            )
        return [self.shards] if self.shards > 1 else []

    def validate(self) -> None:
        if self.shards < 1:
            raise ValueError(
                f"topology.shards must be >= 1 (1 = flat star topology), "
                f"got {self.shards}"
            )
        _check_name(self.partition, PARTITION_NAMES, "topology.partition")
        if self.is_tree() and self.shards != 1:
            raise ProtocolError(
                f"topology.shards={self.shards} and the tree vocabulary "
                "(levels/fanout/fanouts) are mutually exclusive — "
                "shards=S is exactly levels=2, fanout=S; describe the "
                "topology one way"
            )
        # Imported lazily: the flat path must not require the tree module.
        from repro.monitoring.tree import (
            EPSILON_SPLIT_NAMES,
            resolve_epsilon_split,
        )

        _check_name(
            self.epsilon_split, EPSILON_SPLIT_NAMES, "topology.epsilon_split"
        )
        if not 0.0 < self.split_ratio < 1.0:
            raise ValueError(
                f"topology.split_ratio must be in (0, 1), got "
                f"{self.split_ratio}"
            )
        if self.broadcast_deadband < 0.0:
            raise ValueError(
                f"topology.broadcast_deadband must be >= 0, got "
                f"{self.broadcast_deadband}"
            )
        if self.is_tree():
            # Shape errors (fanout without levels, fanout < 2, disagreeing
            # levels/fanouts) surface here, before any network is built.
            self.resolve_fanouts()
        resolve_epsilon_split(self.epsilon_split, self.split_ratio)

    def build_partition(self) -> ShardingPolicy:
        """Instantiate the named partition strategy."""
        return {
            "contiguous": ContiguousSharding,
            "strided": StridedSharding,
        }[self.partition]()


@dataclass
class TransportSpec:
    """The **transport** axis: instant delivery or latency-aware channels.

    Attributes:
        mode: ``"sync"`` (the paper's instant-delivery model) or ``"async"``
            (the discrete-event transport of :mod:`repro.asynchrony`).
        latency: Latency-model name from :data:`LATENCY_NAMES`; with
            ``scale == 0`` every model degenerates to zero latency, which is
            bit-for-bit the synchronous engine.
        scale: Latency scale in virtual-time units (one unit = one stream
            timestep).
        preserve_order: Per-link FIFO (default) versus reordering allowed.
        seed: Seed for the channels' latency RNGs.
        loss: Long-run drop probability per transmission attempt, in
            ``[0, 1)``; ``0`` (default) is the lossless transport.  Loss
            needs ``mode='async'`` — a dropped message is retransmitted by
            the reliable-delivery layer, and every re-send is charged.
        loss_model: Loss-model name from :data:`LOSS_MODEL_NAMES`.
        loss_burst: Mean burst length (in attempts) for the ``burst`` model.
        loss_seed: Seed for the loss generators, independent of the latency
            seed so jitter and loss reproduce separately.
        timeout: Base retransmission timeout in virtual-time units; backoff
            doubles it per attempt up to ``16 * timeout``.
        repair: Turn on sequence-numbered block closes
            (:func:`repro.faults.repair.enable_close_repair`) so drift that
            arrives between a site's REPLY and the delayed BROADCAST is kept
            for the next close instead of silently discarded.
    """

    mode: str = "sync"
    latency: str = "zero"
    scale: float = 0.0
    preserve_order: bool = True
    seed: int = 0
    loss: float = 0.0
    loss_model: str = "iid"
    loss_burst: float = 4.0
    loss_seed: int = 0
    timeout: float = 4.0
    repair: bool = False

    def validate(self) -> None:
        _check_name(self.mode, ("sync", "async"), "transport.mode")
        _check_name(self.latency, LATENCY_NAMES, "transport.latency")
        _check_name(self.loss_model, LOSS_MODEL_NAMES, "transport.loss_model")
        if self.scale < 0:
            raise ValueError(
                f"transport.scale must be >= 0, got {self.scale}"
            )
        if self.latency == "zero" and self.scale > 0:
            raise ProtocolError(
                "transport.latency='zero' contradicts transport.scale="
                f"{self.scale}; pick a positive-scale model (constant, "
                "uniform, heavytail) or drop the scale"
            )
        if self.mode == "sync" and self.scale > 0:
            raise ProtocolError(
                f"transport.scale={self.scale} needs the latency-aware "
                "channel: set transport.mode='async' (transport.mode='sync' "
                "is the paper's instant-delivery model)"
            )
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(
                f"transport.loss must be in [0, 1) so retransmission can "
                f"terminate, got {self.loss}"
            )
        if self.mode == "sync" and self.loss > 0:
            raise ProtocolError(
                f"transport.loss={self.loss} needs the fault-injecting "
                "channel: set transport.mode='async' (transport.mode='sync' "
                "is the paper's lossless instant-delivery model)"
            )
        if self.mode == "sync" and self.repair:
            raise ProtocolError(
                "transport.repair=true repairs the close protocol against "
                "delayed and lost broadcasts: set transport.mode='async' "
                "(the synchronous engine delivers instantly, so there is no "
                "reply-to-broadcast gap to repair)"
            )
        if not self.loss_burst >= 1.0:
            raise ValueError(
                f"transport.loss_burst must be >= 1 attempt, got "
                f"{self.loss_burst}"
            )
        if (
            self.loss_model == "burst"
            and self.loss > 0
            and self.loss / (1.0 - self.loss) > self.loss_burst
        ):
            raise ValueError(
                f"transport.loss={self.loss} with transport.loss_burst="
                f"{self.loss_burst} is infeasible for the burst model "
                "(the good-to-bad transition probability would exceed 1); "
                "lower the loss or lengthen the bursts"
            )
        if not self.timeout > 0:
            raise ValueError(
                f"transport.timeout must be > 0, got {self.timeout}"
            )

    def build_latency_model(self):
        """Instantiate the named latency model (async transport only)."""
        # Imported lazily so the sync-only path never touches asynchrony.
        from repro.asynchrony import (
            ConstantLatency,
            HeavyTailLatency,
            UniformLatency,
        )

        if self.scale == 0:
            return ConstantLatency(0.0)
        if self.latency == "constant":
            return ConstantLatency(self.scale)
        if self.latency == "uniform":
            return UniformLatency(self.scale / 2.0, 1.5 * self.scale)
        if self.latency == "heavytail":
            return HeavyTailLatency(self.scale, alpha=1.5, cap=100.0 * self.scale)
        raise ValueError(
            f"transport.latency={self.latency!r} is not a known choice; "
            f"pick one of {sorted(LATENCY_NAMES)}"
        )

    def build_faults(self):
        """The :class:`~repro.faults.channel.FaultPlan` of the loss axis.

        Returns ``None`` when ``loss == 0``: the builders then wire the
        plain asynchronous channel, which a zero-loss fault plan matches
        bit-for-bit anyway (the inert-bypass contract).
        """
        if self.loss == 0.0:
            return None
        # Imported lazily, like the latency models.
        from repro.faults import FaultPlan, RetransmitPolicy

        return FaultPlan(
            loss=self.loss,
            model=self.loss_model,
            burst_length=self.loss_burst,
            seed=self.loss_seed,
            retransmit=RetransmitPolicy(
                timeout=self.timeout,
                backoff=2.0,
                max_timeout=16.0 * self.timeout,
            ),
        )


# --------------------------------------------------------------------------
# The unified spec.
# --------------------------------------------------------------------------

_ENGINE_ALIASES = {"perupdate": "per-update"}

_RUNSPEC_FIELDS = (
    "source",
    "tracker",
    "topology",
    "transport",
    "engine",
    "record_every",
)


@dataclass
class RunSpec:
    """One declarative experiment: source x tracker x topology x transport x engine.

    Attributes:
        source: The workload axis (:class:`SourceSpec`).
        tracker: The algorithm axis (:class:`TrackerSpec`).
        topology: The coordinator-hierarchy axis (:class:`TopologySpec`).
        transport: The delivery-channel axis (:class:`TransportSpec`).
        engine: Delivery engine from :data:`ENGINE_NAMES`; ``auto`` picks
            the runner's default (batched exactly when ``record_every > 1``
            on the synchronous path, per-update on the asynchronous one).
        record_every: Recording stride passed to the runner; the final
            timestep is always recorded.
    """

    source: SourceSpec = field(default_factory=SourceSpec)
    tracker: TrackerSpec = field(default_factory=TrackerSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)
    transport: TransportSpec = field(default_factory=TransportSpec)
    engine: str = "auto"
    record_every: int = 1

    # -- validation ----------------------------------------------------------

    def canonical_engine(self) -> str:
        """The engine name with alias spellings normalised."""
        return _ENGINE_ALIASES.get(self.engine, self.engine)

    def validate(self) -> "RunSpec":
        """Check every axis and every cross-axis combination; return self.

        This is the one place the combination rules live: the scattered
        checks the runners and the CLI used to apply individually
        (arrays x async, trace x engine, mmap x format, shard bounds,
        unknown names) all fail here, before any network is built, with a
        message naming the offending fields.
        """
        self.source.validate()
        self.tracker.validate()
        self.topology.validate()
        self.transport.validate()
        engine = self.canonical_engine()
        _check_name(engine, ENGINE_NAMES, "engine")
        if self.record_every < 1:
            raise ValueError(
                f"record_every must be >= 1, got {self.record_every}"
            )
        if engine == "arrays" and self.transport.mode == "async":
            raise ProtocolError(
                "engine='arrays' replays traces synchronously and cannot be "
                "combined with transport.mode='async'; choose engine="
                "'per-update' or 'batched' for latency-aware runs"
            )
        if engine == "arrays" and self.source.trace is None:
            raise ProtocolError(
                "engine='arrays' replays a recorded trace; set source.trace "
                "(generate one with `python -m repro trace`)"
            )
        if self.source.trace is not None and engine != "arrays":
            raise ProtocolError(
                f"source.trace={self.source.trace!r} is the input of the "
                f"columnar replay engine; combine it with engine='arrays' "
                f"(got engine={self.engine!r})"
            )
        if self.source.live:
            if engine not in ("auto", "per-update"):
                raise ProtocolError(
                    "a live service ingests one pushed update at a time; "
                    "source.live requires engine='auto' or 'per-update' "
                    f"(got engine={self.engine!r})"
                )
            if self.transport.mode != "sync":
                raise ProtocolError(
                    "the live service delivers pushed updates synchronously "
                    "as they arrive; source.live requires "
                    f"transport.mode='sync' (got {self.transport.mode!r})"
                )
        if (
            (self.source.stream is not None or self.source.live)
            and self.topology.shards > self.source.sites
        ):
            raise ValueError(
                f"topology.shards={self.topology.shards} needs at least one "
                f"site per shard, but source.sites={self.source.sites}"
            )
        if (
            self.source.stream is not None or self.source.live
        ) and self.topology.is_tree():
            min_leaves = 1
            for fan in self.topology.resolve_fanouts():
                min_leaves *= fan
            if min_leaves > self.source.sites:
                raise ValueError(
                    f"the topology's {min_leaves} leaf shards each need at "
                    f"least one site, but source.sites={self.source.sites}"
                )
        return self

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the spec to a JSON-compatible nested dict."""
        data = {
            "source": dataclasses.asdict(self.source),
            "tracker": dataclasses.asdict(self.tracker),
            "topology": dataclasses.asdict(self.topology),
            "transport": dataclasses.asdict(self.transport),
            "engine": self.canonical_engine(),
            "record_every": self.record_every,
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys fail).

        Every section is optional (missing ones take their defaults), but an
        unknown key anywhere raises ``ValueError`` naming it — that is the
        schema-drift guard the CI round-trip step relies on.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a RunSpec document must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_RUNSPEC_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown RunSpec fields {unknown}; known fields are "
                f"{sorted(_RUNSPEC_FIELDS)}"
            )
        sections = {}
        for name, section_cls in (
            ("source", SourceSpec),
            ("tracker", TrackerSpec),
            ("topology", TopologySpec),
            ("transport", TransportSpec),
        ):
            section_data = data.get(name, {})
            if not isinstance(section_data, Mapping):
                raise ValueError(
                    f"RunSpec section {name!r} must be a JSON object, got "
                    f"{type(section_data).__name__}"
                )
            known = {f.name for f in dataclasses.fields(section_cls)}
            bad = sorted(set(section_data) - known)
            if bad:
                raise ValueError(
                    f"unknown {name} fields {bad}; known fields are "
                    f"{sorted(known)}"
                )
            section_data = dict(section_data)
            if (
                name == "source"
                and section_data.get("live")
                and "stream" not in section_data
            ):
                # A live source has no generator; don't let the field's
                # random_walk default trip the mutual-exclusion check.
                section_data["stream"] = None
            sections[name] = section_cls(**section_data)
        return cls(
            engine=str(data.get("engine", "auto")),
            record_every=int(data.get("record_every", 1)),
            **sections,
        )

    def spec_hash(self) -> str:
        """SHA-256 of the canonical serialized spec.

        The canonical form is :meth:`to_dict` dumped as minified JSON with
        sorted keys, so two specs hash equal exactly when every axis agrees
        (alias spellings normalise first).  Stamped into every result's
        provenance so saved JSON outputs are self-certifying: the hash
        identifies the precise scenario that produced them.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def provenance(self) -> dict:
        """The self-certification stamp attached to results of this spec."""
        from repro import __version__

        return {"spec_hash": self.spec_hash(), "repro_version": __version__}

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: PathLike) -> None:
        """Write the spec to ``path`` as JSON."""
        pathlib.Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "RunSpec":
        """Read a spec saved by :meth:`save` (or written by hand)."""
        return cls.from_json(pathlib.Path(path).read_text(encoding="utf-8"))

    def with_overrides(self, overrides: Mapping[str, object]) -> "RunSpec":
        """Return a copy with dotted-path fields replaced.

        ``spec.with_overrides({"transport.scale": 4.0, "engine":
        "batched"})`` — the override vocabulary of :class:`~repro.api.Sweep`
        and of the CLI's ``repro run --set``.  Unknown paths raise
        ``ValueError`` naming the path — except below the open mapping
        fields (``source.params``, ``source.assignment_params``), whose
        keys are generator/policy kwargs, not spec schema: there new keys
        may be introduced freely, e.g. ``{"source.params.drift": 0.8}``.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            parts = str(path).split(".")
            node = data
            for depth, part in enumerate(parts[:-1]):
                # Depths 0 and 1 are the spec schema (section, then field);
                # anything deeper lives inside a dict-valued field and is
                # an open mapping.
                if part not in node and depth >= 2:
                    node[part] = {}
                if not isinstance(node.get(part), dict):
                    raise ValueError(
                        f"unknown spec field path {path!r}; known fields at "
                        f"{'.'.join(parts[:depth]) or 'top level'} are "
                        f"{sorted(node)}"
                    )
                node = node[part]
            if parts[-1] not in node and len(parts) < 3:
                raise ValueError(
                    f"unknown spec field path {path!r}; known fields at "
                    f"{'.'.join(parts[:-1]) or 'top level'} are {sorted(node)}"
                )
            node[parts[-1]] = value
        return type(self).from_dict(data)

    # -- wiring --------------------------------------------------------------

    def build(self, columns: Optional[TraceColumns] = None) -> "BuiltRun":
        """Validate, then wire the network and materialize the workload.

        Returns a :class:`BuiltRun` holding the fully wired (flat or
        sharded, sync or async) network plus the update list or trace
        columns, ready to run — or to instrument first (benchmarks override
        per-site kernels on ``built.network`` before calling
        ``built.run()``).

        Args:
            columns: Already-loaded trace columns to reuse for a trace
                source instead of re-reading ``source.trace`` from disk —
                for callers running several specs over one trace (the CLI's
                tracker sweep).  Ignored for generator sources.
        """
        self.validate()
        if self.source.live:
            raise ProtocolError(
                "source.live specs have no batch workload to run; serve them "
                "with `repro serve --config <spec>` (or build the network "
                "alone with spec.build_network())"
            )
        engine = self.canonical_engine()
        stream: Optional[StreamSpec] = None
        updates: Optional[list] = None
        if self.source.trace is not None:
            if columns is None:
                columns = self.source.load_columns()
            num_sites = int(columns.sites.max()) + 1 if len(columns) else 1
        else:
            columns = None
            stream = self.source.build_stream()
            updates = assign_sites(
                stream, self.source.sites, self.source.build_assignment()
            )
            num_sites = self.source.sites
        network, factory = self._wire_network(num_sites)
        return BuiltRun(
            spec=self,
            engine=engine,
            factory=factory,
            network=network,
            stream=stream,
            updates=updates,
            columns=columns,
            num_sites=num_sites,
        )

    def build_network(self, num_sites: Optional[int] = None):
        """Validate, then wire just the network axes (no workload).

        The workload-free half of :meth:`build` — tracker x topology x
        transport for ``num_sites`` sites (default ``source.sites``) — used
        by the live service (:class:`repro.observability.live.LiveTracker`)
        for ``source.live`` specs, whose updates arrive over a feed instead
        of from the source axis.
        """
        self.validate()
        resolved = self.source.sites if num_sites is None else int(num_sites)
        network, _ = self._wire_network(resolved)
        return network

    def _wire_network(self, num_sites: int):
        """Wire tracker x topology x transport; return (network, factory)."""
        factory = self.tracker.build_factory(num_sites)
        fanouts = self.topology.resolve_fanouts()
        hierarchical = bool(fanouts)
        partition = (
            self.topology.build_partition() if hierarchical else None
        )
        # The tree builder is needed whenever the topology is a tree in any
        # vocabulary (including legacy shards, which delegates), or when a
        # tree-only knob (split policy, broadcast deadband) is engaged.
        use_tree = self.topology.is_tree() or (
            hierarchical
            and (
                self.topology.epsilon_split != "leaf"
                or self.topology.broadcast_deadband > 0.0
            )
        )
        if self.transport.mode == "async":
            # Imported lazily: the synchronous path must not require the
            # asynchrony package at import time.
            from repro.asynchrony import (
                build_async_network,
                build_sharded_async_network,
                build_tree_async_network,
            )

            model = self.transport.build_latency_model()
            faults = self.transport.build_faults()
            if use_tree:
                network = build_tree_async_network(
                    factory,
                    fanouts=fanouts,
                    latency=model,
                    seed=self.transport.seed,
                    preserve_order=self.transport.preserve_order,
                    sharding=partition,
                    epsilon_split=self.topology.epsilon_split,
                    split_ratio=self.topology.split_ratio,
                    broadcast_deadband=self.topology.broadcast_deadband,
                    faults=faults,
                )
            elif hierarchical:
                network = build_sharded_async_network(
                    factory,
                    self.topology.shards,
                    latency=model,
                    seed=self.transport.seed,
                    preserve_order=self.transport.preserve_order,
                    sharding=partition,
                    faults=faults,
                )
            else:
                network = build_async_network(
                    factory,
                    latency=model,
                    seed=self.transport.seed,
                    preserve_order=self.transport.preserve_order,
                    faults=faults,
                )
            if self.transport.repair:
                from repro.faults import enable_close_repair

                enable_close_repair(network)
        elif use_tree:
            from repro.monitoring.tree import build_tree_network

            network = build_tree_network(
                factory,
                fanouts=fanouts,
                sharding=partition,
                epsilon_split=self.topology.epsilon_split,
                split_ratio=self.topology.split_ratio,
                broadcast_deadband=self.topology.broadcast_deadband,
            )
        elif hierarchical:
            network = build_sharded_network(
                factory, self.topology.shards, sharding=partition
            )
        else:
            network = factory.build_network()
        return network, factory

    def run(self) -> TrackingResult:
        """Build and execute the run; return a uniform result.

        The return type is always a
        :class:`~repro.monitoring.runner.TrackingResult`; asynchronous runs
        return the :class:`~repro.asynchrony.AsyncTrackingResult` subclass
        with the staleness metrics attached.
        """
        return self.build().run()


@dataclass
class BuiltRun:
    """A validated, fully wired run: network plus materialized workload.

    Produced by :meth:`RunSpec.build`.  Running consumes the network's state,
    so call :meth:`run` once per build (build again for a fresh network).

    Attributes:
        spec: The spec this run was built from.
        engine: The canonical engine name.
        factory: The tracker factory (exposed for throughput harnesses that
            time several engines over the same workload).
        network: The wired network — flat or sharded, sync or async.
        stream: The generated :class:`~repro.streams.model.StreamSpec`
            (generator sources; ``None`` for trace replays).
        updates: The assigned update list (generator sources).
        columns: The loaded trace columns (trace sources).
        num_sites: The resolved global site count ``k``.
    """

    spec: RunSpec
    engine: str
    factory: object
    network: object
    stream: Optional[StreamSpec]
    updates: Optional[list]
    columns: Optional[TraceColumns]
    num_sites: int

    def run(self) -> TrackingResult:
        """Dispatch to the legacy runner matching the spec's axes.

        Every result leaves with ``result.provenance`` stamped (spec hash +
        library version), so any JSON written from it is self-certifying.
        """
        record_every = self.spec.record_every
        if self.spec.transport.mode == "async":
            from repro.asynchrony import run_tracking_async

            result = run_tracking_async(
                self.network,
                self.updates,
                record_every=record_every,
                batched=self.engine == "batched",
            )
        elif self.engine == "arrays":
            # Hierarchical networks replay through the tree-direct engine:
            # one precomputed leaf-routing pass instead of a per-segment
            # descent, and untouched lazy leaves never materialise.  Flat
            # networks take the plain columnar cutter; both are bit-for-bit
            # identical to per-update delivery.
            from repro.monitoring.sharding import ShardedNetwork

            arrays_runner = (
                run_tracking_tree_arrays
                if isinstance(self.network, ShardedNetwork)
                else run_tracking_arrays
            )
            result = arrays_runner(
                self.network,
                self.columns.times,
                self.columns.sites,
                self.columns.deltas,
                record_every=record_every,
            )
        else:
            batched = {"auto": None, "batched": True, "per-update": False}[
                self.engine
            ]
            result = run_tracking(
                self.network,
                self.updates,
                record_every=record_every,
                batched=batched,
            )
        result.provenance = self.spec.provenance()
        return result
