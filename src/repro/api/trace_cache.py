"""Process-wide cache of opened trace files.

A parallel :class:`~repro.api.Sweep` runs hundreds of grid points over the
*same* recorded trace, and before this module every point re-opened (and for
CSV, re-parsed) the file from scratch — in every worker process.  The cache
fixes that at the process level: :func:`shared_trace` hands out one
:class:`TraceHandle` per ``(resolved path, mmap)`` pair, and the handle loads
the columns exactly once per process.  ``Sweep.run`` installs a pool
*initializer* that pre-opens the sweep's traces, so each worker pays one open
when it starts instead of one per grid point; memory-mapped ``.npz`` traces
then cost the workers nothing beyond the shared page cache.

Cache entries are fingerprinted with the file's ``(mtime_ns, size)``, so a
trace rewritten on disk (common in tests that reuse a tmp path) is reloaded
rather than served stale.  The cache is bounded (LRU) so long-lived processes
that touch many distinct traces do not accumulate eager CSV columns forever.
"""

from __future__ import annotations

import os
import pathlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.streams.io import PathLike, TraceColumns, load_trace

__all__ = ["TraceHandle", "shared_trace", "shared_trace_columns", "clear_trace_cache"]

#: Most trace handles a process keeps alive at once.  Mapped handles are
#: nearly free, but eager CSV columns hold real arrays — bound them.
_MAX_CACHED_TRACES = 8


@dataclass
class TraceHandle:
    """One process-wide handle to a trace file, loaded at most once.

    Attributes:
        path: The resolved on-disk path.
        mmap: Whether :meth:`columns` memory-maps the file (npz only).
        fingerprint: ``(st_mtime_ns, st_size)`` at handle creation, or
            ``None`` when the file could not be stat-ed (the load call then
            surfaces the usual :class:`~repro.exceptions.StreamError`).
    """

    path: str
    mmap: bool
    fingerprint: Optional[Tuple[int, int]]
    _columns: Optional[TraceColumns] = field(default=None, repr=False)

    def columns(self) -> TraceColumns:
        """The trace's columns, loading from disk on first use only."""
        if self._columns is None:
            self._columns = load_trace(
                self.path, mmap_mode="r" if self.mmap else None
            )
        return self._columns


_CACHE: "OrderedDict[Tuple[str, bool], TraceHandle]" = OrderedDict()
_LOCK = threading.Lock()


def _fingerprint(path: str) -> Optional[Tuple[int, int]]:
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def shared_trace(path: PathLike, mmap: bool = False) -> TraceHandle:
    """Return the process-wide :class:`TraceHandle` for ``path``.

    Repeated calls with the same resolved path and ``mmap`` flag return the
    same handle while the file on disk is unchanged; a rewritten file (new
    mtime or size) gets a fresh handle.  A missing file yields an uncached
    handle whose :meth:`TraceHandle.columns` raises the standard load error.
    """
    resolved = str(pathlib.Path(path).resolve())
    fingerprint = _fingerprint(resolved)
    key = (resolved, bool(mmap))
    with _LOCK:
        handle = _CACHE.get(key)
        if (
            handle is not None
            and fingerprint is not None
            and handle.fingerprint == fingerprint
        ):
            _CACHE.move_to_end(key)
            return handle
        handle = TraceHandle(path=resolved, mmap=bool(mmap), fingerprint=fingerprint)
        if fingerprint is not None:
            _CACHE[key] = handle
            while len(_CACHE) > _MAX_CACHED_TRACES:
                _CACHE.popitem(last=False)
    return handle


def shared_trace_columns(path: PathLike, mmap: bool = False) -> TraceColumns:
    """Convenience wrapper: the cached columns for ``path``."""
    return shared_trace(path, mmap=mmap).columns()


def clear_trace_cache() -> None:
    """Drop every cached handle (tests; or to release eager CSV columns)."""
    with _LOCK:
        _CACHE.clear()
