"""Grid expansion over :class:`~repro.api.RunSpec` fields.

Every experiment script in the repo used to hand-roll the same loop: for
each tracker / each shard count / each latency scale, rebuild the network,
rerun the stream, collect a row.  :class:`Sweep` replaces those loops with
one declarative grid: a base spec plus ``{"dotted.field.path": [values]}``,
expanded as a cartesian product (later keys vary fastest, like nested
loops).  Each grid point is an independent :class:`~repro.api.RunSpec` —
fully validated, serializable, and run on a fresh network — so a sweep is
nothing more than a list of specs plus a convenience runner.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import pathlib
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.api.spec import RunSpec
from repro.exceptions import ConfigurationError
from repro.monitoring.runner import TrackingResult

__all__ = ["Sweep", "SweepError", "SweepPoint", "shutdown_sweep_pool"]


def _run_spec_payload(payload: dict) -> Tuple[bool, object]:
    """Worker-process entry point: rebuild one grid point's spec and run it.

    Module-level (not a closure) so it pickles under the spawn start method;
    the spec travels as its serialized dict.  Returns ``(True, result)`` on
    success and ``(False, formatted_traceback)`` on failure — an exception
    object would cross the process boundary stripped of its child-side
    traceback (and some don't pickle at all), so the text crosses instead
    and the parent re-raises it as a :class:`SweepError` that names the
    failing spec.
    """
    try:
        return True, RunSpec.from_dict(payload).run()
    except BaseException:
        return False, traceback.format_exc()


def _worker_preload_traces(traces: Tuple[Tuple[str, bool], ...]) -> None:
    """Pool initializer: open each of the sweep's trace files once, up front.

    Runs in every worker as it starts, before any grid point is dispatched.
    The opened handles land in the worker's process-wide
    :mod:`repro.api.trace_cache`, so every later
    :meth:`~repro.api.SourceSpec.load_columns` in that worker is a cache hit:
    one physical open per worker, not one per grid point.  Load errors are
    swallowed here on purpose — a broken trace should surface as a normal
    per-point :class:`SweepError` carrying the child traceback, not as an
    opaque pool-initializer crash.
    """
    from repro.api.trace_cache import shared_trace

    for path, mmap in traces:
        try:
            shared_trace(path, mmap=mmap).columns()
        except Exception:
            pass


def _probe_worker_trace_opens(_index: int) -> Tuple[int, dict]:
    """Report ``(pid, trace_open_counts())`` from inside a pool worker."""
    from repro.streams.io import trace_open_counts

    return os.getpid(), trace_open_counts()


_SWEEP_POOL: ProcessPoolExecutor = None
_SWEEP_POOL_KEY: Tuple = None


def _sweep_pool(
    width: int, traces: Tuple[Tuple[str, bool], ...]
) -> ProcessPoolExecutor:
    """The shared sweep executor, (re)created when width or traces change.

    Keeping one pool alive across :meth:`Sweep.run` calls (and across the
    chunks within a call) means workers — and the traces their initializer
    opened — are reused instead of being respawned per sweep.
    """
    global _SWEEP_POOL, _SWEEP_POOL_KEY
    key = (width, traces)
    if _SWEEP_POOL is not None and _SWEEP_POOL_KEY == key:
        return _SWEEP_POOL
    shutdown_sweep_pool()
    _SWEEP_POOL = ProcessPoolExecutor(
        max_workers=width,
        initializer=_worker_preload_traces,
        initargs=(traces,),
    )
    _SWEEP_POOL_KEY = key
    return _SWEEP_POOL


def shutdown_sweep_pool() -> None:
    """Shut down the shared sweep worker pool, if one is alive.

    :meth:`Sweep.run` keeps its :class:`~concurrent.futures.ProcessPoolExecutor`
    alive between calls so repeated sweeps reuse warm workers and their
    already-opened traces.  Call this to release the worker processes (it is
    also registered via :mod:`atexit`, so interpreter shutdown is clean).
    """
    global _SWEEP_POOL, _SWEEP_POOL_KEY
    if _SWEEP_POOL is not None:
        _SWEEP_POOL.shutdown()
        _SWEEP_POOL = None
        _SWEEP_POOL_KEY = None


atexit.register(shutdown_sweep_pool)


class SweepError(RuntimeError):
    """One grid point of a parallel sweep failed in its worker process.

    Carries everything needed to reproduce the failure without re-running
    the sweep: the child process's full traceback text and the failing
    point's serialized spec (``RunSpec.from_dict(error.spec_dict).run()``
    replays it in-process).

    Attributes:
        overrides: The dotted-path overrides that produced the failing point.
        spec_dict: The failing spec, as :meth:`RunSpec.to_dict` emitted it.
        child_traceback: The worker process's formatted traceback.
    """

    def __init__(
        self,
        overrides: Dict[str, object],
        spec_dict: dict,
        child_traceback: str,
    ) -> None:
        super().__init__(
            f"sweep point {overrides!r} failed in its worker process\n"
            f"--- child traceback ---\n{child_traceback.rstrip()}\n"
            f"--- failing spec ---\n{json.dumps(spec_dict, sort_keys=True)}"
        )
        self.overrides = dict(overrides)
        self.spec_dict = spec_dict
        self.child_traceback = child_traceback

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the one formatted
        # message) into ``__init__``, which takes three fields — rebuild
        # from the fields so the error survives crossing process boundaries
        # with its spec dict and child traceback intact.
        return (SweepError, (self.overrides, self.spec_dict, self.child_traceback))


@dataclass(frozen=True)
class SweepPoint:
    """One executed grid point of a :class:`Sweep`.

    Attributes:
        overrides: The dotted-path overrides that produced this point.
        spec: The fully expanded spec that ran.
        result: The run's :class:`~repro.monitoring.runner.TrackingResult`
            (the async subclass when the spec's transport is asynchronous).
    """

    overrides: Dict[str, object]
    spec: RunSpec
    result: TrackingResult


class Sweep:
    """Expand a grid of field overrides over a base :class:`RunSpec`.

    Args:
        base: The spec every grid point starts from.
        grid: Mapping from dotted field path (e.g. ``"tracker.name"``,
            ``"transport.scale"``, ``"topology.shards"``, ``"engine"``) to
            the sequence of values to sweep.  Paths are checked against the
            base spec up front, so a typo fails before anything runs.

    Example::

        sweep = Sweep(base, {"tracker.name": ["deterministic", "randomized"],
                             "transport.scale": [0.0, 4.0, 16.0]})
        for point in sweep.run():
            print(point.overrides, point.result.summary())
    """

    def __init__(self, base: RunSpec, grid: Mapping[str, Sequence]) -> None:
        if not grid:
            raise ConfigurationError("a sweep needs at least one grid axis")
        self.base = base
        self.grid: Dict[str, Tuple] = {}
        for path, values in grid.items():
            values = tuple(values)
            if not values:
                raise ConfigurationError(
                    f"sweep axis {path!r} has no values to sweep"
                )
            # Apply one value now so unknown paths fail at construction.
            base.with_overrides({path: values[0]})
            self.grid[str(path)] = values

    def __len__(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total

    def specs(self) -> List[Tuple[Dict[str, object], RunSpec]]:
        """Expand the grid into ``(overrides, spec)`` pairs, in grid order."""
        paths = list(self.grid)
        expanded = []
        for combo in itertools.product(*(self.grid[path] for path in paths)):
            overrides = dict(zip(paths, combo))
            expanded.append((overrides, self.base.with_overrides(overrides)))
        return expanded

    def __iter__(self) -> Iterator[Tuple[Dict[str, object], RunSpec]]:
        return iter(self.specs())

    def run(self, workers: int = 1) -> List[SweepPoint]:
        """Run every grid point on a fresh network; return the points in order.

        Args:
            workers: Process-pool width.  Grid points are fully independent
                (each is a fresh, serializable spec run on its own network),
                so with ``workers > 1`` they execute in a
                :class:`~concurrent.futures.ProcessPoolExecutor` — results
                come back in grid order regardless of completion order, and
                every result carries the same provenance stamp a serial run
                would.  Points are shipped to the pool in chunks (several
                specs per task) so large grids of short runs are not
                dominated by per-task pickling round-trips.  The pool itself
                is kept alive and reused across chunks and across ``run``
                calls of the same shape (see :func:`shutdown_sweep_pool`),
                and its initializer pre-opens every trace file the grid
                references — each worker opens each trace **once**, with all
                grid points served from the worker's
                :mod:`~repro.api.trace_cache` (memory-mapped npz traces
                share the OS page cache on top).  The default stays serial
                (no subprocess overhead, exceptions surface at the
                offending point).

        Raises:
            SweepError: A grid point raised in its worker process.  The
                error carries the child's full traceback and the failing
                spec's ``to_dict()`` for an in-process replay.
        """
        if workers < 1:
            raise ConfigurationError(
                f"Sweep.run needs workers >= 1, got {workers}"
            )
        expanded = self.specs()
        if workers == 1 or len(expanded) <= 1:
            return [
                SweepPoint(overrides=overrides, spec=spec, result=spec.run())
                for overrides, spec in expanded
            ]
        payloads = [spec.to_dict() for _, spec in expanded]
        pool_width = min(workers, len(expanded))
        traces = tuple(
            sorted(
                {
                    (
                        str(pathlib.Path(spec.source.trace).resolve()),
                        bool(spec.source.mmap),
                    )
                    for _, spec in expanded
                    if spec.source.trace is not None
                }
            )
        )
        # ~4 chunks per worker: large enough to amortise task pickling,
        # small enough to keep the pool balanced when run times vary.
        chunksize = max(1, len(expanded) // (pool_width * 4))
        pool = _sweep_pool(pool_width, traces)
        try:
            outcomes = list(
                pool.map(_run_spec_payload, payloads, chunksize=chunksize)
            )
        except BrokenProcessPool:
            # A dead worker poisons the whole executor; drop it so the next
            # run() gets a fresh pool instead of the same broken one.
            shutdown_sweep_pool()
            raise
        points = []
        for (overrides, spec), payload, (ok, value) in zip(
            expanded, payloads, outcomes
        ):
            if not ok:
                raise SweepError(overrides, payload, value)
            points.append(SweepPoint(overrides=overrides, spec=spec, result=value))
        return points

    @staticmethod
    def worker_trace_opens(samples: int = 32) -> Dict[int, dict]:
        """Per-worker trace open tallies from the live shared sweep pool.

        Sends ``samples`` cheap probe tasks through the pool and collects
        each responding worker's :func:`repro.streams.io.trace_open_counts`,
        keyed by worker pid.  More samples than workers are sent because the
        pool is free to give every task to one idle worker; duplicates
        collapse on pid.  Returns ``{}`` when no pool is alive.  This is the
        measurement behind the shared-trace guarantee: after a sweep over
        one trace, each pid's tally for that trace is 1 — one open per
        worker, never one per grid point (benchmark E23 asserts this).
        """
        if _SWEEP_POOL is None:
            return {}
        return {
            pid: counts
            for pid, counts in _SWEEP_POOL.map(
                _probe_worker_trace_opens, range(samples)
            )
        }
