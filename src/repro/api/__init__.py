"""Unified experiment API: one declarative entry point over every axis.

The repo implements five orthogonal axes — stream **source**, **tracker**
algorithm, coordinator **topology**, delivery **transport**, and execution
**engine** — each with its own builders and runners.  This package composes
them behind one serializable :class:`RunSpec`::

    from repro.api import RunSpec, SourceSpec, TrackerSpec, TransportSpec

    spec = RunSpec(
        source=SourceSpec(stream="biased_walk", length=50_000, sites=8),
        tracker=TrackerSpec(name="randomized", epsilon=0.05, seed=7),
        transport=TransportSpec(mode="async", latency="uniform", scale=4.0),
        engine="batched",
        record_every=100,
    )
    result = spec.validate().run()          # a uniform TrackingResult
    spec.save("scenario.json")              # replay: repro run --config scenario.json

Grids over any field expand with :class:`Sweep`::

    from repro.api import Sweep
    points = Sweep(spec, {"topology.shards": [1, 2, 4, 8]}).run()

Every spec run is bit-for-bit identical to hand-wiring the corresponding
legacy entry point (``tests/test_api_equivalence.py`` pins this across the
engine x topology x transport matrix), so the spec layer adds scenarios, not
semantics.
"""

from repro.api.spec import (
    ASSIGNMENT_NAMES,
    ENGINE_NAMES,
    LATENCY_NAMES,
    LOSS_MODEL_NAMES,
    PARTITION_NAMES,
    STREAM_REGISTRY,
    TRACKER_NAMES,
    BuiltRun,
    RunSpec,
    SourceSpec,
    TopologySpec,
    TrackerSpec,
    TransportSpec,
)
from repro.api.sweep import Sweep, SweepError, SweepPoint, shutdown_sweep_pool
from repro.api.trace_cache import (
    TraceHandle,
    clear_trace_cache,
    shared_trace,
    shared_trace_columns,
)

__all__ = [
    "RunSpec",
    "BuiltRun",
    "SourceSpec",
    "TrackerSpec",
    "TopologySpec",
    "TransportSpec",
    "Sweep",
    "SweepError",
    "SweepPoint",
    "shutdown_sweep_pool",
    "TraceHandle",
    "shared_trace",
    "shared_trace_columns",
    "clear_trace_cache",
    "STREAM_REGISTRY",
    "TRACKER_NAMES",
    "ASSIGNMENT_NAMES",
    "LATENCY_NAMES",
    "LOSS_MODEL_NAMES",
    "PARTITION_NAMES",
    "ENGINE_NAMES",
]
