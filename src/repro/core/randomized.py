"""Randomized variability-aware counter (Section 3.4).

Each site runs two independent monotone estimators: one over the ``+1``
updates it receives (drift ``d_i^+``) and one over the ``-1`` updates
(``d_i^-``).  The template slots, taken from Huang, Yi and Zhang's randomized
counter, are:

* **Condition** — after every local update, report with probability
  ``p = min(1, 3 / (eps * 2^r * sqrt(k)))``.
* **Message** — the new value of ``d_i^+`` or ``d_i^-`` (whichever changed).
* **Update** — the coordinator sets ``d_hat_i^{+/-} = d_i^{+/-} - 1 + 1/p``,
  which makes each ``d_hat_i^{+/-}`` an unbiased estimator with variance at
  most ``1/p^2`` (Fact 3.1 in the paper).

The coordinator's estimate is ``f(n_j) + sum_i (d_hat_i^+ - d_hat_i^-)``, and
Chebyshev's inequality gives ``P(|f - fhat| > eps |f|) < 1/3`` for blocks at
level ``r >= 1``.  For ``r = 0`` blocks the probability formula yields
``p = 1`` (exact tracking) whenever ``k <= 9 / eps^2``, which is the regime
``k = O(1/eps^2)`` under which the paper states its randomized bound; for
larger ``k`` the level-0 guarantee degrades and the deterministic tracker
should be preferred.

Expected communication: ``O((k + sqrt(k)/eps) v(n))`` messages.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.core.template import (
    BlockTrackerFactory,
    BlockTrackingCoordinator,
    BlockTrackingSite,
)
from repro.monitoring.messages import COORDINATOR, Message, MessageKind

__all__ = [
    "report_probability",
    "RandomizedSite",
    "RandomizedCoordinator",
    "RandomizedCounter",
]


def report_probability(level: int, num_sites: int, epsilon: float) -> float:
    """The per-update report probability ``min(1, 3 / (eps 2^r sqrt(k)))``."""
    return min(1.0, 3.0 / (epsilon * (2 ** level) * math.sqrt(num_sites)))


class RandomizedSite(BlockTrackingSite):
    """Site side of the randomized tracker (two monotone sub-streams)."""

    def __init__(
        self,
        site_id: int,
        num_sites: int,
        epsilon: float,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(site_id, num_sites, epsilon)
        self._rng = np.random.default_rng(seed)
        #: d_i^+ and d_i^-: counts of +1 and -1 updates received this block.
        self.positive_drift = 0
        self.negative_drift = 0

    def on_stream_update(self, time: int, delta: int) -> None:
        if delta > 0:
            self.positive_drift += 1
            sign, drift = 1, self.positive_drift
        else:
            self.negative_drift += 1
            sign, drift = -1, self.negative_drift
        probability = report_probability(self.level, self.num_sites, self.epsilon)
        if probability >= 1.0 or self._rng.random() < probability:
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"sign": sign, "drift": drift},
                    time=time,
                )
            )

    def on_block_start(self, level: int) -> None:
        self.positive_drift = 0
        self.negative_drift = 0


class RandomizedCoordinator(BlockTrackingCoordinator):
    """Coordinator side of the randomized tracker."""

    def __init__(self, num_sites: int, epsilon: float) -> None:
        super().__init__(num_sites, epsilon)
        self._positive_estimates: Dict[int, float] = {}
        self._negative_estimates: Dict[int, float] = {}

    def drift_estimate(self) -> float:
        positive = sum(self._positive_estimates.values())
        negative = sum(self._negative_estimates.values())
        return positive - negative

    def on_estimation_report(self, message: Message) -> None:
        probability = report_probability(self.level, self.num_sites, self.epsilon)
        corrected = float(message.payload["drift"]) - 1.0 + 1.0 / probability
        if int(message.payload["sign"]) > 0:
            self._positive_estimates[message.sender] = corrected
        else:
            self._negative_estimates[message.sender] = corrected

    def on_block_start(self, level: int) -> None:
        self._positive_estimates = {}
        self._negative_estimates = {}


class RandomizedCounter(BlockTrackerFactory):
    """Factory for the randomized tracker of Section 3.4.

    Args:
        num_sites: Number of sites ``k``.
        epsilon: Relative error parameter.
        seed: Base seed; site ``i`` draws from ``default_rng(seed + i)`` so the
            whole run is reproducible while sites stay independent.
    """

    def __init__(self, num_sites: int, epsilon: float, seed: Optional[int] = None) -> None:
        super().__init__(num_sites, epsilon)
        self.seed = seed

    def build_coordinator(self) -> RandomizedCoordinator:
        return RandomizedCoordinator(self.num_sites, self.epsilon)

    def build_site(self, site_id: int) -> RandomizedSite:
        site_seed = None if self.seed is None else self.seed + site_id
        return RandomizedSite(site_id, self.num_sites, self.epsilon, seed=site_seed)
