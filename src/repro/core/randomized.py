"""Randomized variability-aware counter (Section 3.4).

Each site runs two independent monotone estimators: one over the ``+1``
updates it receives (drift ``d_i^+``) and one over the ``-1`` updates
(``d_i^-``).  The template slots, taken from Huang, Yi and Zhang's randomized
counter, are:

* **Condition** — after every local update, report with probability
  ``p = min(1, 3 / (eps * 2^r * sqrt(k)))``.
* **Message** — the new value of ``d_i^+`` or ``d_i^-`` (whichever changed).
* **Update** — the coordinator sets ``d_hat_i^{+/-} = d_i^{+/-} - 1 + 1/p``,
  which makes each ``d_hat_i^{+/-}`` an unbiased estimator with variance at
  most ``1/p^2`` (Fact 3.1 in the paper).

The coordinator's estimate is ``f(n_j) + sum_i (d_hat_i^+ - d_hat_i^-)``, and
Chebyshev's inequality gives ``P(|f - fhat| > eps |f|) < 1/3`` for blocks at
level ``r >= 1``.  For ``r = 0`` blocks the probability formula yields
``p = 1`` (exact tracking) whenever ``k <= 9 / eps^2``, which is the regime
``k = O(1/eps^2)`` under which the paper states its randomized bound; for
larger ``k`` the level-0 guarantee degrades and the deterministic tracker
should be preferred.

Expected communication: ``O((k + sqrt(k)/eps) v(n))`` messages.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.template import (
    _SCALAR_SPAN,
    BlockTrackerFactory,
    BlockTrackingCoordinator,
    BlockTrackingSite,
)
from repro.monitoring.messages import (
    COORDINATOR,
    HEADER_BITS,
    Message,
    MessageKind,
    integer_bit_length,
    integer_bit_lengths,
)

__all__ = [
    "report_probability",
    "RandomizedSite",
    "RandomizedCoordinator",
    "RandomizedCounter",
]


def report_probability(level: int, num_sites: int, epsilon: float) -> float:
    """The per-update report probability ``min(1, 3 / (eps 2^r sqrt(k)))``."""
    return min(1.0, 3.0 / (epsilon * (2 ** level) * math.sqrt(num_sites)))


class RandomizedSite(BlockTrackingSite):
    """Site side of the randomized tracker (two monotone sub-streams)."""

    #: Block starts only reset the two drift counters (site) and the
    #: estimate tables (coordinator), so multi-block fast-forwarding may
    #: collapse consecutive resets into one.
    idempotent_block_start = True

    def __init__(
        self,
        site_id: int,
        num_sites: int,
        epsilon: float,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(site_id, num_sites, epsilon)
        self._rng = np.random.default_rng(seed)
        #: d_i^+ and d_i^-: counts of +1 and -1 updates received this block.
        self.positive_drift = 0
        self.negative_drift = 0

    def on_stream_update(self, time: int, delta: int) -> None:
        if delta > 0:
            self.positive_drift += 1
            sign, drift = 1, self.positive_drift
        else:
            self.negative_drift += 1
            sign, drift = -1, self.negative_drift
        probability = report_probability(self.level, self.num_sites, self.epsilon)
        if probability >= 1.0 or self._rng.random() < probability:
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"sign": sign, "drift": drift},
                    time=time,
                )
            )

    def on_block_start(self, level: int) -> None:
        self.positive_drift = 0
        self.negative_drift = 0

    def on_stream_update_superseded(self, time: int, delta: int) -> None:
        if delta > 0:
            self.positive_drift += 1
            drift = self.positive_drift
        else:
            self.negative_drift += 1
            drift = self.negative_drift
        probability = report_probability(self.level, self.num_sites, self.epsilon)
        if probability >= 1.0 or self._rng.random() < probability:
            self._channel.charge(
                MessageKind.REPORT,
                1,
                HEADER_BITS + integer_bit_length(1) + integer_bit_length(drift),
            )

    def on_stream_batch(
        self, times: Sequence[int], deltas: np.ndarray, start: int, length: int
    ) -> int:
        """Vectorise the per-update coin flips over the whole span.

        Within the span the level is fixed (no block close can occur), so
        the report probability is constant and all coin flips can be drawn
        in one call — NumPy generators produce the identical float sequence
        for one ``random(length)`` call as for ``length`` scalar ``random()``
        calls, so the batch consumes the RNG bit-for-bit like the per-update
        path.  With ``p >= 1`` every step reports and no randomness is drawn,
        again matching per-update behaviour exactly.

        Drift values at reporting steps come from cumulative counts of the
        two sub-streams.  The coordinator keeps only the latest report per
        sign, so within the span all but the last report of each sign are
        superseded: they are charged in bulk with vectorised bit accounting
        and only the final report per sign is delivered as a real message.
        """
        probability = report_probability(self.level, self.num_sites, self.epsilon)
        if length < _SCALAR_SPAN:
            return self._scalar_batch(times, deltas, start, length, probability)
        window = deltas[start : start + length]
        positive_mask = window > 0
        positive = self.positive_drift + np.cumsum(positive_mask)
        negative = self.negative_drift + np.cumsum(~positive_mask)
        if probability >= 1.0:
            # Dense regime: the per-update path draws no randomness and
            # reports after every update.
            report_offsets = np.arange(length)
        else:
            draws = self._rng.random(length)
            report_offsets = np.flatnonzero(draws < probability)
        if report_offsets.size:
            report_signs = positive_mask[report_offsets]
            report_drifts = np.where(
                report_signs, positive[report_offsets], negative[report_offsets]
            )
            keep = np.zeros(report_offsets.size, dtype=bool)
            positive_reports = np.flatnonzero(report_signs)
            negative_reports = np.flatnonzero(~report_signs)
            if positive_reports.size:
                keep[positive_reports[-1]] = True
            if negative_reports.size:
                keep[negative_reports[-1]] = True
            superseded = ~keep
            if superseded.any():
                sign_bits = integer_bit_length(1)
                bit_lengths = integer_bit_lengths(report_drifts[superseded])
                self._channel.charge(
                    MessageKind.REPORT,
                    int(superseded.sum()),
                    int(bit_lengths.sum())
                    + int(superseded.sum()) * (HEADER_BITS + sign_bits),
                )
            for position in np.flatnonzero(keep).tolist():
                offset = int(report_offsets[position])
                self.send(
                    Message(
                        kind=MessageKind.REPORT,
                        sender=self.site_id,
                        receiver=COORDINATOR,
                        payload={
                            "sign": 1 if bool(report_signs[position]) else -1,
                            "drift": int(report_drifts[position]),
                        },
                        time=times[start + offset],
                    )
                )
        self.positive_drift = int(positive[-1])
        self.negative_drift = int(negative[-1])
        return length

    def on_multiblock_window(
        self,
        deltas: np.ndarray,
        start: int,
        length: int,
        cycle_length: int,
        close_offsets: "np.ndarray | None" = None,
        levels: "np.ndarray | None" = None,
    ) -> bool:
        """Simulate the estimation side of a multi-close window in one pass.

        Uniform windows: the level — and with it the report probability — is
        fixed, so one bulk RNG draw covers every step (bit-identical to the
        per-update scalar draws; with ``p >= 1`` no randomness is drawn at
        all, again matching).  Cross-level windows: the entry step draws one
        scalar at the current level, then each same-level stretch of cycles
        takes one bulk draw at its own probability — sequential bulk draws
        consume the generator exactly like the per-update scalar sequence,
        so seeds replay bit-for-bit.  Every report in the window is
        superseded by a block close before the next observation point, so
        all of them are charged: the reported drift at each step is the
        sub-stream's running count rebased at the preceding close (both
        counters reset at every block start), computed for all reporting
        steps at once from the two cumulative counts plus an arithmetic
        baseline lookup.
        """
        window = deltas[start : start + length]
        positive_mask = window > 0
        sign_bits = integer_bit_length(1)
        if close_offsets is None:
            probability = report_probability(
                self.level, self.num_sites, self.epsilon
            )
            if probability >= 1.0:
                offsets = np.arange(length)
            else:
                draws = self._rng.random(length)
                offsets = np.flatnonzero(draws < probability)
            if offsets.size:
                positive = np.cumsum(positive_mask)
                negative = np.cumsum(~positive_mask)
                drifts = np.empty(offsets.size, dtype=np.int64)
                first_is_entry = int(offsets[0]) == 0
                rest = offsets[1:] if first_is_entry else offsets
                if rest.size:
                    previous_close = ((rest - 1) // cycle_length) * cycle_length
                    drifts[offsets.size - rest.size :] = np.where(
                        positive_mask[rest],
                        positive[rest] - positive[previous_close],
                        negative[rest] - negative[previous_close],
                    )
                if first_is_entry:
                    drifts[0] = (
                        self.positive_drift + 1
                        if positive_mask[0]
                        else self.negative_drift + 1
                    )
                self._channel.charge(
                    MessageKind.REPORT,
                    int(offsets.size),
                    int(integer_bit_lengths(drifts).sum())
                    + int(offsets.size) * (HEADER_BITS + sign_bits),
                )
            self.positive_drift = 0
            self.negative_drift = 0
            return True
        positive = np.cumsum(positive_mask)
        negative = np.cumsum(~positive_mask)
        n_reports = 0
        total_bits = 0
        closes = int(close_offsets.size)
        entry_probability = report_probability(
            self.level, self.num_sites, self.epsilon
        )
        if closes > 1 and self.span_kernel.descent:
            cycle_levels = levels[: closes - 1]
            level_lut = np.array(
                [
                    report_probability(r, self.num_sites, self.epsilon)
                    for r in range(int(cycle_levels.max()) + 1)
                ]
            )
            cycle_probabilities = level_lut[cycle_levels]
            first = int(close_offsets[0]) + 1
            last = int(close_offsets[-1])
            if entry_probability < 1.0 and bool(
                (cycle_probabilities < 1.0).all()
            ):
                # Every cycle draws: the per-update path would flip one coin
                # per step in order (entry first, then each cycle at its own
                # probability), and sequential bulk draws concatenate
                # bit-identically, so the whole window takes one RNG call
                # compared against a per-offset probability vector — a level
                # schedule oscillating at a band edge otherwise fragments
                # this into O(closes) small draws.
                draws = self._rng.random(1 + (last - first + 1))
                step_probabilities = np.repeat(
                    cycle_probabilities, np.diff(close_offsets)
                )
                offs = first + np.flatnonzero(draws[1:] < step_probabilities)
                entry_reports = bool(draws[0] < entry_probability)
            elif entry_probability >= 1.0 and bool(
                (cycle_probabilities >= 1.0).all()
            ):
                # No cycle draws: every step reports, no randomness consumed.
                offs = np.arange(first, last + 1)
                entry_reports = True
            else:
                offs = None
                entry_reports = None
            if offs is not None:
                if entry_reports:
                    drift = (
                        self.positive_drift + 1
                        if positive_mask[0]
                        else self.negative_drift + 1
                    )
                    n_reports += 1
                    total_bits += (
                        HEADER_BITS + sign_bits + integer_bit_length(int(drift))
                    )
                if offs.size:
                    diffs = np.diff(close_offsets)
                    previous_close = np.repeat(close_offsets[:-1], diffs)[
                        offs - first
                    ]
                    drifts = np.where(
                        positive_mask[offs],
                        positive[offs] - positive[previous_close],
                        negative[offs] - negative[previous_close],
                    )
                    n_reports += int(offs.size)
                    total_bits += int(offs.size) * (
                        HEADER_BITS + sign_bits
                    ) + int(integer_bit_lengths(drifts).sum())
                if n_reports:
                    self._channel.charge(MessageKind.REPORT, n_reports, total_bits)
                self.positive_drift = 0
                self.negative_drift = 0
                return True
        # Entry step: one scalar draw at the current level (none when p >= 1),
        # exactly as the per-update path would flip this step's coin.
        probability = entry_probability
        if probability >= 1.0 or self._rng.random() < probability:
            drift = (
                self.positive_drift + 1
                if positive_mask[0]
                else self.negative_drift + 1
            )
            n_reports += 1
            total_bits += HEADER_BITS + sign_bits + integer_bit_length(int(drift))
        j = 1
        while j < closes:
            # Stretch of consecutive cycles at the same (post-close) level.
            level = int(levels[j - 1])
            j_end = j
            while j_end + 1 < closes and int(levels[j_end]) == level:
                j_end += 1
            first = int(close_offsets[j - 1]) + 1
            last = int(close_offsets[j_end])
            cycle = int(close_offsets[j]) - int(close_offsets[j - 1])
            probability = report_probability(level, self.num_sites, self.epsilon)
            if probability >= 1.0:
                offs = np.arange(first, last + 1)
            else:
                draws = self._rng.random(last - first + 1)
                offs = first + np.flatnonzero(draws < probability)
            if offs.size:
                stretch_base = first - 1
                previous_close = (
                    stretch_base + ((offs - stretch_base - 1) // cycle) * cycle
                )
                drifts = np.where(
                    positive_mask[offs],
                    positive[offs] - positive[previous_close],
                    negative[offs] - negative[previous_close],
                )
                n_reports += int(offs.size)
                total_bits += int(offs.size) * (HEADER_BITS + sign_bits) + int(
                    integer_bit_lengths(drifts).sum()
                )
            j = j_end + 1
        if n_reports:
            self._channel.charge(MessageKind.REPORT, n_reports, total_bits)
        self.positive_drift = 0
        self.negative_drift = 0
        return True

    def _scalar_batch(
        self, times, deltas: np.ndarray, start: int, length: int, probability: float
    ) -> int:
        """Plain-Python span simulation; faster than NumPy below ~64 steps.

        Same semantics as the vectorised path: one batch RNG draw covers the
        span (bit-identical to scalar draws), superseded reports (all but
        the last per sign) are charged, and the last report of each sign is
        delivered for real in chronological order.
        """
        draws = None if probability >= 1.0 else self._rng.random(length).tolist()
        positive = self.positive_drift
        negative = self.negative_drift
        sign_bits = integer_bit_length(1)
        charged = 0
        charged_bits = 0
        last_by_sign = {1: None, -1: None}
        for offset, delta in enumerate(deltas[start : start + length].tolist()):
            if delta > 0:
                sign = 1
                positive += 1
                drift = positive
            else:
                sign = -1
                negative += 1
                drift = negative
            if draws is None or draws[offset] < probability:
                previous = last_by_sign[sign]
                if previous is not None:
                    charged += 1
                    charged_bits += (
                        HEADER_BITS + sign_bits + integer_bit_length(previous[1])
                    )
                last_by_sign[sign] = (offset, drift)
        if charged:
            self._channel.charge(MessageKind.REPORT, charged, charged_bits)
        finals = [
            (record[0], sign, record[1])
            for sign, record in last_by_sign.items()
            if record is not None
        ]
        for offset, sign, drift in sorted(finals):
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"sign": sign, "drift": drift},
                    time=times[start + offset],
                )
            )
        self.positive_drift = positive
        self.negative_drift = negative
        return length


class RandomizedCoordinator(BlockTrackingCoordinator):
    """Coordinator side of the randomized tracker."""

    idempotent_block_start = True

    def __init__(self, num_sites: int, epsilon: float) -> None:
        super().__init__(num_sites, epsilon)
        self._positive_estimates: Dict[int, float] = {}
        self._negative_estimates: Dict[int, float] = {}

    def drift_estimate(self) -> float:
        positive = sum(self._positive_estimates.values())
        negative = sum(self._negative_estimates.values())
        return positive - negative

    def on_estimation_report(self, message: Message) -> None:
        probability = report_probability(self.level, self.num_sites, self.epsilon)
        corrected = float(message.payload["drift"]) - 1.0 + 1.0 / probability
        if int(message.payload["sign"]) > 0:
            self._positive_estimates[message.sender] = corrected
        else:
            self._negative_estimates[message.sender] = corrected

    def on_block_start(self, level: int) -> None:
        self._positive_estimates = {}
        self._negative_estimates = {}


class RandomizedCounter(BlockTrackerFactory):
    """Factory for the randomized tracker of Section 3.4.

    Args:
        num_sites: Number of sites ``k``.
        epsilon: Relative error parameter.
        seed: Base seed; site ``i`` draws from ``default_rng(seed + i)`` so the
            whole run is reproducible while sites stay independent.
    """

    def __init__(self, num_sites: int, epsilon: float, seed: Optional[int] = None) -> None:
        super().__init__(num_sites, epsilon)
        self.seed = seed

    def shard_factory(self, num_sites: int, shard_id: int) -> "RandomizedCounter":
        """Per-shard clone; shard ``s`` draws from base seed ``seed + s``."""
        seed = None if self.seed is None else self.seed + shard_id
        return RandomizedCounter(num_sites, self.epsilon, seed=seed)

    def build_coordinator(self) -> RandomizedCoordinator:
        return RandomizedCoordinator(self.num_sites, self.epsilon)

    def build_site(self, site_id: int) -> RandomizedSite:
        site_seed = None if self.seed is None else self.seed + site_id
        return RandomizedSite(site_id, self.num_sites, self.epsilon, seed=site_seed)
