"""Historical quantile tracking driven by variability (the Tao et al. connection).

Tao, Yi, Sheng, Pei and Li study the problem the paper's block partition comes
from: over an insert/delete stream of values, maintain a summary of the
*entire history* of the dataset ``D(t)`` so that, for any past time ``t`` and
rank ``r``, the summary returns an element whose rank in ``D(t)`` is within
``eps |D(t)|``.  The paper restates their bounds in terms of the
``|D|``-variability: a lower bound of ``Omega(v/eps)`` and upper bounds of
roughly ``(1/eps) * polylog(1/eps) * v``.

:class:`HistoricalQuantileTracker` reproduces the phenomenon with a simple
checkpointing scheme driven by the same variability measure:

* while consuming the stream it maintains the exact current multiset (the
  *stream processor* may use linear memory; the object of study is the size of
  the retained **summary**);
* every time the ``|D|``-variability has grown by ``eps/2`` since the last
  checkpoint, it stores a compressed snapshot — ``O(1/eps)`` evenly spaced
  quantiles of the current dataset;
* a historical query at time ``t`` is answered from the last checkpoint at or
  before ``t``.

Between checkpoints fewer than ``(eps/2) * max|D|`` updates occur (each update
contributes at least ``1/max|D|`` to the variability), and one update moves
any rank by at most one, so the answer's rank error at time ``t`` is at most
``eps/2 * max|D| + eps/2 * |D(t)|``, which is within ``~eps |D(t)|`` whenever
``|D|`` does not swing by more than a constant factor inside a checkpoint
interval (and empirically well within it; the E15 benchmark measures it).
The number of checkpoints is at most ``2 v / eps + 1``, so the summary size is
``O(v / eps^2)`` values — proportional to ``v``, not to the stream length,
which is the qualitative claim being reproduced.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, QueryError, StreamError

__all__ = ["ValueUpdate", "QuantileCheckpoint", "HistoricalQuantileTracker"]


@dataclass(frozen=True)
class ValueUpdate:
    """One insert or delete of a value in the dataset ``D``.

    Attributes:
        value: The value being inserted or deleted.
        delta: ``+1`` for insert, ``-1`` for delete.
    """

    value: float
    delta: int

    def __post_init__(self) -> None:
        if self.delta not in (-1, 1):
            raise StreamError(f"value updates must be +-1, got {self.delta}")


@dataclass(frozen=True)
class QuantileCheckpoint:
    """A compressed snapshot of the dataset at one point in time.

    Attributes:
        time: The timestep the snapshot was taken after.
        size: ``|D(time)|``.
        quantile_values: Evenly spaced quantiles of ``D(time)`` (ascending).
    """

    time: int
    size: int
    quantile_values: Tuple[float, ...]

    def query_rank(self, rank: int) -> float:
        """Return the stored quantile closest to the requested rank."""
        if self.size == 0:
            raise QueryError(f"dataset was empty at time {self.time}")
        if not self.quantile_values:
            raise QueryError(f"checkpoint at time {self.time} holds no quantiles")
        fraction = min(max(rank / self.size, 0.0), 1.0)
        index = min(
            len(self.quantile_values) - 1,
            max(0, int(round(fraction * (len(self.quantile_values) - 1)))),
        )
        return self.quantile_values[index]


class HistoricalQuantileTracker:
    """Checkpointed summary of the history of an insert/delete value stream."""

    def __init__(self, epsilon: float, quantiles_per_checkpoint: Optional[int] = None) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.quantiles_per_checkpoint = (
            quantiles_per_checkpoint
            if quantiles_per_checkpoint is not None
            else max(2, int(math.ceil(4.0 / epsilon)))
        )
        if self.quantiles_per_checkpoint < 2:
            raise ConfigurationError("need at least two quantiles per checkpoint")
        self._sorted_values: List[float] = []
        self._time = 0
        self._variability = 0.0
        self._variability_at_checkpoint = -math.inf
        self._checkpoints: List[QuantileCheckpoint] = []

    # -- stream consumption ---------------------------------------------------

    @property
    def time(self) -> int:
        """Number of updates consumed."""
        return self._time

    @property
    def current_size(self) -> int:
        """Current dataset size ``|D(t)|``."""
        return len(self._sorted_values)

    @property
    def variability(self) -> float:
        """The ``|D|``-variability accumulated so far."""
        return self._variability

    @property
    def checkpoints(self) -> List[QuantileCheckpoint]:
        """All checkpoints taken so far (the retained summary)."""
        return list(self._checkpoints)

    def summary_size_values(self) -> int:
        """Total number of values retained across all checkpoints."""
        return sum(len(c.quantile_values) for c in self._checkpoints)

    def update(self, update: ValueUpdate) -> None:
        """Consume one insert/delete of a value."""
        self._time += 1
        if update.delta > 0:
            bisect.insort(self._sorted_values, update.value)
        else:
            index = bisect.bisect_left(self._sorted_values, update.value)
            if index >= len(self._sorted_values) or self._sorted_values[index] != update.value:
                raise StreamError(
                    f"delete of value {update.value} at time {self._time}, "
                    "but it is not present in the dataset"
                )
            self._sorted_values.pop(index)
        size = len(self._sorted_values)
        self._variability += 1.0 if size == 0 else min(1.0, 1.0 / size)
        if self._variability - self._variability_at_checkpoint >= self.epsilon / 2.0:
            self._take_checkpoint()

    def update_many(self, updates: Sequence[ValueUpdate]) -> None:
        """Consume a sequence of updates."""
        for update in updates:
            self.update(update)

    def _take_checkpoint(self) -> None:
        size = len(self._sorted_values)
        if size == 0:
            quantile_values: Tuple[float, ...] = ()
        else:
            positions = [
                min(size - 1, int(round(i * (size - 1) / (self.quantiles_per_checkpoint - 1))))
                for i in range(self.quantiles_per_checkpoint)
            ]
            quantile_values = tuple(self._sorted_values[p] for p in positions)
        self._checkpoints.append(
            QuantileCheckpoint(time=self._time, size=size, quantile_values=quantile_values)
        )
        self._variability_at_checkpoint = self._variability

    # -- historical queries ---------------------------------------------------

    def _checkpoint_at(self, time: int) -> QuantileCheckpoint:
        if not self._checkpoints:
            raise QueryError("no checkpoints have been taken yet")
        if time < self._checkpoints[0].time:
            raise QueryError(
                f"query time {time} precedes the first checkpoint at {self._checkpoints[0].time}"
            )
        times = [c.time for c in self._checkpoints]
        index = bisect.bisect_right(times, time) - 1
        return self._checkpoints[index]

    def query_quantile(self, time: int, phi: float) -> float:
        """Return an approximate ``phi``-quantile of ``D(time)`` for a past time."""
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        checkpoint = self._checkpoint_at(time)
        rank = max(1, int(math.ceil(phi * max(checkpoint.size, 1))))
        return checkpoint.query_rank(rank)

    def query_rank(self, time: int, rank: int) -> float:
        """Return an element whose rank in ``D(time)`` is approximately ``rank``."""
        checkpoint = self._checkpoint_at(time)
        return checkpoint.query_rank(rank)
