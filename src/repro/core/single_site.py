"""Single-site aggregate tracking (Section 5.2 and Appendix I).

When ``k = 1`` the site always knows the exact value of the aggregate
``f(n)``, and the only question is when to refresh the coordinator's copy.
The paper's algorithm is one line: *whenever* ``|f - fhat| > eps * |f|``
*send f to the coordinator*.  Appendix I shows, by a potential argument, that
the number of messages is at most the total increase of the potential
``Phi(n) = |f(n) - fhat(n)| / |f(n)|``, which is at most
``(1 + eps) * v(n)`` — i.e. ``O(v(n) / eps)`` messages of one word each
(each message "spends" at least ``eps`` of accumulated potential).

Unlike the Section 3 trackers this algorithm accepts arbitrary integer deltas
(not just ``+-1``) because the site evaluates ``f`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.variability import VariabilityTracker
from repro.exceptions import ConfigurationError
from repro.types import EstimateRecord

__all__ = ["SingleSiteTracker", "SingleSiteResult", "run_single_site"]


@dataclass
class SingleSiteResult:
    """Outcome of a single-site tracking run.

    Attributes:
        records: Per-timestep records of value, estimate and message count.
        messages: Total messages sent to the coordinator.
        variability: The f-variability of the processed stream.
    """

    records: List[EstimateRecord] = field(default_factory=list)
    messages: int = 0
    variability: float = 0.0

    def max_relative_error(self) -> float:
        """Largest relative error over the run (infinite if wrong at ``f = 0``)."""
        worst = 0.0
        for record in self.records:
            if record.true_value == 0:
                if record.absolute_error > 1e-9:
                    return float("inf")
                continue
            worst = max(worst, record.absolute_error / abs(record.true_value))
        return worst


class SingleSiteTracker:
    """Online tracker for the ``k = 1`` problem.

    The tracker plays both roles: it maintains the exact value (the site) and
    the last transmitted value (the coordinator's copy), and counts one
    message per refresh.
    """

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._value = 0
        self._estimate = 0
        self._messages = 0
        self._time = 0
        self._variability = VariabilityTracker()

    @property
    def value(self) -> int:
        """Exact current value ``f(t)`` held by the site."""
        return self._value

    @property
    def estimate(self) -> int:
        """The coordinator's current copy ``fhat(t)``."""
        return self._estimate

    @property
    def messages(self) -> int:
        """Messages sent to the coordinator so far."""
        return self._messages

    @property
    def variability(self) -> float:
        """f-variability of the updates processed so far."""
        return self._variability.total

    def update(self, delta: int) -> bool:
        """Process one update ``f'(t) = delta``; return True if a message was sent."""
        self._time += 1
        self._value += delta
        self._variability.update(delta)
        error = abs(self._value - self._estimate)
        if error > self.epsilon * abs(self._value):
            self._estimate = self._value
            self._messages += 1
            return True
        return False


def run_single_site(deltas: Sequence[int], epsilon: float) -> SingleSiteResult:
    """Run the Appendix I tracker over a delta sequence and collect records."""
    tracker = SingleSiteTracker(epsilon)
    result = SingleSiteResult()
    for time, delta in enumerate(deltas, start=1):
        tracker.update(delta)
        result.records.append(
            EstimateRecord(
                time=time,
                true_value=tracker.value,
                estimate=float(tracker.estimate),
                messages=tracker.messages,
                bits=tracker.messages * 64,
            )
        )
    result.messages = tracker.messages
    result.variability = tracker.variability
    return result
