"""Thresholded monitoring on top of the continuous trackers.

Section 2 recalls the original thresholded problem ``(k, f, tau, eps)`` of
Cormode, Muthukrishnan and Yi: at any time the coordinator must be able to say
whether ``f(D) >= tau`` or ``f(D) <= (1 - eps) tau`` (anything goes in
between).  A continuous tracker with relative error ``eps/3`` answers this for
*every* threshold simultaneously: report "over" when the estimate is at least
``(1 - eps/2) tau`` and "under" otherwise.  :class:`ThresholdMonitor` packages
that reduction, including the alert stream a monitoring dashboard would
consume (fire when a threshold is first crossed, clear when the value falls
back below the hysteresis band).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import ConfigurationError
from repro.monitoring.runner import TrackingResult

__all__ = ["ThresholdDecision", "ThresholdAlert", "ThresholdMonitor"]


@dataclass(frozen=True)
class ThresholdDecision:
    """The monitor's answer for one threshold at one time.

    Attributes:
        time: The timestep of the decision.
        threshold: The threshold ``tau``.
        over: True if the monitor reports ``f >= tau`` (allowed whenever the
            true value is above ``(1 - eps) tau``).
    """

    time: int
    threshold: float
    over: bool


@dataclass(frozen=True)
class ThresholdAlert:
    """A state change of one threshold (fired or cleared)."""

    time: int
    threshold: float
    fired: bool


class ThresholdMonitor:
    """Answer thresholded queries from a continuous tracker's estimates."""

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon

    def tracker_epsilon(self) -> float:
        """The relative error the underlying tracker must be run with."""
        return self.epsilon / 3.0

    def decide(self, estimate: float, threshold: float) -> bool:
        """Decide "over" / "under" for one threshold given the current estimate."""
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        return estimate >= (1.0 - self.epsilon / 2.0) * threshold

    def decisions(
        self, result: TrackingResult, threshold: float
    ) -> List[ThresholdDecision]:
        """Evaluate one threshold over a whole tracking run."""
        return [
            ThresholdDecision(
                time=record.time,
                threshold=threshold,
                over=self.decide(record.estimate, threshold),
            )
            for record in result.records
        ]

    def alerts(self, result: TrackingResult, threshold: float) -> List[ThresholdAlert]:
        """Return the fire/clear transitions of one threshold over a run."""
        alerts: List[ThresholdAlert] = []
        over = False
        for decision in self.decisions(result, threshold):
            if decision.over != over:
                over = decision.over
                alerts.append(
                    ThresholdAlert(time=decision.time, threshold=threshold, fired=over)
                )
        return alerts

    def violations(
        self, result: TrackingResult, threshold: float
    ) -> int:
        """Count decisions inconsistent with the (k, f, tau, eps) promise.

        A decision is wrong only when it reports "over" while the true value is
        at most ``(1 - eps) tau``, or "under" while the true value is at least
        ``tau``; the band in between allows either answer.
        """
        wrong = 0
        for record, decision in zip(result.records, self.decisions(result, threshold)):
            if decision.over and record.true_value <= (1.0 - self.epsilon) * threshold:
                wrong += 1
            elif not decision.over and record.true_value >= threshold:
                wrong += 1
        return wrong

    def sweep(
        self, result: TrackingResult, thresholds: Sequence[float]
    ) -> List[int]:
        """Return the violation count for each threshold in ``thresholds``."""
        if not thresholds:
            raise ConfigurationError("thresholds must be non-empty")
        return [self.violations(result, threshold) for threshold in thresholds]
