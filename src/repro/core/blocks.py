"""Offline reference implementation of the block partition of Section 3.1.

The distributed trackers divide time into blocks ``B_j = [n_j + 1, n_{j+1}]``
so that, at each block boundary, the coordinator knows ``n`` and ``f(n)``
exactly, and so that the variability grows by at least a constant inside every
completed block.  The block *level* ``r`` is chosen from ``|f(n_j)|`` so that

* ``r = 0`` if ``|f(n_j)| < 4k``, and otherwise
* ``2^r * 2k <= |f(n_j)| < 2^r * 4k``.

A block at level ``r`` ends once roughly ``max(1, 2^(r-1)) * k`` updates have
been observed since the block began.  This module applies the same rule
centrally (the distributed implementation lives in
:mod:`repro.core.template`), which is what the structural tests and the E4
benchmark use to check the paper's per-block facts:

* block length is between ``ceil(2^(r-1)) k`` and ``2^r k``  (within a site
  rounding term in the distributed version);
* ``|f(n)| <= 2^r * 5k`` for all ``n`` in the block, and ``|f(n)| >= 2^r k``
  when ``r >= 1``;
* the variability increases by at least ``1/10`` over every completed block
  (the paper states ``1/5`` using the looser length bound ``2^r k``; the
  tighter trigger threshold ``ceil(2^(r-1)) k`` gives ``1/10`` for ``r >= 1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import ConfigurationError
from repro.core.variability import variability_increment

__all__ = ["block_level", "block_trigger_threshold", "Block", "BlockPartitioner"]


def block_level(value: int, num_sites: int) -> int:
    """Return the block level ``r`` for a boundary value ``f(n_j)``.

    ``r = 0`` when ``|value| < 4k``; otherwise ``r`` is the unique integer with
    ``2^r * 2k <= |value| < 2^r * 4k``.
    """
    if num_sites < 1:
        raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
    magnitude = abs(value)
    if magnitude < 4 * num_sites:
        return 0
    return int(math.floor(math.log2(magnitude / (2.0 * num_sites))))


def block_trigger_threshold(level: int, num_sites: int) -> int:
    """Number of observed updates after which a block at ``level`` ends.

    This is ``ceil(2^(r-1)) * k``: 1 update per site for ``r = 0`` and
    ``2^(r-1)`` per site otherwise.
    """
    if level < 0:
        raise ConfigurationError(f"level must be >= 0, got {level}")
    per_site = max(1, int(math.ceil(2 ** (level - 1))))
    return per_site * num_sites


@dataclass(frozen=True)
class Block:
    """One completed (or trailing partial) block of the partition.

    Attributes:
        index: Block number ``j`` starting at 0.
        level: The level ``r`` the block was run at.
        start_time: First timestep in the block (``n_j + 1``).
        end_time: Last timestep in the block (``n_{j+1}``).
        start_value: ``f(n_j)``, the exact value at the preceding boundary.
        end_value: ``f(n_{j+1})``.
        variability_gain: Increase in ``v`` over the block.
        complete: Whether the block reached its trigger threshold (the final
            block of a finite stream may be cut short).
    """

    index: int
    level: int
    start_time: int
    end_time: int
    start_value: int
    end_value: int
    variability_gain: float
    complete: bool

    @property
    def length(self) -> int:
        """Number of timesteps in the block."""
        return self.end_time - self.start_time + 1


class BlockPartitioner:
    """Streaming construction of the Section 3.1 block partition.

    Feed updates with :meth:`update`; completed blocks accumulate in
    :attr:`blocks`.  Call :meth:`finish` at end of stream to flush the trailing
    partial block (if any).
    """

    def __init__(self, num_sites: int) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
        self._num_sites = num_sites
        self._time = 0
        self._value = 0
        self._level = 0
        self._block_index = 0
        self._block_start_time = 1
        self._block_start_value = 0
        self._block_updates = 0
        self._block_variability = 0.0
        self._finished = False
        self.blocks: List[Block] = []

    @property
    def num_sites(self) -> int:
        """Number of sites ``k`` the partition is computed for."""
        return self._num_sites

    @property
    def current_level(self) -> int:
        """Level ``r`` of the block currently being filled."""
        return self._level

    @property
    def value(self) -> int:
        """Current stream value ``f(t)``."""
        return self._value

    def update(self, delta: int) -> None:
        """Consume one unit update ``f'(t) = delta`` (must be ``+-1``)."""
        if self._finished:
            raise ConfigurationError("partitioner already finished")
        if delta not in (-1, 1):
            raise ConfigurationError(
                f"block partition requires unit updates, got {delta}; "
                "expand larger updates with repro.core.expansion first"
            )
        self._time += 1
        self._value += delta
        self._block_updates += 1
        self._block_variability += variability_increment(self._value, delta)
        if self._block_updates >= block_trigger_threshold(self._level, self._num_sites):
            self._close_block(complete=True)

    def update_many(self, deltas: Sequence[int]) -> None:
        """Consume a sequence of unit updates."""
        for delta in deltas:
            self.update(delta)

    def finish(self) -> List[Block]:
        """Flush the trailing partial block and return all blocks."""
        if not self._finished:
            if self._block_updates > 0:
                self._close_block(complete=False)
            self._finished = True
        return self.blocks

    def _close_block(self, complete: bool) -> None:
        block = Block(
            index=self._block_index,
            level=self._level,
            start_time=self._block_start_time,
            end_time=self._time,
            start_value=self._block_start_value,
            end_value=self._value,
            variability_gain=self._block_variability,
            complete=complete,
        )
        self.blocks.append(block)
        self._block_index += 1
        self._block_start_time = self._time + 1
        self._block_start_value = self._value
        self._block_updates = 0
        self._block_variability = 0.0
        self._level = block_level(self._value, self._num_sites)
