"""Deterministic variability-aware counter (Section 3.3).

Within each block at level ``r`` every site tracks its local drift ``d_i``
(the sum of updates it received this block) and the change ``delta_i`` since
it last reported.  The template slots are:

* **Condition** — report if ``r = 0`` and ``|delta_i| = 1`` (i.e. after every
  update), or if ``|delta_i| >= eps * 2^r``.
* **Message** — the new value of ``d_i``.
* **Update** — the coordinator sets ``d_hat_i = d_i``.

Guarantee: ``|f(n) - fhat(n)| <= eps * |f(n)|`` at every timestep, using at
most ``O(k v(n) / eps)`` messages in addition to the ``O(k v(n))`` messages of
the block partition.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.template import (
    _SCALAR_SPAN,
    BlockTrackerFactory,
    BlockTrackingCoordinator,
    BlockTrackingSite,
)
from repro.monitoring.messages import (
    COORDINATOR,
    HEADER_BITS,
    Message,
    MessageKind,
    integer_bit_length,
    integer_bit_lengths,
)

__all__ = ["DeterministicSite", "DeterministicCoordinator", "DeterministicCounter"]


class DeterministicSite(BlockTrackingSite):
    """Site side of the deterministic tracker."""

    #: Block starts only reset ``drift``/``unreported_drift`` (site) and the
    #: drift-estimate table (coordinator), so multi-block fast-forwarding may
    #: collapse consecutive resets into one.
    idempotent_block_start = True

    def __init__(self, site_id: int, num_sites: int, epsilon: float) -> None:
        super().__init__(site_id, num_sites, epsilon)
        #: d_i: drift (sum of updates) received this block.
        self.drift = 0
        #: delta_i: change in drift since the last estimation report.
        self.unreported_drift = 0

    def report_condition(self) -> bool:
        """The Section 3.3 condition for sending an estimation report."""
        if self.level == 0:
            return abs(self.unreported_drift) >= 1
        return abs(self.unreported_drift) >= self.epsilon * (2 ** self.level)

    def on_stream_update(self, time: int, delta: int) -> None:
        self.drift += delta
        self.unreported_drift += delta
        if self.report_condition():
            self.unreported_drift = 0
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"drift": self.drift},
                    time=time,
                )
            )

    def on_block_start(self, level: int) -> None:
        self.drift = 0
        self.unreported_drift = 0

    def on_stream_update_superseded(self, time: int, delta: int) -> None:
        self.drift += delta
        self.unreported_drift += delta
        if self.report_condition():
            self.unreported_drift = 0
            self._channel.charge(
                MessageKind.REPORT, 1, HEADER_BITS + integer_bit_length(self.drift)
            )

    def on_stream_batch(
        self, times: Sequence[int], deltas: np.ndarray, start: int, length: int
    ) -> int:
        """Simulate the span's estimation reports from cumulative sums.

        The Section 3.3 condition fires when the running ``|delta_i|``
        reaches ``eps * 2^r``, i.e. when the drift trajectory (a cumulative
        sum) moves ``threshold`` away from its value at the last report.  The
        coordinator keeps only the *latest* ``d_i`` per site, so within the
        span every report except the last is superseded: those are charged in
        bulk (identical bit accounting, no Python-level message dispatch) and
        only the final one is delivered as a real message.

        Two regimes share that emission logic: with ``threshold <= 1`` every
        step reports (closed form — this covers level 0 and low levels, where
        per-update dispatch is most expensive), and with ``threshold > 1``
        the report steps are found by vectorised threshold-crossing scans
        over geometrically growing segments, which bounds wasted work near a
        crossing while covering long quiet stretches in one pass.
        """
        threshold = 1.0 if self.level == 0 else self.epsilon * (2 ** self.level)
        if length < _SCALAR_SPAN:
            return self._scalar_batch(times, deltas, start, length, threshold)
        path = self.drift + np.cumsum(deltas[start : start + length])
        if threshold <= 1.0 and self.unreported_drift == 0:
            # From a zero residual every unit step crosses a threshold <= 1,
            # so every step reports (and resets the residual to zero again).
            report_offsets = None
            final_drift = int(path[-1])
            residual = 0
        else:
            # Threshold-crossing scan with resets: a report at offset o moves
            # the baseline to path[o]; the next report is the first offset
            # whose |path - baseline| reaches the threshold.
            baseline = self.drift - self.unreported_drift
            report_offsets = []
            position = 0
            while position < length:
                segment = 32
                found = -1
                while position < length:
                    stop = min(position + segment, length)
                    window = np.abs(path[position:stop] - baseline)
                    hits = np.flatnonzero(window >= threshold)
                    if hits.size:
                        found = position + int(hits[0])
                        break
                    position = stop
                    segment = min(segment * 4, 1 << 16)
                if found < 0:
                    break
                report_offsets.append(found)
                baseline = int(path[found])
                position = found + 1
            final_drift = int(path[-1])
            residual = final_drift - int(baseline)
        self._emit_reports(times, path, start, length, report_offsets)
        self.drift = final_drift
        self.unreported_drift = residual
        return length

    def _threshold_at(self, level: int) -> float:
        return 1.0 if level == 0 else self.epsilon * (2 ** level)

    def on_multiblock_window(
        self,
        deltas: np.ndarray,
        start: int,
        length: int,
        cycle_length: int,
        close_offsets: "np.ndarray | None" = None,
        levels: "np.ndarray | None" = None,
    ) -> bool:
        """Simulate the estimation side of a multi-close window in one pass.

        Every report in the window is superseded by a block close before
        the next observation point, so all of them are charged.  Dense
        regime (``threshold <= 1``): every unit step crosses the report
        condition and resets the residual, so the drift value at each step
        is the window's running sum rebased at the preceding close (drift
        resets to zero at every block start) — one cumulative sum plus an
        arithmetic baseline lookup yields all of them at once.  Sparse
        regime (``threshold > 1``): within each cycle the report offsets
        are found by the same vectorised threshold-crossing scan the
        trigger-free batch path uses — a report moves the residual baseline
        to the path value at the report, the cycle close resets both drift
        and residual, and the charged payload is the drift (path rebased at
        the cycle start), not the residual.  Cross-level windows walk the
        per-close level schedule one same-level stretch at a time, so each
        cycle runs at its own threshold.
        """
        entry_threshold = self._threshold_at(self.level)
        if (
            close_offsets is None
            and entry_threshold <= 1.0
            and self.unreported_drift == 0
        ):
            # Uniform dense window from a zero residual: every step reports.
            window = deltas[start : start + length]
            path = np.cumsum(window)
            drifts = np.empty(length, dtype=np.int64)
            drifts[0] = self.drift + int(window[0])
            if length > 1:
                offsets = np.arange(1, length)
                previous_close = ((offsets - 1) // cycle_length) * cycle_length
                drifts[1:] = path[1:] - path[previous_close]
            self._channel.charge(
                MessageKind.REPORT,
                length,
                int(integer_bit_lengths(drifts).sum()) + length * HEADER_BITS,
            )
            self.drift = 0
            self.unreported_drift = 0
            return True
        window = deltas[start : start + length]
        path = np.cumsum(window)
        if close_offsets is None:
            close_offsets = np.arange(0, length, cycle_length, dtype=np.int64)
            levels = np.full(close_offsets.size, self.level, dtype=np.int64)
        n_reports = 0
        total_bits = 0
        # Entry step: processed at the current level with the carried-over
        # residual; the first close then wipes both drift and residual.
        if abs(self.unreported_drift + int(window[0])) >= entry_threshold:
            n_reports += 1
            total_bits += HEADER_BITS + integer_bit_length(
                self.drift + int(window[0])
            )
        closes = int(close_offsets.size)
        cycle_levels = levels[: closes - 1]
        if closes > 1 and self.span_kernel.descent and bool(
            (
                (cycle_levels == 0)
                | (self.epsilon * np.exp2(cycle_levels) <= 1.0)
            ).all()
        ):
            # Every cycle is dense (its threshold <= 1, so every step
            # reports): the whole schedule collapses to one pass — rebase
            # each offset at its cycle's preceding close via ``np.repeat``
            # over the cycle lengths instead of walking same-level
            # stretches, which a level schedule oscillating at a band edge
            # fragments into O(closes) Python iterations.
            first = int(close_offsets[0]) + 1
            last = int(close_offsets[-1])
            offs = np.arange(first, last + 1)
            baselines = np.repeat(
                path[close_offsets[:-1]], np.diff(close_offsets)
            )
            drifts = path[offs] - baselines
            n_reports += int(offs.size)
            total_bits += int(offs.size) * HEADER_BITS + int(
                integer_bit_lengths(drifts).sum()
            )
            if n_reports:
                self._channel.charge(MessageKind.REPORT, n_reports, total_bits)
            self.drift = 0
            self.unreported_drift = 0
            return True
        j = 1
        while j < closes:
            # Stretch of consecutive cycles at the same (post-close) level.
            level = int(levels[j - 1])
            j_end = j
            while j_end + 1 < closes and int(levels[j_end]) == level:
                j_end += 1
            threshold = self._threshold_at(level)
            first = int(close_offsets[j - 1]) + 1
            last = int(close_offsets[j_end])
            cycle = int(close_offsets[j]) - int(close_offsets[j - 1])
            if threshold <= 1.0:
                # Dense stretch: every step reports; rebase at each cycle's
                # preceding close arithmetically.
                offs = np.arange(first, last + 1)
                stretch_base = first - 1
                previous_close = (
                    stretch_base + ((offs - stretch_base - 1) // cycle) * cycle
                )
                drifts = path[offs] - path[previous_close]
                n_reports += int(offs.size)
                total_bits += int(offs.size) * HEADER_BITS + int(
                    integer_bit_lengths(drifts).sum()
                )
            else:
                # Sparse stretch: per-cycle threshold-crossing scan with the
                # residual baseline moving to each report's path value.
                for close_index in range(j, j_end + 1):
                    cycle_start = int(close_offsets[close_index - 1])
                    cycle_end = int(close_offsets[close_index])
                    base_value = int(path[cycle_start])
                    baseline = base_value
                    position = cycle_start + 1
                    segment = 32
                    while position <= cycle_end:
                        stop = min(position + segment, cycle_end + 1)
                        hits = np.flatnonzero(
                            np.abs(path[position:stop] - baseline) >= threshold
                        )
                        if hits.size:
                            offset = position + int(hits[0])
                            n_reports += 1
                            total_bits += HEADER_BITS + integer_bit_length(
                                int(path[offset]) - base_value
                            )
                            baseline = int(path[offset])
                            position = offset + 1
                            segment = 32
                        else:
                            position = stop
                            segment = min(segment * 4, 1 << 16)
            j = j_end + 1
        if n_reports:
            self._channel.charge(MessageKind.REPORT, n_reports, total_bits)
        self.drift = 0
        self.unreported_drift = 0
        return True

    def _scalar_batch(
        self, times, deltas: np.ndarray, start: int, length: int, threshold: float
    ) -> int:
        """Plain-Python span simulation; faster than NumPy below ~64 steps.

        Same semantics as the vectorised path: superseded reports (all but
        the span's last) are charged, the last is delivered for real.
        """
        drift = self.drift
        unreported = self.unreported_drift
        charged = 0
        charged_bits = 0
        last_offset = -1
        last_drift = 0
        for offset, delta in enumerate(deltas[start : start + length].tolist()):
            drift += delta
            unreported += delta
            if abs(unreported) >= threshold:
                unreported = 0
                if last_offset >= 0:
                    charged += 1
                    charged_bits += HEADER_BITS + integer_bit_length(last_drift)
                last_offset = offset
                last_drift = drift
        if charged:
            self._channel.charge(MessageKind.REPORT, charged, charged_bits)
        if last_offset >= 0:
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"drift": last_drift},
                    time=times[start + last_offset],
                )
            )
        self.drift = drift
        self.unreported_drift = unreported
        return length

    def _emit_reports(self, times, path, start, length, report_offsets) -> None:
        """Charge all span reports except the last; send the last for real.

        ``report_offsets`` is a sorted list of reporting offsets, or ``None``
        meaning every offset reports (the dense regime, whose superseded
        report bits are summed with vectorised bit lengths).
        """
        if report_offsets is None:
            if length > 1:
                superseded = integer_bit_lengths(path[:-1])
                self._channel.charge(
                    MessageKind.REPORT,
                    length - 1,
                    int(superseded.sum()) + (length - 1) * HEADER_BITS,
                )
            last_offset = length - 1
        else:
            if not report_offsets:
                return
            for offset in report_offsets[:-1]:
                value = int(path[offset])
                self._channel.charge(
                    MessageKind.REPORT,
                    1,
                    HEADER_BITS + integer_bit_length(value),
                )
            last_offset = report_offsets[-1]
        self.send(
            Message(
                kind=MessageKind.REPORT,
                sender=self.site_id,
                receiver=COORDINATOR,
                payload={"drift": int(path[last_offset])},
                time=times[start + last_offset],
            )
        )


class DeterministicCoordinator(BlockTrackingCoordinator):
    """Coordinator side of the deterministic tracker."""

    idempotent_block_start = True

    def __init__(self, num_sites: int, epsilon: float) -> None:
        super().__init__(num_sites, epsilon)
        self._drift_estimates: Dict[int, int] = {}

    def drift_estimate(self) -> float:
        return float(sum(self._drift_estimates.values()))

    def on_estimation_report(self, message: Message) -> None:
        self._drift_estimates[message.sender] = int(message.payload["drift"])

    def on_block_start(self, level: int) -> None:
        self._drift_estimates = {}


class DeterministicCounter(BlockTrackerFactory):
    """Factory for the deterministic tracker of Section 3.3.

    Example:
        >>> from repro.core import DeterministicCounter
        >>> from repro.streams import random_walk_stream, assign_sites
        >>> counter = DeterministicCounter(num_sites=4, epsilon=0.1)
        >>> updates = assign_sites(random_walk_stream(1000, seed=7), num_sites=4)
        >>> result = counter.track(updates)
        >>> result.max_relative_error() <= 0.1
        True
    """

    def build_coordinator(self) -> DeterministicCoordinator:
        return DeterministicCoordinator(self.num_sites, self.epsilon)

    def build_site(self, site_id: int) -> DeterministicSite:
        return DeterministicSite(site_id, self.num_sites, self.epsilon)
