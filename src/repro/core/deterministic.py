"""Deterministic variability-aware counter (Section 3.3).

Within each block at level ``r`` every site tracks its local drift ``d_i``
(the sum of updates it received this block) and the change ``delta_i`` since
it last reported.  The template slots are:

* **Condition** — report if ``r = 0`` and ``|delta_i| = 1`` (i.e. after every
  update), or if ``|delta_i| >= eps * 2^r``.
* **Message** — the new value of ``d_i``.
* **Update** — the coordinator sets ``d_hat_i = d_i``.

Guarantee: ``|f(n) - fhat(n)| <= eps * |f(n)|`` at every timestep, using at
most ``O(k v(n) / eps)`` messages in addition to the ``O(k v(n))`` messages of
the block partition.
"""

from __future__ import annotations

from typing import Dict

from repro.core.template import (
    BlockTrackerFactory,
    BlockTrackingCoordinator,
    BlockTrackingSite,
)
from repro.monitoring.messages import COORDINATOR, Message, MessageKind

__all__ = ["DeterministicSite", "DeterministicCoordinator", "DeterministicCounter"]


class DeterministicSite(BlockTrackingSite):
    """Site side of the deterministic tracker."""

    def __init__(self, site_id: int, num_sites: int, epsilon: float) -> None:
        super().__init__(site_id, num_sites, epsilon)
        #: d_i: drift (sum of updates) received this block.
        self.drift = 0
        #: delta_i: change in drift since the last estimation report.
        self.unreported_drift = 0

    def report_condition(self) -> bool:
        """The Section 3.3 condition for sending an estimation report."""
        if self.level == 0:
            return abs(self.unreported_drift) >= 1
        return abs(self.unreported_drift) >= self.epsilon * (2 ** self.level)

    def on_stream_update(self, time: int, delta: int) -> None:
        self.drift += delta
        self.unreported_drift += delta
        if self.report_condition():
            self.unreported_drift = 0
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"drift": self.drift},
                    time=time,
                )
            )

    def on_block_start(self, level: int) -> None:
        self.drift = 0
        self.unreported_drift = 0


class DeterministicCoordinator(BlockTrackingCoordinator):
    """Coordinator side of the deterministic tracker."""

    def __init__(self, num_sites: int, epsilon: float) -> None:
        super().__init__(num_sites, epsilon)
        self._drift_estimates: Dict[int, int] = {}

    def drift_estimate(self) -> float:
        return float(sum(self._drift_estimates.values()))

    def on_estimation_report(self, message: Message) -> None:
        self._drift_estimates[message.sender] = int(message.payload["drift"])

    def on_block_start(self, level: int) -> None:
        self._drift_estimates = {}


class DeterministicCounter(BlockTrackerFactory):
    """Factory for the deterministic tracker of Section 3.3.

    Example:
        >>> from repro.core import DeterministicCounter
        >>> from repro.streams import random_walk_stream, assign_sites
        >>> counter = DeterministicCounter(num_sites=4, epsilon=0.1)
        >>> updates = assign_sites(random_walk_stream(1000, seed=7), num_sites=4)
        >>> result = counter.track(updates)
        >>> result.max_relative_error() <= 0.1
        True
    """

    def build_coordinator(self) -> DeterministicCoordinator:
        return DeterministicCoordinator(self.num_sites, self.epsilon)

    def build_site(self, site_id: int) -> DeterministicSite:
        return DeterministicSite(site_id, self.num_sites, self.epsilon)
