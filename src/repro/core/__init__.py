"""Core contribution: variability and variability-aware tracking algorithms.

This package implements the paper's main machinery:

* :mod:`repro.core.variability` — the variability parameter ``v(n)`` of
  Section 2, in offline and online (streaming) form, for both f-variability
  and F1-variability.
* :mod:`repro.core.blocks` — the deterministic partition of time into
  constant-variability blocks (Section 3.1), as an offline reference
  implementation used to check the structural facts of that section.
* :mod:`repro.core.deterministic` / :mod:`repro.core.randomized` — the
  distributed trackers of Sections 3.3 and 3.4, built on the shared
  coordinator/site template of Section 3.2.
* :mod:`repro.core.single_site` — the ``k = 1`` aggregate tracker of
  Section 5.2 / Appendix I.
* :mod:`repro.core.frequencies` — distributed item-frequency tracking of
  Appendix H, optionally on top of Count-Min / CR-precis sketches.
* :mod:`repro.core.expansion` — expansion of large updates into unit updates
  (Appendix C).
"""

from repro.core.blocks import Block, BlockPartitioner
from repro.core.deterministic import DeterministicCounter
from repro.core.expansion import expand_stream, expand_update, expansion_variability_overhead
from repro.core.frequencies import FrequencyTracker, FrequencyTrackingResult
from repro.core.history_quantiles import HistoricalQuantileTracker, ValueUpdate
from repro.core.threshold import ThresholdMonitor
from repro.core.randomized import RandomizedCounter
from repro.core.single_site import SingleSiteTracker, run_single_site
from repro.core.variability import (
    VariabilityTracker,
    f1_variability,
    variability,
    variability_increments,
)

__all__ = [
    "Block",
    "BlockPartitioner",
    "DeterministicCounter",
    "expand_stream",
    "expand_update",
    "expansion_variability_overhead",
    "FrequencyTracker",
    "FrequencyTrackingResult",
    "HistoricalQuantileTracker",
    "ValueUpdate",
    "ThresholdMonitor",
    "RandomizedCounter",
    "SingleSiteTracker",
    "run_single_site",
    "VariabilityTracker",
    "f1_variability",
    "variability",
    "variability_increments",
]
