"""The variability parameter ``v(n)`` of Section 2.

The f-variability of a stream is

    v(n) = sum_{t=1..n} v'(t),    v'(t) = min(1, |f'(t) / f(t)|),

with the convention that ``v'(t) = 1`` whenever ``f(t) = 0`` (the paper
handles that case by communicating it explicitly at every such timestep).
The F1-variability used by frequency tracking (Appendix H) replaces the
increment by ``v'(t) = min(1, 1 / F1(t))`` because every item update changes
some frequency by one while the error scale is ``eps * F1``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.exceptions import StreamError

__all__ = [
    "variability_increment",
    "variability_increments",
    "variability",
    "f1_variability",
    "VariabilityTracker",
]


def variability_increment(value: int, delta: int) -> float:
    """Return ``v'(t)`` given the new value ``f(t)`` and the change ``f'(t)``.

    Args:
        value: The value ``f(t)`` *after* applying the update.
        delta: The update ``f'(t) = f(t) - f(t-1)``.

    Returns:
        ``min(1, |delta / value|)``, with the value-zero convention above.
    """
    if value == 0:
        return 1.0
    if delta == 0:
        return 0.0
    return min(1.0, abs(delta) / abs(value))


def variability_increments(deltas: Sequence[int], start: int = 0) -> List[float]:
    """Return the per-timestep increments ``v'(1..n)`` for a delta sequence."""
    increments = []
    value = start
    for delta in deltas:
        value += delta
        increments.append(variability_increment(value, delta))
    return increments


def variability(deltas: Sequence[int], start: int = 0) -> float:
    """Return the total f-variability ``v(n)`` of a delta sequence.

    Args:
        deltas: The updates ``f'(1..n)``.
        start: The initial value ``f(0)`` (0 in the paper unless stated).
    """
    return float(sum(variability_increments(deltas, start=start)))


def f1_variability(f1_values: Sequence[int]) -> float:
    """Return the F1-variability of an item stream given its ``F1(t)`` values.

    Appendix H defines the per-step increment as ``min(1, 1 / F1(t))`` because
    each timestep inserts or deletes exactly one item.  ``F1(t) = 0`` steps
    contribute 1, mirroring the f-variability convention.

    Args:
        f1_values: The dataset sizes ``F1(1..n)`` after each update.

    Raises:
        StreamError: If any ``F1(t)`` is negative (more deletions than
            insertions of some item).
    """
    total = 0.0
    for value in f1_values:
        if value < 0:
            raise StreamError(f"F1 must never be negative, got {value}")
        total += 1.0 if value == 0 else min(1.0, 1.0 / value)
    return total


class VariabilityTracker:
    """Online (single-pass, O(1)-space) tracker of the variability of a stream.

    The tracker consumes one update at a time and maintains the current value
    ``f(t)``, the total variability ``v(t)``, and a few useful decompositions
    (total insertions ``f+``, total deletions ``f-``, number of zero
    crossings) that the nearly-monotone analysis of Theorem 2.1 refers to.
    """

    def __init__(self, start: int = 0) -> None:
        self._value = start
        self._time = 0
        self._total = 0.0
        self._positive_mass = 0
        self._negative_mass = 0
        self._zero_count = 0
        self._last_increment = 0.0

    @property
    def time(self) -> int:
        """Number of updates consumed so far."""
        return self._time

    @property
    def value(self) -> int:
        """Current value ``f(t)``."""
        return self._value

    @property
    def total(self) -> float:
        """Total variability ``v(t)`` accumulated so far."""
        return self._total

    @property
    def last_increment(self) -> float:
        """The most recent per-step increment ``v'(t)``."""
        return self._last_increment

    @property
    def positive_mass(self) -> int:
        """Total insertions ``f+(t) = sum of positive deltas``."""
        return self._positive_mass

    @property
    def negative_mass(self) -> int:
        """Total deletions ``f-(t) = sum of |negative deltas|``."""
        return self._negative_mass

    @property
    def zero_count(self) -> int:
        """Number of timesteps at which ``f(t) = 0``."""
        return self._zero_count

    def update(self, delta: int) -> float:
        """Consume one update ``f'(t) = delta`` and return the increment ``v'(t)``."""
        self._time += 1
        self._value += delta
        if delta > 0:
            self._positive_mass += delta
        elif delta < 0:
            self._negative_mass += -delta
        if self._value == 0:
            self._zero_count += 1
        increment = variability_increment(self._value, delta)
        self._total += increment
        self._last_increment = increment
        return increment

    def update_many(self, deltas: Iterable[int]) -> float:
        """Consume a sequence of updates and return the new total variability."""
        for delta in deltas:
            self.update(delta)
        return self._total
