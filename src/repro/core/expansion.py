"""Expansion of large updates into unit updates (Appendix C).

The Section 3 trackers assume ``f'(n) = +-1``.  Appendix C observes that a
larger update can be simulated by ``|f'(n)|`` unit updates, and that doing so
inflates the variability of that timestep by at most an ``O(log max |f'|)``
factor: for a positive jump the extra cost is a harmonic sum
(``<= (|f'|/f) (1 + H(|f'|))``), and for a negative jump it is at most
``3 |f'| / f``.
"""

from __future__ import annotations

import math
from typing import List

from repro.exceptions import StreamError
from repro.streams.model import StreamSpec

__all__ = [
    "expand_update",
    "expand_stream",
    "expansion_variability_overhead",
    "harmonic_number",
]


def harmonic_number(x: int) -> float:
    """The ``x``-th harmonic number ``H(x) = sum_{i=1..x} 1/i`` (``H(0) = 0``)."""
    if x < 0:
        raise StreamError(f"harmonic number needs x >= 0, got {x}")
    if x < 64:
        return float(sum(1.0 / i for i in range(1, x + 1)))
    # Euler–Maclaurin approximation, accurate to well below 1e-10 for x >= 64.
    return math.log(x) + 0.5772156649015329 + 1.0 / (2 * x) - 1.0 / (12 * x * x)


def expand_update(delta: int) -> List[int]:
    """Expand one update into a list of unit updates with the same total.

    A zero delta expands to the empty list (the timestep simply disappears,
    which can only lower variability).
    """
    if delta == 0:
        return []
    sign = 1 if delta > 0 else -1
    return [sign] * abs(delta)


def expand_stream(spec: StreamSpec) -> StreamSpec:
    """Expand every update of a stream into unit updates.

    The result has length ``sum_t |f'(t)|`` and the same value trajectory
    (visiting the intermediate values introduced by the expansion).
    """
    deltas: List[int] = []
    for delta in spec.deltas:
        deltas.extend(expand_update(delta))
    if not deltas:
        raise StreamError("expanded stream is empty (all deltas were zero)")
    return StreamSpec(
        name=f"{spec.name}_expanded",
        deltas=tuple(deltas),
        start=spec.start,
        params=dict(spec.params, expanded=True),
    )


def expansion_variability_overhead(value_before: int, delta: int) -> float:
    """Upper bound on the variability of the unit updates simulating ``delta``.

    Implements the two bounds of Theorem C.1 (with the paper's convention
    ``1/f = 1`` when ``f = 0``):

    * ``delta > 1``:  ``(delta / f_after) * (1 + H(delta))``;
    * ``delta < -1``: ``3 |delta| / f_after`` (plus ``|delta| / f_after`` if
      the value hits zero), capped at ``|delta|`` because each unit step
      contributes at most 1.

    Args:
        value_before: The value ``f(n-1)`` before the update.
        delta: The original (large) update ``f'(n)``.

    Returns:
        An upper bound on the summed variability increments of the expansion.
    """
    if delta in (-1, 0, 1):
        magnitude = abs(delta)
        return float(magnitude)
    value_after = value_before + delta
    scale = abs(value_after) if value_after != 0 else 1
    magnitude = abs(delta)
    if delta > 1:
        bound = (magnitude / scale) * (1.0 + harmonic_number(magnitude))
    else:
        bound = 3.0 * magnitude / scale
        if value_after == 0 or value_before == 0:
            bound += magnitude / scale
    return float(min(bound, magnitude))
