"""Shared block-based tracking template (Sections 3.1 and 3.2).

Both the deterministic and the randomized counters share the same structure:

1. **Block partition (Section 3.1).**  Every site counts the updates it has
   received since it last told the coordinator (``c_i``) and the change in
   ``f`` since the last block boundary (``f_i``).  Once ``c_i`` reaches
   ``ceil(2^(r-1))`` the site reports the count.  The coordinator accumulates
   reported counts in ``t_hat`` and, once ``t_hat`` reaches
   ``ceil(2^(r-1)) * k``, closes the block: it requests (``c_i``, ``f_i``)
   from every site, recovers the exact ``n_j`` and ``f(n_j)``, recomputes the
   level ``r`` from ``|f(n_j)|``, and broadcasts the new ``r``.

2. **Within-block estimation (Section 3.2).**  Concrete algorithms fill in a
   *condition* (when a site speaks), a *message* (what it sends) and an
   *update* (how the coordinator revises its drift estimates ``d_hat_i``).
   The coordinator's estimate is always ``f(n_j) + sum_i d_hat_i``.

Subclasses implement the hooks marked "estimation hook" below; everything
about the block protocol is handled here so that the deterministic and
randomized trackers differ only in the three template slots, exactly as in
the paper.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Sequence

import numpy as np

from repro.core.blocks import block_level
from repro.engine import DEFAULT_KERNEL
from repro.exceptions import ConfigurationError, ProtocolError, StreamError
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.messages import (
    BROADCAST_SITE,
    COORDINATOR,
    Message,
    MessageKind,
)
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.site import Site

__all__ = [
    "check_tracking_parameters",
    "BlockTrackingSite",
    "BlockTrackingCoordinator",
    "BlockTrackerFactory",
]

#: Below this run length the batched site path falls back to the per-update
#: loop: NumPy setup costs more than it saves on tiny runs.
_MIN_FAST_BATCH = 16

#: Below this span length the trackers' estimation hooks use plain-Python
#: simulation instead of NumPy (shared by the deterministic and randomized
#: sites so the crossover stays consistent).
_SCALAR_SPAN = 64


def check_tracking_parameters(num_sites: int, epsilon: float) -> None:
    """Validate the (k, eps) parameters shared by every tracker."""
    if num_sites < 1:
        raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")


class BlockTrackingSite(Site, abc.ABC):
    """Site side of the block-based template."""

    #: The span-simulation kernel driving this site's batched fast path.
    #: Class-level so one stateless instance serves every site; benchmarks
    #: override it per instance (``SpanKernel(fast_forward=False)``) to
    #: measure what multi-block fast-forwarding buys.
    span_kernel = DEFAULT_KERNEL

    #: Whether :meth:`on_block_start` (site and coordinator side) is a pure,
    #: idempotent reset of per-block estimation state.  Multi-block
    #: fast-forwarding collapses ``M`` consecutive block starts into one
    #: final reset, so it only engages when every actor in the network
    #: declares this.  Trackers whose block start has history or side
    #: effects must leave it ``False`` (the default).
    idempotent_block_start = False

    #: Sequence-numbered block closes (the latency/loss repair).  Off by
    #: default: the naive protocol zeroes the whole per-block state on
    #: BROADCAST, silently discarding any drift that arrived between the
    #: site's REPLY and the (delayed, possibly retransmitted) BROADCAST.
    #: :func:`repro.faults.repair.enable_close_repair` flips this on every
    #: actor of a network; both sides of a channel must agree, because the
    #: repair adds a ``close`` sequence field to the close-protocol payloads.
    repair_closes = False

    def __init__(self, site_id: int, num_sites: int, epsilon: float) -> None:
        check_tracking_parameters(num_sites, epsilon)
        super().__init__(site_id)
        self.num_sites = num_sites
        self.epsilon = epsilon
        #: Current block level r, as last broadcast by the coordinator.
        self.level = 0
        #: c_i: updates received since the last count report (or reply).
        self.count_since_report = 0
        #: f_i: change in f received since the last block boundary broadcast.
        self.block_value_change = 0
        # Repair bookkeeping: the close sequence this site last replied to /
        # last committed, and the drift value that reply reported.
        self._replied_close = 0
        self._applied_close = 0
        self._replied_change = 0

    # -- block protocol -----------------------------------------------------

    def count_report_threshold(self) -> int:
        """Per-site count ``ceil(2^(r-1))`` after which a count report is sent."""
        return max(1, int(math.ceil(2 ** (self.level - 1))))

    def receive_update(self, time: int, delta: int) -> None:
        if delta not in (-1, 1):
            raise StreamError(
                f"block trackers require unit updates, got {delta}; expand "
                "larger updates with repro.core.expansion first"
            )
        self.count_since_report += 1
        self.block_value_change += delta
        self.on_stream_update(time, delta)
        if self.count_since_report >= self.count_report_threshold():
            count = self.count_since_report
            self.count_since_report = 0
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"count": count},
                    time=time,
                )
            )

    def _commit_replied_close(self) -> None:
        """Repair: fold the last reply into the boundary once it is committed.

        Subtracting exactly what the reply reported leaves the drift that
        arrived *after* the reply in ``block_value_change``, where the next
        close's REPLY will carry it into the coordinator's boundary — the
        naive protocol's zeroing discards it forever.  Called when the
        matching BROADCAST arrives, or when a newer REQUEST proves the close
        committed even though its BROADCAST is still in flight (or was
        reordered past the request).
        """
        if self._replied_close > self._applied_close:
            self.block_value_change -= self._replied_change
            self._applied_close = self._replied_close
            self._replied_change = 0

    def receive_message(self, message: Message) -> None:
        if message.kind is MessageKind.REQUEST:
            if self.repair_closes:
                self._commit_replied_close()
            count = self.count_since_report
            change = self.block_value_change
            self.count_since_report = 0
            payload = {"count": count, "change": change}
            if self.repair_closes:
                seq = int(message.payload["close"])
                self._replied_close = seq
                self._replied_change = change
                payload["close"] = seq
            self.send(
                Message(
                    kind=MessageKind.REPLY,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload=payload,
                    time=message.time,
                )
            )
        elif message.kind is MessageKind.BROADCAST:
            if self.repair_closes:
                seq = int(message.payload["close"])
                if seq < self._replied_close:
                    # A close we have since been asked past: its effect was
                    # (or will be) committed by the newer REQUEST; applying
                    # the stale broadcast now would subtract twice.
                    return
                if seq > self._replied_close:
                    raise ProtocolError(
                        f"site {self.site_id} saw broadcast for close {seq} "
                        f"but last replied to close {self._replied_close}"
                    )
                self.level = int(message.payload["level"])
                self._commit_replied_close()
                # count_since_report is deliberately left alone: counts that
                # arrived after the reply stay pending for the next count
                # report instead of vanishing from t_hat.
                self.on_block_start(self.level)
                return
            self.level = int(message.payload["level"])
            self.block_value_change = 0
            self.count_since_report = 0
            self.on_block_start(self.level)
        else:
            raise ConfigurationError(
                f"site {self.site_id} received unexpected message kind {message.kind}"
            )

    # -- batched fast path ---------------------------------------------------

    def receive_batch(
        self,
        times: Sequence[int],
        deltas: Sequence[int],
        network=None,
    ) -> None:
        """Consume a contiguous run of local updates through the span kernel.

        Thin adapter over :class:`repro.engine.SpanKernel`: this method only
        validates the run, derives the capability flags the kernel needs
        (synchronous versus span-scheduling channel, simulatable peers,
        multi-block eligibility) and delegates.  The kernel alternates
        *simulated spans* (the :meth:`on_stream_batch` hook reproduces the
        estimation-side traffic from cumulative sums while count reports are
        charged in bulk) with *block closes* computed in closed form — many
        consecutive same-level closes at once where
        :meth:`on_multiblock_window` applies.

        Correctness-sensitive cases fall back to the ordinary per-update
        path through the kernel's single replay helper: short runs, non-unit
        deltas, an unknown coordinator or peer site type, message logging
        (the tracing reduction needs the real per-message transcript), and
        channels that support neither inline delivery nor span scheduling.

        The result is observationally identical to per-update delivery:
        identical site and coordinator state, identical message counts, bit
        counts and per-kind breakdown at every point the runner can observe.
        """
        if len(times) != len(deltas):
            raise ProtocolError(
                f"batch times ({len(times)}) and deltas ({len(deltas)}) must "
                "have equal length"
            )
        kernel = self.span_kernel
        coordinator = network.coordinator if network is not None else None
        channel = self._channel
        synchronous = channel is not None and channel.is_synchronous
        if (
            len(deltas) < _MIN_FAST_BATCH
            or not isinstance(coordinator, BlockTrackingCoordinator)
            or channel is None
            or channel.log_enabled
            or not (
                synchronous or getattr(channel, "supports_span_events", False)
            )
        ):
            kernel.replay(self, times, deltas)
            return
        array = np.asarray(deltas, dtype=np.int64)
        if not np.all(np.abs(array) == 1):
            # Replay per update so the StreamError for the first non-unit
            # delta fires after exactly the same prefix as the slow path.
            kernel.replay(self, times, deltas)
            return
        # Simulated closes read and reset peer state directly, which is only
        # sound when delivery is inline (asynchronous channels route close
        # steps through the real per-update path instead).  The two
        # membership-wide predicates are invariants of the network's site
        # set, which is fixed at construction (migration replaces the whole
        # network object), so they are derived once per network rather than
        # rescanned per batch — at high leaf-touch rates a tree delivers
        # thousands of short batches to leaves of thousands of sites each,
        # and the rescan dominated the replay profile.
        capabilities = getattr(network, "_span_capabilities", None)
        if capabilities is None:
            simulatable_peers = all(
                isinstance(site, BlockTrackingSite) for site in network.sites
            )
            idempotent_starts = (
                simulatable_peers
                and coordinator.idempotent_block_start
                and all(site.idempotent_block_start for site in network.sites)
            )
            capabilities = (simulatable_peers, idempotent_starts)
            network._span_capabilities = capabilities
        simulatable_peers, idempotent_starts = capabilities
        can_fast_close = synchronous and simulatable_peers
        can_fast_forward = (
            can_fast_close and kernel.fast_forward and idempotent_starts
        )
        kernel.consume_run(
            self,
            network,
            coordinator,
            times,
            array,
            can_fast_close,
            can_fast_forward,
        )

    # -- estimation hooks ----------------------------------------------------

    @abc.abstractmethod
    def on_stream_update(self, time: int, delta: int) -> None:
        """Estimation hook: called for every local update, before count logic."""

    @abc.abstractmethod
    def on_block_start(self, level: int) -> None:
        """Estimation hook: called when a new block (with level ``r``) begins."""

    def on_stream_update_superseded(self, time: int, delta: int) -> None:
        """Estimation hook for a step whose report the block close supersedes.

        Called by :meth:`_fast_close_step` in place of
        :meth:`on_stream_update` when the same step provably closes the
        block: any estimation report the step produces reaches the
        coordinator only to be wiped by the block start, so implementations
        may charge it (identical cost accounting) instead of delivering it.
        State updates and RNG draws must stay exact.  The default delegates
        to :meth:`on_stream_update`, which is always correct.
        """
        self.on_stream_update(time, delta)

    def on_stream_batch(
        self, times: Sequence[int], deltas: np.ndarray, start: int, length: int
    ) -> int:
        """Estimation hook (batch fast path): consume up to ``length`` steps.

        Implementations may consume a prefix of ``deltas[start:start+length]``
        in bulk and must reproduce *exactly* the estimation-side effects the
        per-update path would have over those steps: estimation state, RNG
        consumption, and every estimation report — either sent as a real
        message or, when a later report in the same span supersedes its
        coordinator-side effect, charged through
        :meth:`repro.monitoring.channel.Channel.charge` with
        identical cost.  The window is guaranteed trigger-free (no block
        close can occur inside it), so the block level — and with it every
        threshold and probability — is fixed throughout.  Returns the number
        of steps consumed; ``0`` (the default) defers the next step to the
        per-update path, which is always correct.
        """
        return 0

    def on_multiblock_window(
        self,
        deltas: np.ndarray,
        start: int,
        length: int,
        cycle_length: int,
        close_offsets: "np.ndarray | None" = None,
        levels: "np.ndarray | None" = None,
    ) -> bool:
        """Estimation hook (multi-block fast-forward): simulate whole cycles.

        The kernel calls this when the window
        ``deltas[start:start + length]`` provably consists of block closes.
        In the uniform form (``close_offsets is None``) the closes sit at
        relative offsets ``0, cycle_length, 2 * cycle_length, ...`` (the
        last step of the window is the final close) with the block level —
        and so every threshold and probability — unchanged throughout.  In
        the cross-level form the closes sit at ``close_offsets`` (first
        ``0``, last ``length - 1``) and ``levels[j]`` is the block level
        *after* close ``j``: the entry step runs at the current
        ``self.level`` and cycle ``j`` (the steps after close ``j - 1`` up
        to and including close ``j``) runs at ``levels[j - 1]``.  Every
        estimation report inside the window is superseded by a block close
        before the next observation point, so implementations must *charge*
        them all (identical per-message cost through
        :meth:`repro.monitoring.channel.Channel.charge`) rather than send
        any, reproduce the exact RNG consumption of per-update delivery,
        and leave the estimation state as freshly reset by the final close.
        Block-protocol traffic (count reports, request/reply/broadcast) is
        the kernel's job, not the hook's.

        Returns ``True`` if the window was handled; ``False`` (the default)
        declines, and the kernel simulates a single close instead.  Safe to
        decline for any reason — correctness never depends on accepting.
        """
        return False


class BlockTrackingCoordinator(Coordinator, abc.ABC):
    """Coordinator side of the block-based template."""

    #: Mirror of :attr:`BlockTrackingSite.idempotent_block_start` for the
    #: coordinator's :meth:`on_block_start`: multi-block fast-forwarding
    #: collapses ``M`` consecutive block starts into one final reset and
    #: only engages when the coordinator declares its reset idempotent.
    idempotent_block_start = False

    #: Optional observability hook bracketing real block-close rounds
    #: (:mod:`repro.observability.instrument`).  Observers are read-only;
    #: closes the span kernel simulates in closed form bypass these calls
    #: and surface through coordinator state at scrape time instead.
    observer = None

    #: Mirror of :attr:`BlockTrackingSite.repair_closes`: when on, every
    #: REQUEST/REPLY/BROADCAST of the close protocol carries the close's
    #: sequence number (charged in its bit cost like any payload field).
    repair_closes = False

    def __init__(self, num_sites: int, epsilon: float) -> None:
        check_tracking_parameters(num_sites, epsilon)
        super().__init__()
        self.num_sites = num_sites
        self.epsilon = epsilon
        #: Sequence number of the most recently started block close (repair).
        self._close_seq = 0
        #: Current block level r.
        self.level = 0
        #: Exact value f(n_j) at the last block boundary.
        self.boundary_value = 0
        #: Exact time n_j of the last block boundary.
        self.boundary_time = 0
        #: t_hat: updates reported (in count reports) since the boundary.
        self.reported_updates = 0
        #: Number of completed blocks.
        self.blocks_completed = 0
        self._collecting_replies = False
        self._replies: Dict[int, Message] = {}
        self._close_time = 0

    # -- estimate ------------------------------------------------------------

    def estimate(self) -> float:
        """Current estimate ``fhat(n) = f(n_j) + d_hat(n)``."""
        return self.boundary_value + self.drift_estimate()

    # -- block protocol ------------------------------------------------------

    def block_trigger_threshold(self) -> int:
        """Reported-update total ``ceil(2^(r-1)) * k`` that closes the block."""
        per_site = max(1, int(math.ceil(2 ** (self.level - 1))))
        return per_site * self.num_sites

    def absorb_count_reports(self, num_reports: int, count_each: int) -> None:
        """Bulk-apply ``num_reports`` count reports that provably miss the trigger.

        Fast-path equivalent of receiving ``num_reports`` REPORT messages with
        payload ``{"count": count_each}``: advances ``t_hat`` by their total.
        The caller must have established (in closed form) that the trigger is
        not reached, so no block close is due; this is verified defensively.
        """
        total = num_reports * count_each
        if self.reported_updates + total >= self.block_trigger_threshold():
            raise ConfigurationError(
                f"bulk-absorbing {num_reports} count reports of {count_each} "
                "would cross the block trigger; the closing report must go "
                "through the per-update path"
            )
        self.reported_updates += total

    @property
    def reply_quorum(self) -> int:
        """Replies that complete a block close: every site *this* coordinator serves.

        In the flat topology that is the global ``k``.  Inside the sharded
        hierarchy (:mod:`repro.monitoring.sharding`) each shard's coordinator
        is built for its own site group, so closes complete on the shard's
        reply count — never on the global site total.
        """
        return self.num_sites

    def receive_message(self, message: Message) -> None:
        if message.kind is MessageKind.REPLY:
            if not self._collecting_replies:
                raise ConfigurationError(
                    "coordinator received a reply outside of a block close"
                )
            if self.repair_closes:
                seq = int(message.payload["close"])
                if seq != self._close_seq:
                    raise ProtocolError(
                        f"reply from site {message.sender} answers close "
                        f"{seq}, but close {self._close_seq} is pending"
                    )
            self._replies[message.sender] = message
            if len(self._replies) == self.reply_quorum:
                self._finish_close()
            return
        if message.kind is not MessageKind.REPORT:
            raise ConfigurationError(
                f"coordinator received unexpected message kind {message.kind}"
            )
        if "count" in message.payload:
            self.reported_updates += int(message.payload["count"])
            if (
                not self._collecting_replies
                and self.reported_updates >= self.block_trigger_threshold()
            ):
                self._close_block(message.time)
        else:
            self.on_estimation_report(message)

    def _close_block(self, time: int) -> None:
        """Start a block close: request (``c_i``, ``f_i``) from every site.

        The close *finishes* (:meth:`_finish_close`) once all ``k`` replies
        have arrived.  Over a synchronous channel the replies come back
        reentrantly while the requests are being sent, so the close completes
        within this call, exactly as in the paper's instant-delivery model.
        Over an asynchronous channel the requests and replies are in flight
        for a while; the coordinator keeps absorbing reports in the meantime
        (count reports accumulate in ``t_hat`` but cannot re-trigger a close
        until the pending one finishes).
        """
        self._collecting_replies = True
        self._replies = {}
        self._close_time = time
        if self.observer is not None:
            self.observer.on_close_begin(self, time)
        payload = {}
        if self.repair_closes:
            self._close_seq += 1
            payload = {"close": self._close_seq}
        for site_id in range(self.num_sites):
            self.send(
                Message(
                    kind=MessageKind.REQUEST,
                    sender=COORDINATOR,
                    receiver=site_id,
                    payload=payload,
                    time=time,
                )
            )
        if self._channel is not None and self._channel.is_synchronous:
            # Synchronous delivery must have completed the close reentrantly;
            # a missing reply (a site mishandling REQUEST) is a wiring bug
            # and must fail loudly, not freeze all future closes.
            if self._collecting_replies:
                raise ConfigurationError(
                    f"block close expected {self.reply_quorum} replies, "
                    f"got {len(self._replies)}"
                )

    def _finish_close(self) -> None:
        """Complete the block close once every site has replied."""
        self._collecting_replies = False
        extra_updates = sum(int(r.payload["count"]) for r in self._replies.values())
        total_change = sum(int(r.payload["change"]) for r in self._replies.values())
        self.boundary_time += self.reported_updates + extra_updates
        self.boundary_value += total_change
        self.reported_updates = 0
        self.level = block_level(self.boundary_value, self.num_sites)
        self.blocks_completed += 1
        self.on_block_start(self.level)
        payload = {"level": self.level}
        if self.repair_closes:
            payload["close"] = self._close_seq
        self.send(
            Message(
                kind=MessageKind.BROADCAST,
                sender=COORDINATOR,
                receiver=BROADCAST_SITE,
                payload=payload,
                time=self._close_time,
            )
        )
        if self.observer is not None:
            self.observer.on_close_end(self, self._close_time)

    # -- estimation hooks ----------------------------------------------------

    @abc.abstractmethod
    def drift_estimate(self) -> float:
        """Estimation hook: current estimate ``d_hat`` of the in-block drift."""

    @abc.abstractmethod
    def on_estimation_report(self, message: Message) -> None:
        """Estimation hook: handle a site's estimation report."""

    @abc.abstractmethod
    def on_block_start(self, level: int) -> None:
        """Estimation hook: reset per-block estimation state."""


class BlockTrackerFactory(abc.ABC):
    """Common factory interface for the Section 3 trackers.

    A factory bundles the problem parameters (``k``, ``eps``) and knows how to
    build a freshly wired :class:`MonitoringNetwork`; convenience method
    :meth:`track` builds a network and runs a distributed stream through it.
    """

    def __init__(self, num_sites: int, epsilon: float) -> None:
        check_tracking_parameters(num_sites, epsilon)
        self.num_sites = num_sites
        self.epsilon = epsilon

    @abc.abstractmethod
    def build_coordinator(self) -> BlockTrackingCoordinator:
        """Create the coordinator for one run."""

    @abc.abstractmethod
    def build_site(self, site_id: int) -> BlockTrackingSite:
        """Create site ``site_id`` for one run."""

    def shard_factory(self, num_sites: int, shard_id: int) -> "BlockTrackerFactory":
        """Clone this factory for one shard's site group.

        Hook used by :func:`repro.monitoring.sharding.build_sharded_network`:
        shard ``shard_id`` runs an independent copy of this tracker over its
        ``num_sites``-site group, so every protocol threshold and the block
        close's reply quorum are derived from the shard's own size, never the
        global ``k``.  Factories with extra construction state (seeds)
        override this to derive per-shard values deterministically.
        """
        return type(self)(num_sites, self.epsilon)

    def build_network(self) -> MonitoringNetwork:
        """Create a wired coordinator + ``k`` sites network."""
        coordinator = self.build_coordinator()
        sites: List[BlockTrackingSite] = [
            self.build_site(site_id) for site_id in range(self.num_sites)
        ]
        return MonitoringNetwork(coordinator, sites)

    def bootstrap_network(self, network, values, counts) -> None:
        """Initialise a fresh network with exact per-site state.

        Live-migration hook (:func:`repro.monitoring.tree.migrate_site`):
        after a shard's membership changes, the rebuilt leaf network is
        seeded so that it behaves exactly as if a block boundary had just
        closed with these values — the coordinator's boundary holds the
        exact totals, the block level is recomputed for the *new* site
        count, and every actor starts a fresh block at that level.  The
        handoff protocol charges the request/reply/broadcast exchange this
        simulates on the real channels.

        Args:
            network: A freshly built, unused network from this factory.
            values: Exact per-site value contribution, in site-id order.
            counts: Exact per-site update count, in site-id order.
        """
        coordinator = network.coordinator
        coordinator.boundary_value = int(sum(values))
        coordinator.boundary_time = int(sum(counts))
        coordinator.reported_updates = 0
        coordinator.level = block_level(
            coordinator.boundary_value, coordinator.num_sites
        )
        coordinator.on_block_start(coordinator.level)
        for site in network.sites:
            site.level = coordinator.level
            site.count_since_report = 0
            site.block_value_change = 0
            site.on_block_start(site.level)

    def track(self, updates, record_every: int = 1, batched=None):
        """Build a fresh network and run a distributed stream through it.

        Args:
            updates: Any iterable of :class:`repro.types.Update` (lists,
                generators, lazy readers).
            record_every: Passed through to
                :func:`repro.monitoring.runner.run_tracking`.
            batched: Delivery-engine selector, passed through to
                :func:`repro.monitoring.runner.run_tracking`.

        Returns:
            The :class:`repro.monitoring.runner.TrackingResult` of the run.
        """
        from repro.monitoring.runner import run_tracking

        network = self.build_network()
        return run_tracking(
            network, updates, record_every=record_every, batched=batched
        )
