"""Shared block-based tracking template (Sections 3.1 and 3.2).

Both the deterministic and the randomized counters share the same structure:

1. **Block partition (Section 3.1).**  Every site counts the updates it has
   received since it last told the coordinator (``c_i``) and the change in
   ``f`` since the last block boundary (``f_i``).  Once ``c_i`` reaches
   ``ceil(2^(r-1))`` the site reports the count.  The coordinator accumulates
   reported counts in ``t_hat`` and, once ``t_hat`` reaches
   ``ceil(2^(r-1)) * k``, closes the block: it requests (``c_i``, ``f_i``)
   from every site, recovers the exact ``n_j`` and ``f(n_j)``, recomputes the
   level ``r`` from ``|f(n_j)|``, and broadcasts the new ``r``.

2. **Within-block estimation (Section 3.2).**  Concrete algorithms fill in a
   *condition* (when a site speaks), a *message* (what it sends) and an
   *update* (how the coordinator revises its drift estimates ``d_hat_i``).
   The coordinator's estimate is always ``f(n_j) + sum_i d_hat_i``.

Subclasses implement the hooks marked "estimation hook" below; everything
about the block protocol is handled here so that the deterministic and
randomized trackers differ only in the three template slots, exactly as in
the paper.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List

from repro.core.blocks import block_level
from repro.exceptions import ConfigurationError, StreamError
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.messages import BROADCAST_SITE, COORDINATOR, Message, MessageKind
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.site import Site

__all__ = [
    "check_tracking_parameters",
    "BlockTrackingSite",
    "BlockTrackingCoordinator",
    "BlockTrackerFactory",
]


def check_tracking_parameters(num_sites: int, epsilon: float) -> None:
    """Validate the (k, eps) parameters shared by every tracker."""
    if num_sites < 1:
        raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")


class BlockTrackingSite(Site, abc.ABC):
    """Site side of the block-based template."""

    def __init__(self, site_id: int, num_sites: int, epsilon: float) -> None:
        check_tracking_parameters(num_sites, epsilon)
        super().__init__(site_id)
        self.num_sites = num_sites
        self.epsilon = epsilon
        #: Current block level r, as last broadcast by the coordinator.
        self.level = 0
        #: c_i: updates received since the last count report (or reply).
        self.count_since_report = 0
        #: f_i: change in f received since the last block boundary broadcast.
        self.block_value_change = 0

    # -- block protocol -----------------------------------------------------

    def count_report_threshold(self) -> int:
        """Per-site count ``ceil(2^(r-1))`` after which a count report is sent."""
        return max(1, int(math.ceil(2 ** (self.level - 1))))

    def receive_update(self, time: int, delta: int) -> None:
        if delta not in (-1, 1):
            raise StreamError(
                f"block trackers require unit updates, got {delta}; expand "
                "larger updates with repro.core.expansion first"
            )
        self.count_since_report += 1
        self.block_value_change += delta
        self.on_stream_update(time, delta)
        if self.count_since_report >= self.count_report_threshold():
            count = self.count_since_report
            self.count_since_report = 0
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"count": count},
                    time=time,
                )
            )

    def receive_message(self, message: Message) -> None:
        if message.kind is MessageKind.REQUEST:
            count = self.count_since_report
            change = self.block_value_change
            self.count_since_report = 0
            self.send(
                Message(
                    kind=MessageKind.REPLY,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"count": count, "change": change},
                    time=message.time,
                )
            )
        elif message.kind is MessageKind.BROADCAST:
            self.level = int(message.payload["level"])
            self.block_value_change = 0
            self.count_since_report = 0
            self.on_block_start(self.level)
        else:
            raise ConfigurationError(
                f"site {self.site_id} received unexpected message kind {message.kind}"
            )

    # -- estimation hooks ----------------------------------------------------

    @abc.abstractmethod
    def on_stream_update(self, time: int, delta: int) -> None:
        """Estimation hook: called for every local update, before count logic."""

    @abc.abstractmethod
    def on_block_start(self, level: int) -> None:
        """Estimation hook: called when a new block (with level ``r``) begins."""


class BlockTrackingCoordinator(Coordinator, abc.ABC):
    """Coordinator side of the block-based template."""

    def __init__(self, num_sites: int, epsilon: float) -> None:
        check_tracking_parameters(num_sites, epsilon)
        super().__init__()
        self.num_sites = num_sites
        self.epsilon = epsilon
        #: Current block level r.
        self.level = 0
        #: Exact value f(n_j) at the last block boundary.
        self.boundary_value = 0
        #: Exact time n_j of the last block boundary.
        self.boundary_time = 0
        #: t_hat: updates reported (in count reports) since the boundary.
        self.reported_updates = 0
        #: Number of completed blocks.
        self.blocks_completed = 0
        self._collecting_replies = False
        self._replies: Dict[int, Message] = {}

    # -- estimate ------------------------------------------------------------

    def estimate(self) -> float:
        """Current estimate ``fhat(n) = f(n_j) + d_hat(n)``."""
        return self.boundary_value + self.drift_estimate()

    # -- block protocol ------------------------------------------------------

    def block_trigger_threshold(self) -> int:
        """Reported-update total ``ceil(2^(r-1)) * k`` that closes the block."""
        per_site = max(1, int(math.ceil(2 ** (self.level - 1))))
        return per_site * self.num_sites

    def receive_message(self, message: Message) -> None:
        if message.kind is MessageKind.REPLY:
            if not self._collecting_replies:
                raise ConfigurationError(
                    "coordinator received a reply outside of a block close"
                )
            self._replies[message.sender] = message
            return
        if message.kind is not MessageKind.REPORT:
            raise ConfigurationError(
                f"coordinator received unexpected message kind {message.kind}"
            )
        if "count" in message.payload:
            self.reported_updates += int(message.payload["count"])
            if self.reported_updates >= self.block_trigger_threshold():
                self._close_block(message.time)
        else:
            self.on_estimation_report(message)

    def _close_block(self, time: int) -> None:
        self._collecting_replies = True
        self._replies = {}
        for site_id in range(self.num_sites):
            self.send(
                Message(
                    kind=MessageKind.REQUEST,
                    sender=COORDINATOR,
                    receiver=site_id,
                    payload={},
                    time=time,
                )
            )
        self._collecting_replies = False
        if len(self._replies) != self.num_sites:
            raise ConfigurationError(
                f"block close expected {self.num_sites} replies, got {len(self._replies)}"
            )
        extra_updates = sum(int(r.payload["count"]) for r in self._replies.values())
        total_change = sum(int(r.payload["change"]) for r in self._replies.values())
        self.boundary_time += self.reported_updates + extra_updates
        self.boundary_value += total_change
        self.reported_updates = 0
        self.level = block_level(self.boundary_value, self.num_sites)
        self.blocks_completed += 1
        self.on_block_start(self.level)
        self.send(
            Message(
                kind=MessageKind.BROADCAST,
                sender=COORDINATOR,
                receiver=BROADCAST_SITE,
                payload={"level": self.level},
                time=time,
            )
        )

    # -- estimation hooks ----------------------------------------------------

    @abc.abstractmethod
    def drift_estimate(self) -> float:
        """Estimation hook: current estimate ``d_hat`` of the in-block drift."""

    @abc.abstractmethod
    def on_estimation_report(self, message: Message) -> None:
        """Estimation hook: handle a site's estimation report."""

    @abc.abstractmethod
    def on_block_start(self, level: int) -> None:
        """Estimation hook: reset per-block estimation state."""


class BlockTrackerFactory(abc.ABC):
    """Common factory interface for the Section 3 trackers.

    A factory bundles the problem parameters (``k``, ``eps``) and knows how to
    build a freshly wired :class:`MonitoringNetwork`; convenience method
    :meth:`track` builds a network and runs a distributed stream through it.
    """

    def __init__(self, num_sites: int, epsilon: float) -> None:
        check_tracking_parameters(num_sites, epsilon)
        self.num_sites = num_sites
        self.epsilon = epsilon

    @abc.abstractmethod
    def build_coordinator(self) -> BlockTrackingCoordinator:
        """Create the coordinator for one run."""

    @abc.abstractmethod
    def build_site(self, site_id: int) -> BlockTrackingSite:
        """Create site ``site_id`` for one run."""

    def build_network(self) -> MonitoringNetwork:
        """Create a wired coordinator + ``k`` sites network."""
        coordinator = self.build_coordinator()
        sites: List[BlockTrackingSite] = [
            self.build_site(site_id) for site_id in range(self.num_sites)
        ]
        return MonitoringNetwork(coordinator, sites)

    def track(self, updates, record_every: int = 1):
        """Build a fresh network and run a distributed stream through it.

        Args:
            updates: A sequence of :class:`repro.types.Update`.
            record_every: Passed through to
                :func:`repro.monitoring.runner.run_tracking`.

        Returns:
            The :class:`repro.monitoring.runner.TrackingResult` of the run.
        """
        from repro.monitoring.runner import run_tracking

        network = self.build_network()
        return run_tracking(network, updates, record_every=record_every)
