"""Distributed item-frequency tracking (Section 5.1 and Appendix H).

The dataset ``D(t)`` is a multiset over a universe ``U``; every timestep one
item is inserted at or deleted from one site, and the coordinator must know
every frequency ``f_l(t)`` to within ``eps * F1(t)`` where ``F1(t) = |D(t)|``.

The algorithm reuses the block partition of Section 3.1 with ``f = F1`` (each
item update changes ``F1`` by exactly one, so the partition machinery applies
unchanged).  Within a block at level ``r`` a site keeps, for every *counter*
``c`` (an item, or a sketch bucket when a reducer is installed), the residue
between its exact local count and the value the coordinator holds; whenever
that residue reaches ``eps * 2^r / 3`` the site refreshes the coordinator.
When a block ends and the level changes, residues that exceed the *new*
threshold are flushed, so the per-counter error is always below
``eps * 2^r / 3`` and the total error for any item stays below
``eps * F1(t)`` (using ``F1 >= 2^r k`` inside level-``r >= 1`` blocks).

To avoid one counter per item per site, Appendix H reduces items to a small
number of counters with either a single pairwise-independent hash row (the
Count-Min reduction of Cormode and Muthukrishnan), several such rows, or the
deterministic CR-precis residue rows; the reductions are provided here as
*reducers* that plug into the same tracker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.template import (
    BlockTrackerFactory,
    BlockTrackingCoordinator,
    BlockTrackingSite,
)
from repro.core.variability import f1_variability
from repro.exceptions import ConfigurationError, StreamError
from repro.monitoring.messages import COORDINATOR, Message, MessageKind
from repro.monitoring.network import MonitoringNetwork
from repro.sketches.cr_precis import primes_at_least
from repro.sketches.hashing import PairwiseHashFamily
from repro.types import ItemUpdate

__all__ = [
    "IdentityReducer",
    "HashReducer",
    "CRPrecisReducer",
    "FrequencySite",
    "FrequencyCoordinator",
    "FrequencyTracker",
    "FrequencyTrackingResult",
    "run_frequency_tracking",
]

# A counter key is (row, bucket); the identity reduction uses row 0 and the
# item itself as the bucket.
CounterKey = Tuple[int, int]


class IdentityReducer:
    """No reduction: one counter per item (exact but space-hungry)."""

    num_rows = 1

    def keys_for(self, item: int) -> Tuple[CounterKey, ...]:
        """Return the counter keys touched by an update to ``item``."""
        return ((0, item),)

    def combine(self, row_values: Sequence[float]) -> float:
        """Combine per-row sums into one frequency estimate."""
        return float(row_values[0])


class HashReducer:
    """Hash items into ``num_rows`` rows of ``num_buckets`` pairwise-independent buckets.

    With a single row of ``27 / eps`` buckets this is exactly the Count-Min
    reduction Appendix H cites (estimate = the bucket's value, correct to
    ``eps F1 / 3`` with probability 8/9); with several rows the median across
    rows sharpens the failure probability while staying linear (and therefore
    deletion-safe).
    """

    def __init__(self, num_buckets: int, num_rows: int = 1, seed: Optional[int] = None) -> None:
        if num_buckets < 1:
            raise ConfigurationError(f"num_buckets must be >= 1, got {num_buckets}")
        if num_rows < 1:
            raise ConfigurationError(f"num_rows must be >= 1, got {num_rows}")
        self.num_buckets = num_buckets
        self.num_rows = num_rows
        family = PairwiseHashFamily(range_size=num_buckets, seed=seed)
        self._hashes = family.draw_many(num_rows)

    @classmethod
    def from_epsilon(cls, epsilon: float, num_rows: int = 1, seed: Optional[int] = None) -> "HashReducer":
        """Use the Appendix H sizing of ``ceil(27 / eps)`` buckets per row."""
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        return cls(num_buckets=int(math.ceil(27.0 / epsilon)), num_rows=num_rows, seed=seed)

    def keys_for(self, item: int) -> Tuple[CounterKey, ...]:
        """Return the (row, bucket) pairs item ``item`` maps to."""
        return tuple((row, self._hashes[row](item)) for row in range(self.num_rows))

    def combine(self, row_values: Sequence[float]) -> float:
        """Median across rows (equals the single value when ``num_rows = 1``)."""
        return float(np.median(np.asarray(row_values, dtype=float)))


class CRPrecisReducer:
    """Deterministic reduction: row ``j`` buckets item ``x`` at ``x mod prime_j``."""

    def __init__(self, primes: Sequence[int]) -> None:
        if not primes:
            raise ConfigurationError("CRPrecisReducer needs at least one prime")
        self.primes = [int(p) for p in primes]
        self.num_rows = len(self.primes)

    @classmethod
    def from_epsilon(
        cls, epsilon: float, universe_size: int, rows: Optional[int] = None
    ) -> "CRPrecisReducer":
        """Use the Appendix H sizing (``3/eps`` rows of primes of size ``~6 log|U| / (eps log 1/eps)``)."""
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if universe_size < 2:
            raise ConfigurationError(f"universe_size must be >= 2, got {universe_size}")
        row_count = rows if rows is not None else int(math.ceil(3.0 / epsilon))
        denominator = epsilon * max(math.log2(1.0 / epsilon), 1.0)
        minimum_prime = int(math.ceil(6.0 * math.log2(universe_size) / denominator))
        return cls(primes_at_least(row_count, minimum_prime))

    def keys_for(self, item: int) -> Tuple[CounterKey, ...]:
        """Return the (row, residue) pairs for ``item``."""
        if item < 0:
            raise ConfigurationError(f"items must be non-negative integers, got {item}")
        return tuple((row, item % prime) for row, prime in enumerate(self.primes))

    def combine(self, row_values: Sequence[float]) -> float:
        """Average across rows (linear, deletion-safe; see Appendix H)."""
        return float(np.mean(np.asarray(row_values, dtype=float)))


class FrequencySite(BlockTrackingSite):
    """Site side: per-counter exact counts plus unsynchronised residues."""

    def __init__(
        self, site_id: int, num_sites: int, epsilon: float, reducer
    ) -> None:
        super().__init__(site_id, num_sites, epsilon)
        self.reducer = reducer
        #: Exact lifetime count per counter key at this site.
        self.counts: Dict[CounterKey, int] = {}
        #: Residue per counter key: exact count minus the coordinator's copy.
        self.residues: Dict[CounterKey, int] = {}
        self._pending_keys: Tuple[CounterKey, ...] = ()

    def residue_threshold(self, level: Optional[int] = None) -> float:
        """The flush threshold ``eps * 2^r / 3`` for the given (or current) level."""
        effective = self.level if level is None else level
        return self.epsilon * (2 ** effective) / 3.0

    def receive_item_update(self, time: int, item: int, delta: int) -> None:
        """Process one item insert/delete; drives the F1 block machinery too."""
        if delta not in (-1, 1):
            raise StreamError(f"item updates must be +-1, got {delta}")
        self._pending_keys = self.reducer.keys_for(item)
        self.receive_update(time, delta)
        self._pending_keys = ()

    def on_stream_update(self, time: int, delta: int) -> None:
        threshold = self.residue_threshold()
        for key in self._pending_keys:
            self.counts[key] = self.counts.get(key, 0) + delta
            self.residues[key] = self.residues.get(key, 0) + delta
            if abs(self.residues[key]) >= threshold:
                self._flush(key, time)

    def on_block_start(self, level: int) -> None:
        threshold = self.residue_threshold(level)
        for key in list(self.residues):
            if abs(self.residues[key]) >= threshold:
                self._flush(key, time=0)

    def _flush(self, key: CounterKey, time: int) -> None:
        self.residues[key] = 0
        self.send(
            Message(
                kind=MessageKind.REPORT,
                sender=self.site_id,
                receiver=COORDINATOR,
                payload={"row": key[0], "bucket": key[1], "value": self.counts.get(key, 0)},
                time=time,
            )
        )


class FrequencyCoordinator(BlockTrackingCoordinator):
    """Coordinator side: per-(site, counter) copies plus frequency queries."""

    def __init__(self, num_sites: int, epsilon: float, reducer) -> None:
        super().__init__(num_sites, epsilon)
        self.reducer = reducer
        self._copies: Dict[Tuple[int, CounterKey], int] = {}
        self._row_site_sums: Dict[CounterKey, int] = {}

    def drift_estimate(self) -> float:
        # The scalar estimate tracked by the template is F1 at the last block
        # boundary; the interesting queries are per-item (see :meth:`query`).
        return 0.0

    def on_estimation_report(self, message: Message) -> None:
        key: CounterKey = (int(message.payload["row"]), int(message.payload["bucket"]))
        copy_key = (message.sender, key)
        new_value = int(message.payload["value"])
        old_value = self._copies.get(copy_key, 0)
        self._copies[copy_key] = new_value
        self._row_site_sums[key] = self._row_site_sums.get(key, 0) + (new_value - old_value)

    def on_block_start(self, level: int) -> None:
        # Copies persist across blocks; only the level changes.
        return None

    def counter_estimate(self, key: CounterKey) -> float:
        """Coordinator's estimate of the global count of one counter key."""
        return float(self._row_site_sums.get(key, 0))

    def query(self, item: int) -> float:
        """Estimate the frequency of ``item`` by combining its counter rows."""
        keys = self.reducer.keys_for(item)
        row_values = [self.counter_estimate(key) for key in keys]
        return self.reducer.combine(row_values)

    def estimated_f1(self) -> float:
        """The coordinator's current estimate of ``F1`` (exact at block boundaries)."""
        return float(self.boundary_value)

    def known_items(self) -> List[int]:
        """Items the coordinator can enumerate without a candidate list.

        Only the identity reduction preserves item identities; sketched
        reductions must be queried with an explicit candidate set.
        """
        if not isinstance(self.reducer, IdentityReducer):
            raise ConfigurationError(
                "known_items() requires the identity reducer; pass candidates "
                "explicitly to heavy_hitters() when a sketch reduction is used"
            )
        return sorted({key[1] for (_site, key) in self._copies})

    def heavy_hitters(
        self,
        fraction: float,
        candidates: Optional[Iterable[int]] = None,
    ) -> List[Tuple[int, float]]:
        """Return items whose estimated frequency is at least ``fraction * F1``.

        Args:
            fraction: The heavy-hitter threshold ``phi`` in ``(0, 1]``.  With
                tracking error ``eps * F1`` the output contains every item of
                true frequency at least ``(phi + eps) F1`` and no item below
                ``(phi - eps) F1``.
            candidates: Items to consider; defaults to every item the
                coordinator has seen (identity reduction only).

        Returns:
            ``(item, estimated frequency)`` pairs sorted by decreasing estimate.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        pool = list(candidates) if candidates is not None else self.known_items()
        cutoff = fraction * max(self.estimated_f1(), 1.0)
        hitters = [
            (item, self.query(item)) for item in pool if self.query(item) >= cutoff
        ]
        return sorted(hitters, key=lambda pair: (-pair[1], pair[0]))


@dataclass
class FrequencyTrackingResult:
    """Outcome of running the frequency tracker over an item stream.

    Attributes:
        checkpoint_times: Times at which frequencies were audited.
        max_errors: Max absolute frequency error over audited items, per checkpoint.
        f1_values: ``F1(t)`` at each checkpoint.
        total_messages: Total messages exchanged.
        total_bits: Total message bits exchanged.
        f1_variability: The F1-variability of the processed stream.
    """

    checkpoint_times: List[int] = field(default_factory=list)
    max_errors: List[float] = field(default_factory=list)
    f1_values: List[int] = field(default_factory=list)
    total_messages: int = 0
    total_bits: int = 0
    f1_variability: float = 0.0

    def violations(self, epsilon: float) -> int:
        """Checkpoints where some audited item missed the ``eps * F1`` guarantee."""
        return sum(
            1
            for error, f1 in zip(self.max_errors, self.f1_values)
            if error > epsilon * max(f1, 1) + 1e-9
        )

    def max_error_ratio(self) -> float:
        """Worst ratio of observed error to ``F1`` across checkpoints."""
        worst = 0.0
        for error, f1 in zip(self.max_errors, self.f1_values):
            worst = max(worst, error / max(f1, 1))
        return worst


class FrequencyTracker(BlockTrackerFactory):
    """Factory for the Appendix H distributed frequency tracker.

    Args:
        num_sites: Number of sites ``k``.
        epsilon: Relative error parameter (against ``F1``).
        reducer: Optional item-space reduction; defaults to
            :class:`IdentityReducer` (exact per-item counters).
    """

    def __init__(self, num_sites: int, epsilon: float, reducer=None) -> None:
        super().__init__(num_sites, epsilon)
        self.reducer = reducer if reducer is not None else IdentityReducer()

    def build_coordinator(self) -> FrequencyCoordinator:
        return FrequencyCoordinator(self.num_sites, self.epsilon, self.reducer)

    def build_site(self, site_id: int) -> FrequencySite:
        return FrequencySite(site_id, self.num_sites, self.epsilon, self.reducer)

    def track(self, updates, record_every: int = 1):
        """Frequency tracking uses :func:`run_frequency_tracking`, not the scalar runner."""
        raise ConfigurationError(
            "use run_frequency_tracking(tracker, item_updates, ...) for the "
            "frequency-tracking problem"
        )


def run_frequency_tracking(
    tracker: FrequencyTracker,
    item_updates: Sequence[ItemUpdate],
    audit_items: Optional[Iterable[int]] = None,
    audit_every: int = 64,
) -> FrequencyTrackingResult:
    """Drive an item stream through the frequency tracker and audit its error.

    Args:
        tracker: The tracker factory (defines ``k``, ``eps`` and the reducer).
        item_updates: The distributed insert/delete stream.
        audit_items: Items whose frequency is checked at every checkpoint; by
            default, every item that appears in the stream.
        audit_every: Number of timesteps between error audits (audits are
            exact and therefore slow, so they are sampled).

    Returns:
        A :class:`FrequencyTrackingResult` with per-checkpoint error and the
        total communication cost.
    """
    if audit_every < 1:
        raise ConfigurationError(f"audit_every must be >= 1, got {audit_every}")
    network: MonitoringNetwork = tracker.build_network()
    coordinator: FrequencyCoordinator = network.coordinator  # type: ignore[assignment]
    sites: List[FrequencySite] = network.sites  # type: ignore[assignment]

    audited = set(audit_items) if audit_items is not None else {u.item for u in item_updates}
    true_frequencies: Dict[int, int] = {}
    f1 = 0
    f1_series: List[int] = []
    result = FrequencyTrackingResult()

    for index, update in enumerate(item_updates):
        sites[update.site].receive_item_update(update.time, update.item, update.delta)
        true_frequencies[update.item] = true_frequencies.get(update.item, 0) + update.delta
        if true_frequencies[update.item] < 0:
            raise StreamError(
                f"item {update.item} deleted more times than inserted at t={update.time}"
            )
        f1 += update.delta
        f1_series.append(f1)
        if index % audit_every == 0 or index == len(item_updates) - 1:
            max_error = 0.0
            for item in audited:
                estimate = coordinator.query(item)
                truth = true_frequencies.get(item, 0)
                max_error = max(max_error, abs(estimate - truth))
            result.checkpoint_times.append(update.time)
            result.max_errors.append(max_error)
            result.f1_values.append(f1)

    stats = network.stats
    result.total_messages = stats.messages
    result.total_bits = stats.bits
    result.f1_variability = f1_variability(f1_series)
    return result
