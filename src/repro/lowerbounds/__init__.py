"""Lower-bound constructions and the tracing problem (Section 4).

The paper's lower bounds go through the *tracing problem*: maintain a small
summary of the whole history of ``f`` so that any past value ``f(t)`` can be
recovered to ``eps`` relative error.  Appendix D shows a tracing lower bound
implies a space+communication lower bound for distributed tracking, because a
tracking algorithm's communication transcript *is* a tracing summary.

* :mod:`repro.lowerbounds.deterministic_family` — the Theorem 4.1 family of
  "flip" sequences (values ``m`` / ``m + 3``), whose size forces any exact
  eps-tracer to use ``Omega((v/eps) log n)`` bits.
* :mod:`repro.lowerbounds.randomized_family` — the Lemma 4.4 randomized
  family with pairwise small overlap, used by the INDEX reduction of
  Lemma 4.3.
* :mod:`repro.lowerbounds.overlap` — overlap counting and the matching
  predicate shared by both.
* :mod:`repro.lowerbounds.markov` — the two-state Markov chain that models the
  overlap between two random sequences, with its mixing-time bound.
* :mod:`repro.lowerbounds.tracing` — a tracing summary built by recording a
  tracker's communication transcript (the Appendix D reduction, executable).
* :mod:`repro.lowerbounds.index_problem` — the one-way INDEX reduction of
  Lemma 4.3, runnable end to end on small instances.
"""

from repro.lowerbounds.deterministic_family import (
    DeterministicFlipFamily,
    flip_sequence_values,
    flip_family_variability,
)
from repro.lowerbounds.index_problem import IndexReduction, IndexReductionReport
from repro.lowerbounds.markov import OverlapChain
from repro.lowerbounds.overlap import overlap_count, sequences_match
from repro.lowerbounds.randomized_family import RandomizedFlipFamily
from repro.lowerbounds.tracing import TranscriptTracer

__all__ = [
    "DeterministicFlipFamily",
    "flip_sequence_values",
    "flip_family_variability",
    "IndexReduction",
    "IndexReductionReport",
    "OverlapChain",
    "overlap_count",
    "sequences_match",
    "RandomizedFlipFamily",
    "TranscriptTracer",
]
