"""The one-way INDEX reduction of Lemma 4.3, runnable on small instances.

In the INDEX problem Alice holds a bit string ``x`` of length ``N``, Bob holds
an index ``i``, Alice sends one message, and Bob must output ``x_i``.  Its
one-way communication complexity is ``Omega(N)`` bits, which is what transfers
to tracing summaries: Alice encodes her string as (the index of) a member of a
hard family of sequences, sends a summary of that sequence, and Bob decodes
the whole sequence — hence every bit of ``x`` — from the summary.

:class:`IndexReduction` executes the protocol end to end using the
deterministic family of Theorem 4.1 and any summary that supports historical
queries (``query(t) -> fhat(t)``), such as the
:class:`repro.lowerbounds.tracing.TranscriptTracer`.  For an eps-accurate
summary the decoding always succeeds, demonstrating that such summaries carry
``log2 C(n, r)`` bits of information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.lowerbounds.deterministic_family import DeterministicFlipFamily
from repro.streams.model import deltas_to_updates
from repro.types import Update

__all__ = ["IndexReductionReport", "IndexReduction"]


@dataclass(frozen=True)
class IndexReductionReport:
    """Outcome of one end-to-end run of the reduction.

    Attributes:
        encoded_index: The family index Alice encoded (her input string).
        decoded_index: The index Bob recovered from the summary.
        correct: Whether the decode recovered every bit.
        summary_bits: Size of the transmitted summary, in bits.
        information_bits: ``log2`` of the family size (the information content).
        max_relative_error: Worst relative error of the summary's answers.
    """

    encoded_index: int
    decoded_index: int
    correct: bool
    summary_bits: float
    information_bits: float
    max_relative_error: float


class IndexReduction:
    """Run Alice-to-Bob decoding through an arbitrary tracing summary.

    Args:
        family: The hard family both parties agree on (generated
            deterministically, as in the lemma).
        summary_builder: Callable that, given the member's update stream,
            returns an object with ``query(t) -> float`` and, optionally,
            ``summary_bits() -> int``.
        num_sites: Number of sites the member stream is spread over when the
            summary is produced by a distributed tracker.
    """

    def __init__(
        self,
        family: DeterministicFlipFamily,
        summary_builder: Callable[[Sequence[Update]], object],
        num_sites: int = 1,
    ) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
        self.family = family
        self.summary_builder = summary_builder
        self.num_sites = num_sites

    def _member_updates(self, index: int) -> Tuple[List[Update], List[int]]:
        """Return the member's unit-update stream and the family-to-stream time map.

        Deltas are taken relative to ``f(0) = 0`` (the streaming convention the
        trackers use) and expanded to ``+-1`` updates so that any Section 3
        tracker can summarise them.  ``time_map[t - 1]`` is the stream time at
        which family time ``t`` has fully materialised.
        """
        values = self.family.member_values(index)
        deltas: List[int] = []
        time_map: List[int] = []
        previous = 0
        for value in values:
            step = value - previous
            sign = 1 if step > 0 else -1
            deltas.extend([sign] * abs(step))
            time_map.append(max(len(deltas), 1))
            previous = value
        sites = [(t - 1) % self.num_sites for t in range(1, len(deltas) + 1)]
        return deltas_to_updates(deltas, sites), time_map

    def run(self, index: int) -> IndexReductionReport:
        """Encode ``index``, transmit a summary, decode, and report the outcome."""
        updates, time_map = self._member_updates(index)
        summary = self.summary_builder(updates)
        values = self.family.member_values(index)
        estimates = [float(summary.query(time_map[t - 1])) for t in range(1, self.family.n + 1)]
        max_relative_error = max(
            abs(estimate - value) / value for estimate, value in zip(estimates, values)
        )
        try:
            decoded = self.family.decode(estimates)
        except ConfigurationError:
            decoded = -1
        summary_bits = (
            float(summary.summary_bits()) if hasattr(summary, "summary_bits") else float("nan")
        )
        return IndexReductionReport(
            encoded_index=index,
            decoded_index=decoded,
            correct=decoded == index,
            summary_bits=summary_bits,
            information_bits=self.family.index_bits(),
            max_relative_error=max_relative_error,
        )

    def run_many(self, indices: Sequence[int]) -> List[IndexReductionReport]:
        """Run the reduction for several encoded indices."""
        return [self.run(index) for index in indices]

    def success_rate(self, indices: Sequence[int]) -> float:
        """Fraction of runs in which Bob decoded Alice's input exactly."""
        if not indices:
            raise ConfigurationError("indices must be non-empty")
        reports = self.run_many(indices)
        return sum(1 for report in reports if report.correct) / len(reports)
