"""The tracing problem and the Appendix D reduction, executable.

The *tracing problem* asks for a small summary of the whole history of ``f``
from which any past value ``f(t)`` can be recovered to ``eps`` relative error.
Appendix D observes that any distributed tracking algorithm yields such a
summary for free: record every message it sent, and to answer a query about
time ``t`` replay the messages sent up to ``t`` into a fresh coordinator and
read off its estimate.  The summary size is therefore at most the algorithm's
communication (plus coordinator state), which is how a space lower bound for
tracing becomes a space+communication lower bound for tracking.

:class:`TranscriptTracer` implements that reduction literally.  The only
wrinkle is that the block-based coordinators *pull* information (they request
exact counts at block boundaries); during replay those pulls are answered
from the recorded transcript by :class:`_ReplayChannel`, so no live sites are
needed and the summary remains exactly the recorded communication.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.exceptions import QueryError
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.messages import Message, MessageKind
from repro.monitoring.network import MonitoringNetwork
from repro.types import Update

__all__ = ["TranscriptTracer"]


class _ReplayChannel:
    """Stands in for the real channel while replaying a transcript.

    Coordinator broadcasts are dropped (sites no longer exist) and coordinator
    requests are answered with the next recorded, not-yet-consumed reply from
    the requested site — which is exactly the reply the live run produced at
    that point, because the block protocol polls sites in a fixed order.
    """

    #: Replay delivers replies reentrantly on request, like the live
    #: synchronous channel it stands in for.
    is_synchronous = True

    def __init__(self, transcript: Sequence[Message]) -> None:
        self._transcript = list(transcript)
        self._consumed = [False] * len(self._transcript)
        self._handler: Optional[Callable[[Message], None]] = None

    def register_coordinator(self, handler: Callable[[Message], None]) -> None:
        self._handler = handler

    def consume_reports(self, up_to_time: int) -> None:
        """Deliver all REPORT messages with ``time <= up_to_time`` in order."""
        if self._handler is None:
            raise QueryError("replay channel has no coordinator attached")
        for index, message in enumerate(self._transcript):
            if message.time > up_to_time:
                break
            if self._consumed[index] or message.kind is not MessageKind.REPORT:
                continue
            self._consumed[index] = True
            self._handler(message)

    def send_to_site(self, message: Message) -> None:
        if message.kind is MessageKind.BROADCAST:
            return
        if message.kind is not MessageKind.REQUEST:
            return
        if self._handler is None:
            raise QueryError("replay channel has no coordinator attached")
        for index, recorded in enumerate(self._transcript):
            if self._consumed[index] or recorded.kind is not MessageKind.REPLY:
                continue
            if recorded.sender == message.receiver:
                self._consumed[index] = True
                self._handler(recorded)
                return
        raise QueryError(
            f"transcript has no unconsumed reply from site {message.receiver}; "
            "the transcript is inconsistent with the coordinator's protocol"
        )


class TranscriptTracer:
    """A tracing summary built from a tracking algorithm's communication transcript.

    Args:
        factory: Any tracker factory exposing ``build_network()`` (the
            Section 3 trackers and all baselines qualify).
    """

    def __init__(self, factory) -> None:
        self._factory = factory
        self._transcript: List[Message] = []
        self._length = 0
        self._built = False

    @property
    def transcript(self) -> List[Message]:
        """The recorded coordinator-bound message transcript."""
        return list(self._transcript)

    def summary_bits(self) -> int:
        """Size of the summary: total bits of the recorded transcript."""
        return sum(message.bits() for message in self._transcript)

    def summary_messages(self) -> int:
        """Number of messages in the recorded transcript."""
        return len(self._transcript)

    def build(self, updates: Sequence[Update]) -> "TranscriptTracer":
        """Run the tracker over the stream, recording its transcript."""
        network: MonitoringNetwork = self._factory.build_network()
        network.channel.enable_log()
        for update in updates:
            network.deliver_update(update.time, update.site, update.delta)
        # Only messages arriving at the coordinator shape its state, so the
        # replayable summary is the coordinator-bound half of the transcript.
        self._transcript = [
            message
            for message in network.channel.log
            if message.kind in (MessageKind.REPORT, MessageKind.REPLY)
        ]
        self._length = len(updates)
        self._built = True
        return self

    def query(self, time: int) -> float:
        """Return the tracker's estimate of ``f(time)`` by transcript replay."""
        if not self._built:
            raise QueryError("build() must be called before query()")
        if not 1 <= time <= self._length:
            raise QueryError(f"query time must be in 1..{self._length}, got {time}")
        coordinator: Coordinator = self._factory.build_coordinator() if hasattr(
            self._factory, "build_coordinator"
        ) else self._factory.build_network().coordinator
        replay = _ReplayChannel(self._transcript)
        coordinator.attach(replay)
        replay.consume_reports(time)
        return coordinator.estimate()

    def trace(self, times: Sequence[int]) -> List[float]:
        """Answer a batch of historical queries (one replay pass per query)."""
        return [self.query(time) for time in times]
