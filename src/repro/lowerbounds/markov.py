"""Two-state Markov chain modelling the overlap of two random flip sequences.

In the Lemma 4.4 construction two independently drawn sequences either agree
(state ``same``) or disagree (state ``different``) at each time; each step the
pair stays in its state with probability ``alpha = 1 - 2p(1 - p)`` and
switches with probability ``1 - alpha`` (both sequences flip independently
with probability ``p``).  The overlap between the sequences is the number of
steps spent in state ``same``, whose concentration is controlled by the
chain's mixing time, ``T <= 3 / (2 p (1 - p)) <= 9 eps n / v`` when
``p = v / (6 eps n)``.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["OverlapChain"]


class OverlapChain:
    """The two-state overlap chain with flip probability ``p``."""

    def __init__(self, flip_probability: float) -> None:
        if not 0.0 < flip_probability < 1.0:
            raise ConfigurationError(
                f"flip probability must be in (0, 1), got {flip_probability}"
            )
        self.flip_probability = flip_probability

    @property
    def switch_probability(self) -> float:
        """Probability ``2p(1-p)`` that the pair changes state in one step."""
        p = self.flip_probability
        return 2.0 * p * (1.0 - p)

    @property
    def stay_probability(self) -> float:
        """Probability ``alpha = 1 - 2p(1-p)`` of staying in the same state."""
        return 1.0 - self.switch_probability

    def transition_matrix(self) -> np.ndarray:
        """Return the 2x2 transition matrix over states (same, different)."""
        alpha = self.stay_probability
        return np.array([[alpha, 1.0 - alpha], [1.0 - alpha, alpha]])

    def stationary_distribution(self) -> np.ndarray:
        """The stationary distribution, which is uniform (1/2, 1/2)."""
        return np.array([0.5, 0.5])

    def expected_overlap_fraction(self) -> float:
        """Expected fraction of steps in state ``same`` started from stationarity."""
        return 0.5

    def mixing_time_bound(self) -> float:
        """The paper's bound ``3 / (2 p (1 - p))`` on the (1/8)-mixing time."""
        return 3.0 / self.switch_probability

    def exact_mixing_time(self, total_variation: float = 0.125) -> int:
        """Smallest ``t`` with ``|alpha'|^t <= 2 * total_variation`` (worst-case start).

        For a two-state symmetric chain the distance from stationarity after
        ``t`` steps from a point mass is ``|2 alpha - 1|^t / 2``.
        """
        if not 0.0 < total_variation < 1.0:
            raise ConfigurationError(
                f"total_variation must be in (0, 1), got {total_variation}"
            )
        second_eigenvalue = abs(2.0 * self.stay_probability - 1.0)
        if second_eigenvalue == 0.0:
            return 1
        steps = math.log(2.0 * total_variation) / math.log(second_eigenvalue)
        return max(1, int(math.ceil(steps)))

    def simulate_overlap(
        self, steps: int, seed: Optional[int] = None
    ) -> int:
        """Simulate the chain from stationarity and return the overlap count."""
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {steps}")
        rng = np.random.default_rng(seed)
        same = bool(rng.random() < 0.5)
        overlap = 0
        switch = self.switch_probability
        draws = rng.random(steps)
        for draw in draws:
            if draw < switch:
                same = not same
            if same:
                overlap += 1
        return overlap

    def simulate_overlap_fractions(
        self, steps: int, trials: int, seed: Optional[int] = None
    ) -> List[float]:
        """Simulate several walks and return the overlap fraction of each."""
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        rng = np.random.default_rng(seed)
        return [
            self.simulate_overlap(steps, seed=int(rng.integers(0, 2**31))) / steps
            for _ in range(trials)
        ]
