"""Overlap counting and the matching predicate (Section 4.2).

Two sequences ``f`` and ``g`` of equal length *overlap* at a position ``t``
when ``|f(t) - g(t)| <= eps * max(f(t), g(t))``; they *match* when they
overlap in at least a ``6/10`` fraction of positions.  The randomized lower
bound needs a large family in which no two sequences match, because any
summary good enough to reconstruct 90% of one sequence's positions then
identifies the sequence uniquely.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError

__all__ = ["MATCH_FRACTION", "overlap_count", "overlap_fraction", "sequences_match"]

#: Fraction of overlapping positions at which two sequences are said to match.
MATCH_FRACTION = 0.6


def overlap_count(
    first: Sequence[int], second: Sequence[int], epsilon: float
) -> int:
    """Number of positions at which the two sequences overlap.

    Args:
        first: Value sequence ``f(1..n)``.
        second: Value sequence ``g(1..n)`` of the same length.
        epsilon: Relative-error radius used in the overlap test.

    Raises:
        ConfigurationError: If the sequences have different lengths.
    """
    if len(first) != len(second):
        raise ConfigurationError(
            f"sequences must have equal length, got {len(first)} and {len(second)}"
        )
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    overlaps = 0
    for f_value, g_value in zip(first, second):
        if abs(f_value - g_value) <= epsilon * max(f_value, g_value):
            overlaps += 1
    return overlaps


def overlap_fraction(
    first: Sequence[int], second: Sequence[int], epsilon: float
) -> float:
    """Fraction of positions at which the two sequences overlap."""
    if not first:
        return 0.0
    return overlap_count(first, second, epsilon) / len(first)


def sequences_match(
    first: Sequence[int], second: Sequence[int], epsilon: float
) -> bool:
    """Whether the two sequences overlap in at least ``MATCH_FRACTION`` of positions."""
    return overlap_fraction(first, second, epsilon) >= MATCH_FRACTION
