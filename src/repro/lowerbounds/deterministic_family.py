"""The deterministic hard family of Theorem 4.1.

Fix ``eps = 1/m`` for an integer ``m >= 2``, a stream length ``n`` and an even
number ``r <= n^c`` of "flip" positions.  For every size-``r`` subset ``S`` of
``{1..n}`` define the sequence ``f_S`` by ``f_S(0) = m`` and

    f_S(t) = f_S(t-1)            if t not in S
    f_S(t) = (2m + 3) - f_S(t-1) if t in S,

i.e. the value flips between ``m`` and ``m + 3`` exactly at the times in
``S``.  Properties proved in the paper and checked by the tests/benchmarks:

* distinct subsets give distinct sequences (so the family has ``C(n, r)``
  members and indexing a member takes ``Omega(r log n)`` bits);
* every member has f-variability exactly ``(6m + 9) / (2m + 6) * eps * r``
  (each ``m -> m+3`` flip contributes ``3/(m+3)``, each ``m+3 -> m`` flip
  contributes ``3/m``);
* no value within ``eps * m`` of ``m`` is within ``eps * (m + 3)`` of
  ``m + 3``, so an eps-accurate tracer distinguishes every pair of members
  and therefore needs ``Omega(r log n) = Omega((v/eps) log n)`` bits.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "flip_sequence_values",
    "flip_sequence_deltas",
    "flip_family_variability",
    "DeterministicFlipFamily",
]


def flip_sequence_values(n: int, level: int, flip_times: Sequence[int]) -> List[int]:
    """Return the value sequence ``f_S(1..n)`` for flip set ``S = flip_times``.

    Args:
        n: Stream length.
        level: The lower value ``m`` (the paper uses ``m = 1/eps``).
        flip_times: The set ``S`` of flip positions, each in ``1..n``.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if level < 2:
        raise ConfigurationError(f"level m must be >= 2, got {level}")
    flip_set = set(int(t) for t in flip_times)
    if flip_set and (min(flip_set) < 1 or max(flip_set) > n):
        raise ConfigurationError("flip times must lie in 1..n")
    values = []
    current = level
    for t in range(1, n + 1):
        if t in flip_set:
            current = (2 * level + 3) - current
        values.append(current)
    return values


def flip_sequence_deltas(n: int, level: int, flip_times: Sequence[int]) -> List[int]:
    """Return the delta sequence ``f'(1..n)`` of the flip sequence (with ``f(0) = m``)."""
    values = flip_sequence_values(n, level, flip_times)
    deltas = []
    previous = level
    for value in values:
        deltas.append(value - previous)
        previous = value
    return deltas


def flip_family_variability(level: int, num_flips: int) -> float:
    """The exact variability ``(6m + 9) / (2m + 6) * eps * r`` of a family member.

    Args:
        level: The lower value ``m = 1/eps``.
        num_flips: The (even) number of flips ``r``.
    """
    if level < 2:
        raise ConfigurationError(f"level m must be >= 2, got {level}")
    if num_flips < 0 or num_flips % 2 != 0:
        raise ConfigurationError(f"num_flips must be even and >= 0, got {num_flips}")
    epsilon = 1.0 / level
    return (6 * level + 9) / (2 * level + 6) * epsilon * num_flips


class DeterministicFlipFamily:
    """The Theorem 4.1 family for parameters ``(n, m, r)``.

    The family is indexed lexicographically by its flip sets, so a member can
    be addressed by an integer in ``0 .. C(n, r) - 1`` — which is exactly how
    the INDEX reduction of Lemma 4.3 uses it.
    """

    def __init__(self, n: int, level: int, num_flips: int) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if level < 2:
            raise ConfigurationError(f"level m must be >= 2, got {level}")
        if num_flips < 2 or num_flips % 2 != 0:
            raise ConfigurationError(
                f"num_flips must be even and >= 2, got {num_flips}"
            )
        if num_flips > n:
            raise ConfigurationError(
                f"num_flips ({num_flips}) cannot exceed the stream length ({n})"
            )
        self.n = n
        self.level = level
        self.num_flips = num_flips

    @property
    def epsilon(self) -> float:
        """The relative-error parameter ``eps = 1/m`` the family is hard for."""
        return 1.0 / self.level

    def size(self) -> int:
        """Family size ``C(n, r)``."""
        return math.comb(self.n, self.num_flips)

    def index_bits(self) -> float:
        """Bits needed to index a member, ``log2 C(n, r)``."""
        return math.log2(self.size())

    def paper_bit_lower_bound(self) -> float:
        """The ``r log2(n / r)`` bound the paper states (a lower bound on ``index_bits``)."""
        return self.num_flips * math.log2(self.n / self.num_flips)

    def member_variability(self) -> float:
        """The common variability of every member."""
        return flip_family_variability(self.level, self.num_flips)

    def flip_times(self, index: int) -> Tuple[int, ...]:
        """Return the ``index``-th flip set in lexicographic order.

        Uses the combinatorial number system, so it works for astronomically
        large families without enumerating them.
        """
        if not 0 <= index < self.size():
            raise ConfigurationError(
                f"index {index} out of range 0..{self.size() - 1}"
            )
        chosen: List[int] = []
        remaining = index
        next_candidate = 1
        slots_left = self.num_flips
        while slots_left > 0:
            # Count combinations that keep `next_candidate` out of the set.
            without = math.comb(self.n - next_candidate, slots_left - 1)
            if remaining < without:
                chosen.append(next_candidate)
                slots_left -= 1
            else:
                remaining -= without
            next_candidate += 1
        return tuple(chosen)

    def index_of(self, flip_times: Sequence[int]) -> int:
        """Inverse of :meth:`flip_times` (lexicographic rank of a flip set)."""
        flips = sorted(int(t) for t in flip_times)
        if len(flips) != self.num_flips or len(set(flips)) != self.num_flips:
            raise ConfigurationError(
                f"expected {self.num_flips} distinct flip times, got {flip_times}"
            )
        if flips[0] < 1 or flips[-1] > self.n:
            raise ConfigurationError("flip times must lie in 1..n")
        rank = 0
        previous = 0
        for position, flip in enumerate(flips):
            for skipped in range(previous + 1, flip):
                rank += math.comb(self.n - skipped, self.num_flips - position - 1)
            previous = flip
        return rank

    def member_values(self, index: int) -> List[int]:
        """Return the value sequence of the ``index``-th member."""
        return flip_sequence_values(self.n, self.level, self.flip_times(index))

    def member_deltas(self, index: int) -> List[int]:
        """Return the delta sequence of the ``index``-th member."""
        return flip_sequence_deltas(self.n, self.level, self.flip_times(index))

    def decode(self, values: Sequence[int]) -> int:
        """Recover the member index from an eps-accurate value sequence.

        Any estimate sequence ``fhat`` with ``|fhat(t) - f(t)| <= eps f(t)``
        for every ``t`` suffices: round each estimate to whichever of ``m`` or
        ``m + 3`` it is closer to, read off the flip set, and rank it.
        """
        if len(values) != self.n:
            raise ConfigurationError(
                f"expected {self.n} values, got {len(values)}"
            )
        midpoint = self.level + 1.5
        flips = []
        previous_high = False
        for t, value in enumerate(values, start=1):
            high = value > midpoint
            if high != previous_high:
                flips.append(t)
                previous_high = high
        return self.index_of(flips)

    def enumerate_members(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield flip sets in lexicographic order (up to ``limit`` of them)."""
        count = 0
        for combo in itertools.combinations(range(1, self.n + 1), self.num_flips):
            yield combo
            count += 1
            if limit is not None and count >= limit:
                return

    def sample_indices(self, count: int, seed: Optional[int] = None) -> List[int]:
        """Sample ``count`` distinct member indices uniformly (for experiments).

        The family size ``C(n, r)`` easily exceeds 64-bit integers, so instead
        of drawing an index directly we draw a uniform random flip *set* (a
        random ``r``-subset of ``1..n``) and rank it, which induces the same
        uniform distribution over indices without ever materialising the size
        as a machine integer.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        size = self.size()
        if count > size:
            raise ConfigurationError(
                f"cannot sample {count} distinct members from a family of size {size}"
            )
        rng = np.random.default_rng(seed)
        if size <= 4 * count:
            return sorted(int(i) for i in rng.choice(size, size=count, replace=False))
        picked = set()
        while len(picked) < count:
            flips = sorted(int(t) + 1 for t in rng.choice(self.n, size=self.num_flips, replace=False))
            picked.add(self.index_of(flips))
        return sorted(picked)
