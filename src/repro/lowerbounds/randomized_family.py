"""The randomized hard family of Lemma 4.4.

Each member is drawn independently: the initial value is ``m = 1/eps`` or
``m + 3`` with probability 1/2 each, and at every subsequent step the value
flips with probability ``p = v / (6 eps n)``.  The lemma shows that (for the
paper's astronomically large constants) the family simultaneously satisfies

1. no two members *match* (overlap in ``>= 6/10`` of positions), and
2. every member has variability at most ``v``

with constant probability, and that such a family can be made of size
``exp(Omega(v / eps))``.  The constants make the full-size construction
infeasible to instantiate literally, so this module exposes the *sampler* and
the two property checks; the E10 benchmark samples moderate families and
verifies both properties empirically (plus the concentration of the overlap
around its mean of ``n/2``, far below the ``6/10`` matching threshold).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.variability import variability_increment
from repro.exceptions import ConfigurationError
from repro.lowerbounds.overlap import overlap_fraction, sequences_match

__all__ = ["RandomizedFamilyReport", "RandomizedFlipFamily"]


@dataclass(frozen=True)
class RandomizedFamilyReport:
    """Summary statistics of a sampled family (used by tests and the E10 bench).

    Attributes:
        family_size: Number of sampled sequences.
        matching_pairs: Number of pairs that match (should be 0 or tiny).
        max_overlap_fraction: Largest pairwise overlap fraction observed.
        max_variability: Largest member variability observed.
        variability_budget: The target bound ``v``.
        over_budget_members: Members whose variability exceeds ``v``.
    """

    family_size: int
    matching_pairs: int
    max_overlap_fraction: float
    max_variability: float
    variability_budget: float
    over_budget_members: int


class RandomizedFlipFamily:
    """Sampler and property checker for the Lemma 4.4 construction."""

    def __init__(self, n: int, epsilon: float, variability_budget: float) -> None:
        if n < 2:
            raise ConfigurationError(f"n must be >= 2, got {n}")
        if not 0.0 < epsilon <= 0.5:
            raise ConfigurationError(f"epsilon must be in (0, 0.5], got {epsilon}")
        if variability_budget <= 0.0:
            raise ConfigurationError(
                f"variability budget must be > 0, got {variability_budget}"
            )
        flip_probability = variability_budget / (6.0 * epsilon * n)
        if flip_probability >= 1.0:
            raise ConfigurationError(
                "v / (6 eps n) must be < 1; increase n or decrease the budget "
                f"(got p = {flip_probability:.3f})"
            )
        self.n = n
        self.epsilon = epsilon
        self.variability_budget = variability_budget
        self.flip_probability = flip_probability
        self.level = max(2, int(round(1.0 / epsilon)))

    def expected_flips(self) -> float:
        """Expected number of flips per member, ``p * n = v / (6 eps)``."""
        return self.flip_probability * self.n

    def sample_member(self, seed: Optional[int] = None) -> List[int]:
        """Draw one member's value sequence ``f(1..n)``."""
        rng = np.random.default_rng(seed)
        low, high = self.level, self.level + 3
        current = low if rng.random() < 0.5 else high
        flips = rng.random(self.n) < self.flip_probability
        values = []
        for flip in flips:
            if flip:
                current = low + high - current
            values.append(current)
        return values

    def sample_family(self, size: int, seed: Optional[int] = None) -> List[List[int]]:
        """Draw ``size`` independent members."""
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        rng = np.random.default_rng(seed)
        return [
            self.sample_member(seed=int(rng.integers(0, 2**31))) for _ in range(size)
        ]

    def member_variability(self, values: List[int]) -> float:
        """Exact f-variability of a member (with ``f(0)`` equal to its first value)."""
        total = 0.0
        previous = values[0]
        for value in values:
            total += variability_increment(value, value - previous)
            previous = value
        return total

    def paper_family_size(self) -> float:
        """The size ``exp(v / (2 * 32400 * eps)) / 10`` from the lemma's proof.

        Returned as a float (it overflows any practical family for realistic
        parameters); exposed so the benchmark can report how far beyond
        experimental reach the worst-case constants sit.
        """
        exponent = self.variability_budget / (2.0 * 32400.0 * self.epsilon)
        return math.exp(exponent) / 10.0

    def check_family(self, members: List[List[int]]) -> RandomizedFamilyReport:
        """Check the two Lemma 4.4 properties on a sampled family."""
        if not members:
            raise ConfigurationError("family must contain at least one member")
        matching_pairs = 0
        max_overlap = 0.0
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                fraction = overlap_fraction(members[i], members[j], self.epsilon)
                max_overlap = max(max_overlap, fraction)
                if sequences_match(members[i], members[j], self.epsilon):
                    matching_pairs += 1
        variabilities = [self.member_variability(member) for member in members]
        over_budget = sum(1 for v in variabilities if v > self.variability_budget)
        return RandomizedFamilyReport(
            family_size=len(members),
            matching_pairs=matching_pairs,
            max_overlap_fraction=max_overlap,
            max_variability=max(variabilities),
            variability_budget=self.variability_budget,
            over_budget_members=over_budget,
        )

    def overlap_statistics(
        self, pairs: int, seed: Optional[int] = None
    ) -> Tuple[float, float]:
        """Mean and max overlap fraction over ``pairs`` freshly sampled pairs."""
        if pairs < 1:
            raise ConfigurationError(f"pairs must be >= 1, got {pairs}")
        rng = np.random.default_rng(seed)
        fractions = []
        for _ in range(pairs):
            first = self.sample_member(seed=int(rng.integers(0, 2**31)))
            second = self.sample_member(seed=int(rng.integers(0, 2**31)))
            fractions.append(overlap_fraction(first, second, self.epsilon))
        return float(np.mean(fractions)), float(np.max(fractions))
