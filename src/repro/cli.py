"""Command-line interface: quick experiments without writing a script.

The CLI exposes the library's main measurement loops so that a user can poke
at the paper's claims directly from a shell::

    python -m repro variability --stream random_walk --lengths 1000 4000 16000
    python -m repro tracking --stream biased_walk --sites 8 --epsilon 0.1
    python -m repro frequency --length 10000 --universe 500 --epsilon 0.2
    python -m repro lowerbound --n 256 --level 8 --flips 8
    python -m repro throughput --length 1000000 --sites 4 16 64
    python -m repro latency --stream biased_walk --scales 0 1 4 16 64
    python -m repro trace --stream random_walk --length 1000000 --out big.npz
    python -m repro run --config examples/specs/quickstart.json
    python -m repro serve --config examples/specs/live_service.json

Each subcommand prints a plain-text table in the same format the benchmark
harness uses for EXPERIMENTS.md.  ``tracking``, ``throughput`` and
``latency`` share one delivery-engine selector, ``--engine
{auto,per-update,batched,arrays}`` (every engine produces identical
results; see :mod:`repro.monitoring.runner` and
:mod:`repro.engine`): ``per-update`` dispatches one update at a time,
``batched`` runs the span kernel's closed-form fast path, and ``arrays``
replays a columnar trace file (``--trace``, CSV or npz; npz traces are
memory-mapped with ``--mmap``) with no per-update objects at all — over a
tree topology the replay routes tree-direct
(:func:`repro.monitoring.runner.run_tracking_tree_arrays`): segments go
straight to their leaf through one precomputed routing map, and leaves the
trace never touches are never built.
``throughput`` measures what the chosen fast engine buys over per-update
dispatch, ``latency`` sweeps the asynchronous transport's delivery-latency
scale against the achieved error and staleness (:mod:`repro.asynchrony`;
``--engine batched`` there bulk-schedules spans, one in-flight event per
span), and ``trace`` generates a distributed trace file for the ``arrays``
engine.  ``tracking``, ``throughput`` and ``latency`` all accept
``--shards`` to run the two-level sharded coordinator hierarchy
(:mod:`repro.monitoring.sharding`) instead of the flat star; ``tracking``
and ``latency`` additionally accept ``--levels``/``--fanout`` to run the
recursive L-level monitoring tree (:mod:`repro.monitoring.tree` —
``--shards S`` is exactly ``--levels 2 --fanout S``), and ``run``,
``latency`` and ``throughput`` accept ``--workers`` to spread independent
grid points over a process pool.

Every engine-aware subcommand is a thin shim over the unified experiment
API (:mod:`repro.api`): one spec-builder maps the shared argument
vocabulary onto a :class:`~repro.api.RunSpec` and the handlers sweep
whichever axis their table varies.  ``run`` closes the loop: any scenario
saved as JSON (``RunSpec.save``, or written by hand — see
``examples/specs/``) executes with ``python -m repro run --config
spec.json``, with ``--set field.path=value`` overrides for smoke-sized
replays (``--summary-out`` writes the JSON to a file instead of stdout).
``serve`` turns a spec into a long-lived service: a live tracker fed over a
TCP line protocol, scraped at ``/metrics`` and ``/status``
(:mod:`repro.observability`).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import Callable, Dict, List, Optional, Sequence

from repro.api import (
    STREAM_REGISTRY,
    RunSpec,
    SourceSpec,
    Sweep,
    TopologySpec,
    TrackerSpec,
    TransportSpec,
)
from repro.analysis import format_table, measure_engine_throughput
from repro.analysis.bounds import deterministic_message_bound
from repro.core import DeterministicCounter, variability
from repro.core.frequencies import FrequencyTracker, HashReducer, run_frequency_tracking
from repro.lowerbounds import DeterministicFlipFamily, IndexReduction, TranscriptTracer
from repro.streams import ItemStreamConfig, zipfian_item_stream
from repro.streams.model import StreamSpec

__all__ = ["main", "build_parser", "STREAM_GENERATORS"]

#: Stream classes selectable from the command line — the spec registry's
#: vocabulary (:data:`repro.api.STREAM_REGISTRY`), re-exposed under the
#: historical ``(n, seed) -> StreamSpec`` calling convention.
STREAM_GENERATORS: Dict[str, Callable[[int, int], StreamSpec]] = {
    name: (lambda n, seed, _build=builder: _build(n, seed))
    for name, builder in STREAM_REGISTRY.items()
}

#: Tracker axis every ``tracking`` table sweeps, with display labels.
_TRACKING_TABLE = (
    ("naive", "naive"),
    ("cormode", "cormode"),
    ("liu", "liu-style"),
    ("deterministic", "deterministic"),
    ("randomized", "randomized"),
)

#: The one delivery-engine vocabulary every subcommand shares
#: ("per-update" and "perupdate" are interchangeable spellings).
ENGINE_CHOICES = ["auto", "per-update", "perupdate", "batched", "arrays"]


def _add_engine_option(parser: argparse.ArgumentParser, extra: str = "") -> None:
    """Attach the shared ``--engine`` selector to one subcommand parser.

    A single helper rather than per-subcommand argument definitions, so the
    engine vocabulary — and its help text — cannot drift between
    ``tracking``, ``throughput`` and ``latency``.
    """
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="delivery engine: per-update dispatch, the batched span kernel, "
        "or columnar replay of a --trace file (tree-direct when the "
        "topology is hierarchical; identical results across engines)"
        + extra,
    )


def _add_tree_options(parser: argparse.ArgumentParser) -> None:
    """Attach the L-level tree topology selectors to one subcommand parser."""
    parser.add_argument(
        "--levels",
        type=int,
        default=None,
        help="coordinator levels of a recursive monitoring tree (give "
        "--fanout too; --shards S is exactly --levels 2 --fanout S)",
    )
    parser.add_argument(
        "--fanout",
        type=int,
        default=None,
        help="children per aggregation node of the tree (with --levels)",
    )


def _add_workers_option(parser: argparse.ArgumentParser, what: str) -> None:
    """Attach the shared ``--workers`` process-pool selector."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=f"process-pool width for {what} (1 = serial; results are "
        "identical and stay in order either way)",
    )


def _topology_label(args: argparse.Namespace) -> str:
    """The header fragment describing the chosen topology."""
    levels = getattr(args, "levels", None)
    fanout = getattr(args, "fanout", None)
    if levels is not None or fanout is not None:
        return f"levels={levels} fanout={fanout}"
    return f"shards={getattr(args, 'shards', 1)}"


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    """Attach the trace-file inputs that the ``arrays`` engine replays."""
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace file for --engine arrays (.npz from `repro trace` / "
        "save_trace_npz, anything else parsed as time,site,delta CSV)",
    )
    parser.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map an .npz trace instead of loading it (replay traces "
        "larger than RAM)",
    )


def _resolve_engine(parser: argparse.ArgumentParser, args: argparse.Namespace) -> str:
    """Normalise and validate the shared ``--engine``/``--trace`` options.

    Returns one of ``auto``, ``perupdate``, ``batched`` or ``arrays``;
    invalid combinations (``arrays`` without a trace file, a trace file
    without the ``arrays`` engine, ``--mmap`` on a CSV trace) exit through
    ``parser.error`` with an actionable message.
    """
    engine = {"per-update": "perupdate"}.get(args.engine, args.engine)
    trace = getattr(args, "trace", None)
    if engine == "arrays" and args.command == "latency":
        parser.error(
            "the arrays engine replays traces synchronously; latency drives "
            "the asynchronous transport — choose per-update or batched"
        )
    if engine == "perupdate" and args.command == "throughput":
        parser.error(
            "per-update dispatch is the baseline every throughput row is "
            "measured against; choose batched or arrays as the measured engine"
        )
    if engine == "arrays" and trace is None:
        parser.error(
            "--engine arrays replays a recorded trace; pass one with "
            "--trace (generate it with `python -m repro trace`)"
        )
    if trace is not None and engine != "arrays":
        parser.error(
            f"--trace is the input of the arrays engine; combine it with "
            f"--engine arrays (got --engine {args.engine})"
        )
    if getattr(args, "mmap", False):
        if trace is None:
            parser.error(
                "--mmap memory-maps a trace file; combine it with "
                "--engine arrays --trace PATH"
            )
        if not str(trace).endswith(".npz"):
            parser.error("--mmap applies to binary .npz traces only")
    return engine


def _load_cli_trace(args: argparse.Namespace):
    """Load ``--trace`` for the arrays engine, honouring ``--mmap``."""
    from repro.streams import load_trace

    return load_trace(args.trace, mmap_mode="r" if args.mmap else None)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiments for the 'Variability in Data Streams' reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    variability_parser = subparsers.add_parser(
        "variability", help="measure the variability of a stream class across lengths"
    )
    variability_parser.add_argument("--stream", choices=STREAM_GENERATORS, default="random_walk")
    variability_parser.add_argument(
        "--lengths", type=int, nargs="+", default=[1_000, 4_000, 16_000]
    )
    variability_parser.add_argument("--seed", type=int, default=0)

    tracking_parser = subparsers.add_parser(
        "tracking", help="compare trackers on one distributed stream"
    )
    tracking_parser.add_argument("--stream", choices=STREAM_GENERATORS, default="biased_walk")
    tracking_parser.add_argument("--length", type=int, default=20_000)
    tracking_parser.add_argument("--sites", type=int, default=4)
    tracking_parser.add_argument("--epsilon", type=float, default=0.1)
    tracking_parser.add_argument("--seed", type=int, default=0)
    _add_engine_option(tracking_parser)
    _add_trace_option(tracking_parser)
    tracking_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="coordinator shards; above 1 every tracker runs as a two-level "
        "hierarchy (disjoint site groups under a root aggregator) and message "
        "totals include the shard-to-root hops",
    )
    _add_tree_options(tracking_parser)

    throughput_parser = subparsers.add_parser(
        "throughput",
        help="measure the batched engine's speedup over per-update dispatch",
    )
    throughput_parser.add_argument("--length", type=int, default=1_000_000)
    throughput_parser.add_argument("--sites", type=int, nargs="+", default=[4, 16, 64])
    throughput_parser.add_argument("--epsilon", type=float, default=0.1)
    throughput_parser.add_argument(
        "--block-length",
        type=int,
        default=4_096,
        help="contiguous updates per site (blocked stream-to-site assignment; "
        "unrelated to coordinator sharding — that is --shards)",
    )
    throughput_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="coordinator shards for both engines (1 = flat topology)",
    )
    throughput_parser.add_argument("--record-every", type=int, default=20_000)
    throughput_parser.add_argument("--seed", type=int, default=31)
    _add_workers_option(
        throughput_parser, "the site-count x tracker measurement grid"
    )
    _add_engine_option(
        throughput_parser,
        extra="; auto picks batched, per-update alone is the baseline and "
        "cannot be the measured engine",
    )
    _add_trace_option(throughput_parser)

    latency_parser = subparsers.add_parser(
        "latency",
        help="sweep delivery-latency scales on the asynchronous transport",
    )
    latency_parser.add_argument("--stream", choices=STREAM_GENERATORS, default="biased_walk")
    latency_parser.add_argument("--length", type=int, default=20_000)
    latency_parser.add_argument("--sites", type=int, default=8)
    latency_parser.add_argument("--epsilon", type=float, default=0.1)
    latency_parser.add_argument(
        "--scales",
        type=float,
        nargs="+",
        default=[0.0, 1.0, 4.0, 16.0, 64.0],
        help="latency scales in virtual-time units (0 = the paper's synchronous model)",
    )
    latency_parser.add_argument(
        "--algorithm",
        choices=["deterministic", "randomized", "naive"],
        default="deterministic",
    )
    latency_parser.add_argument(
        "--model",
        choices=["constant", "uniform", "heavytail"],
        default="uniform",
        help="latency distribution: constant delay, uniform jitter on "
        "[scale/2, 3*scale/2], or Pareto tail around the scale",
    )
    latency_parser.add_argument(
        "--allow-reordering",
        action="store_true",
        help="let messages overtake each other on a link (default: per-link FIFO)",
    )
    latency_parser.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="per-attempt message loss probability in [0, 1); lost messages "
        "are retransmitted after a timeout and charged honestly",
    )
    latency_parser.add_argument(
        "--loss-model",
        choices=["iid", "burst"],
        default="iid",
        help="loss process: 'iid' drops each attempt independently, 'burst' "
        "is a Gilbert-Elliott chain with correlated bad spells",
    )
    latency_parser.add_argument(
        "--loss-seed",
        type=int,
        default=0,
        help="seed for the loss process (independent of latency/stream seeds)",
    )
    latency_parser.add_argument(
        "--repair",
        action="store_true",
        help="sequence-number block closes so reply-to-broadcast drift is "
        "kept instead of discarded (fixes the naive protocol's bias under "
        "delay and loss)",
    )
    latency_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="coordinator shards; above 1 the shard-to-root hop becomes a "
        "second latency leg with the same model",
    )
    _add_tree_options(latency_parser)
    latency_parser.add_argument("--record-every", type=int, default=25)
    latency_parser.add_argument("--seed", type=int, default=0)
    _add_workers_option(latency_parser, "the latency-scale sweep")
    _add_engine_option(
        latency_parser,
        extra="; auto picks per-update (exact per-message timing), batched "
        "bulk-schedules spans (one in-flight event per span), arrays is "
        "synchronous-only and rejected here",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="generate a distributed trace file for the arrays engine",
    )
    trace_parser.add_argument("--stream", choices=STREAM_GENERATORS, default="random_walk")
    trace_parser.add_argument("--length", type=int, default=1_000_000)
    trace_parser.add_argument("--sites", type=int, default=4)
    trace_parser.add_argument("--seed", type=int, default=31)
    trace_parser.add_argument(
        "--block-length",
        type=int,
        default=4_096,
        help="contiguous updates per site (0 = round-robin assignment)",
    )
    trace_parser.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="output file; .npz writes the memory-mappable binary format, "
        "anything else the time,site,delta CSV",
    )

    run_parser = subparsers.add_parser(
        "run",
        help="execute a saved RunSpec scenario (JSON) through the unified API",
    )
    run_parser.add_argument(
        "--config",
        required=True,
        action="append",
        metavar="PATH",
        dest="configs",
        help="RunSpec JSON document (write one with RunSpec.save, or by hand; "
        "see examples/specs/).  Repeatable: several configs run as one "
        "batch (a process pool with --workers) and print a JSON array",
    )
    run_parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        dest="overrides",
        help="override one spec field by dotted path before running, e.g. "
        "--set source.length=2000 --set transport.scale=4.0 (repeatable; "
        "values are parsed as JSON, falling back to strings)",
    )
    run_parser.add_argument(
        "--records",
        action="store_true",
        help="include the per-step records in the JSON output "
        "(TrackingResult.to_dict instead of summary)",
    )
    run_parser.add_argument(
        "--summary-out",
        metavar="PATH",
        default=None,
        help="write the JSON document to PATH instead of stdout "
        "(stdout then carries a one-line confirmation)",
    )
    run_parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="profile the run(s) under cProfile and dump binary pstats to "
        "PATH (inspect with `python -m pstats PATH`); runs in-process, so "
        "not combinable with --workers > 1",
    )
    _add_workers_option(run_parser, "running several --config files")

    serve_parser = subparsers.add_parser(
        "serve",
        help="stand up a live tracker service (HTTP /metrics + /status, "
        "TCP line feed) from a RunSpec",
    )
    serve_parser.add_argument(
        "--config",
        required=True,
        metavar="PATH",
        help="RunSpec JSON document with a source.live (or generator) "
        "source and a synchronous transport; see "
        "examples/specs/live_service.json",
    )
    serve_parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        dest="overrides",
        help="override one spec field by dotted path before serving "
        "(same vocabulary as `repro run --set`)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--http-port",
        type=int,
        default=8077,
        help="HTTP port for /metrics, /status and /healthz (0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--feed-port",
        type=int,
        default=8078,
        help="TCP port of the line-protocol update feed: one "
        "'time site delta' triple per line (0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for a fixed time then exit cleanly "
        "(default: until SIGINT/SIGTERM)",
    )
    serve_parser.add_argument(
        "--error-threshold",
        type=float,
        default=None,
        help="relative error that counts as a violation and raises the "
        "error alert (default: the spec's tracker.epsilon)",
    )
    serve_parser.add_argument(
        "--alert-value",
        type=float,
        action="append",
        default=[],
        dest="alert_values",
        metavar="VALUE",
        help="record an alert when the estimate crosses VALUE upward "
        "(repeatable)",
    )
    serve_parser.add_argument(
        "--trace-capacity",
        type=int,
        default=0,
        metavar="N",
        help="keep the last N structured trace events in memory "
        "(0 = tracing off)",
    )

    frequency_parser = subparsers.add_parser(
        "frequency", help="run the Appendix H frequency tracker on a Zipfian workload"
    )
    frequency_parser.add_argument("--length", type=int, default=10_000)
    frequency_parser.add_argument("--universe", type=int, default=500)
    frequency_parser.add_argument("--sites", type=int, default=4)
    frequency_parser.add_argument("--epsilon", type=float, default=0.2)
    frequency_parser.add_argument("--sketched", action="store_true", help="use the Count-Min reduction")
    frequency_parser.add_argument("--seed", type=int, default=0)

    lowerbound_parser = subparsers.add_parser(
        "lowerbound", help="build the Theorem 4.1 family and run the INDEX reduction"
    )
    lowerbound_parser.add_argument("--n", type=int, default=128)
    lowerbound_parser.add_argument("--level", type=int, default=8, help="m = 1/eps")
    lowerbound_parser.add_argument("--flips", type=int, default=6)
    lowerbound_parser.add_argument("--samples", type=int, default=3)
    lowerbound_parser.add_argument("--seed", type=int, default=0)

    return parser


def _command_variability(args: argparse.Namespace) -> str:
    generator = STREAM_GENERATORS[args.stream]
    rows: List[List[object]] = []
    for n in args.lengths:
        spec = generator(n, args.seed)
        v = variability(spec.deltas, start=spec.start)
        rows.append([n, round(v, 2), round(v / n, 5), spec.final_value()])
    return format_table(["n", "v(n)", "v(n)/n", "f(n)"], rows)


def _cli_spec(args: argparse.Namespace, engine: str = "auto") -> RunSpec:
    """The one spec-builder behind every engine-aware subcommand.

    Maps the shared argument vocabulary (``--stream``/``--length``/
    ``--sites``/``--seed``, ``--trace``/``--mmap``, ``--shards``,
    ``--engine`` and the latency knobs where present) onto a
    :class:`~repro.api.RunSpec`; subcommand handlers then sweep whichever
    axis their table varies instead of re-plumbing the knobs by hand.
    """
    trace = getattr(args, "trace", None)
    if engine == "arrays" and trace is not None:
        source = SourceSpec(
            stream=None, trace=trace, mmap=getattr(args, "mmap", False)
        )
    else:
        source = SourceSpec(
            stream=args.stream,
            length=args.length,
            seed=args.seed,
            sites=args.sites,
        )
    return RunSpec(
        source=source,
        tracker=TrackerSpec(
            name="deterministic", epsilon=args.epsilon, seed=args.seed
        ),
        topology=TopologySpec(
            shards=getattr(args, "shards", 1),
            levels=getattr(args, "levels", None),
            fanout=getattr(args, "fanout", None),
        ),
        engine=engine,
    )


def _tracking_rows(
    base: RunSpec, epsilon: float, stream_variability: float, columns=None
):
    """Sweep the tracker axis of ``base`` and tabulate one row per tracker.

    ``columns`` carries an already-loaded trace for arrays-engine sweeps, so
    the file is parsed once, not once per tracker.
    """
    sweep = Sweep(base, {"tracker.name": [name for name, _ in _TRACKING_TABLE]})
    labels = dict(_TRACKING_TABLE)
    rows: List[List[object]] = []
    for overrides, spec in sweep.specs():
        summary = spec.build(columns=columns).run().summary(epsilon)
        rows.append(
            [
                labels[overrides["tracker.name"]],
                summary["total_messages"],
                round(summary["max_relative_error"], 4),
                round(summary["violation_fraction"], 4),
                round(summary["total_messages"] / max(stream_variability, 1.0), 2),
            ]
        )
    return rows


def _command_tracking(args: argparse.Namespace) -> str:
    if args.engine == "arrays":
        trace = _load_cli_trace(args)
        num_sites = int(trace.sites.max()) + 1
        v = variability(trace.deltas)
        base = _cli_spec(args, engine="arrays")
        base.record_every = max(1, len(trace) // 5_000)
        rows = _tracking_rows(base, args.epsilon, v, columns=trace)
        header = (
            f"trace={args.trace} n={len(trace)} k={num_sites} eps={args.epsilon} "
            f"{_topology_label(args)} engine=arrays{' (mmap)' if args.mmap else ''} "
            f"v={v:.1f}"
        )
        table = format_table(
            ["algorithm", "messages", "max rel err", "violation frac", "msgs / v"],
            rows,
        )
        return header + "\n" + table
    base = _cli_spec(args, engine=args.engine)
    base.record_every = max(1, args.length // 5_000)
    stream = base.source.build_stream()
    v = variability(stream.deltas, start=stream.start)
    rows = _tracking_rows(base, args.epsilon, v)
    header = (
        f"stream={args.stream} n={args.length} k={args.sites} eps={args.epsilon} "
        f"{_topology_label(args)} "
        f"v={v:.1f} "
        f"(deterministic bound {deterministic_message_bound(args.sites, args.epsilon, v):.0f})"
    )
    table = format_table(
        ["algorithm", "messages", "max rel err", "violation frac", "msgs / v"], rows
    )
    return header + "\n" + table


def _command_run(args: argparse.Namespace) -> str:
    """``repro run --config spec.json``: execute any saved scenario.

    One ``--config`` prints the single run's JSON object (overrides applied,
    spec echoed, result summarised with its provenance stamp).  Several
    ``--config`` files run as a batch — a process pool when ``--workers``
    exceeds 1, since each spec runs on its own fresh network — and print a
    JSON array in argument order.
    """
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.profile is not None and args.workers > 1:
        raise SystemExit(
            "--profile traces the interpreter it runs in; child processes "
            "would escape it — drop --workers to profile"
        )
    overrides = _parse_overrides(args.overrides)
    specs = []
    for config in args.configs:
        spec = RunSpec.load(config)
        if overrides:
            spec = spec.with_overrides(overrides)
        specs.append(spec.validate())
    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            results = [spec.run() for spec in specs]
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
            # A top-N cumulative summary on stderr alongside the dump file:
            # the hotspots are visible immediately, without a second
            # `python -m pstats` invocation, and stdout stays pure JSON.
            stats = pstats.Stats(profiler, stream=sys.stderr)
            print(
                f"-- profile: top 15 by cumulative time "
                f"(full dump: {args.profile}) --",
                file=sys.stderr,
            )
            stats.sort_stats("cumulative").print_stats(15)
    elif args.workers > 1 and len(specs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.api.sweep import _run_spec_payload

        with ProcessPoolExecutor(
            max_workers=min(args.workers, len(specs))
        ) as pool:
            outcomes = list(
                pool.map(_run_spec_payload, [spec.to_dict() for spec in specs])
            )
        results = []
        for config, (ok, value) in zip(args.configs, outcomes):
            if not ok:
                raise SystemExit(
                    f"run for --config {config} failed in its worker "
                    f"process:\n{value}"
                )
            results.append(value)
    else:
        results = [spec.run() for spec in specs]
    payloads = []
    for config, spec, result in zip(args.configs, specs, results):
        epsilon = spec.tracker.epsilon
        payloads.append(
            {
                "config": str(config),
                "overrides": overrides,
                "spec": spec.to_dict(),
                # The provenance stamp rides at the top level too, so it is
                # present (and greppable) whether the result below is the
                # summary or the full --records dump.
                "provenance": spec.provenance(),
                "result": (
                    result.to_dict(epsilon)
                    if args.records
                    else result.summary(epsilon)
                ),
            }
        )
    document = payloads[0] if len(payloads) == 1 else payloads
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.summary_out is not None:
        import pathlib

        pathlib.Path(args.summary_out).write_text(text + "\n", encoding="utf-8")
        runs = len(payloads)
        return (
            f"wrote {runs} run{'s' if runs != 1 else ''} "
            f"(spec hash{'es' if runs != 1 else ''} "
            f"{', '.join(p['provenance']['spec_hash'][:12] for p in payloads)}) "
            f"to {args.summary_out}"
        )
    return text


def _parse_overrides(items: Sequence[str]) -> dict:
    """Parse repeated ``--set FIELD=VALUE`` flags into an override mapping."""
    overrides = {}
    for item in items:
        path, sep, raw = item.partition("=")
        if not sep or not path:
            raise SystemExit(
                f"--set expects FIELD=VALUE (dotted field path), got {item!r}"
            )
        try:
            overrides[path] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[path] = raw
    return overrides


def _command_serve(args: argparse.Namespace) -> str:
    """``repro serve --config spec.json``: run the live tracker service.

    Prints a banner with the resolved endpoints, then blocks until
    ``--duration`` elapses or SIGINT/SIGTERM arrives, and exits with a final
    status JSON on stdout.  The HTTP endpoint serves ``/metrics``
    (Prometheus text format), ``/status`` (JSON) and ``/healthz``; the TCP
    feed ingests one ``time site delta`` triple per line.
    """
    import signal

    from repro.observability import LiveTracker, LiveTrackerServer, TraceLog

    spec = RunSpec.load(args.config)
    overrides = _parse_overrides(args.overrides)
    if overrides:
        spec = spec.with_overrides(overrides)
    trace = TraceLog(args.trace_capacity) if args.trace_capacity > 0 else None
    tracker = LiveTracker(
        spec,
        trace=trace,
        error_threshold=args.error_threshold,
        alert_values=args.alert_values,
    )
    server = LiveTrackerServer(
        tracker,
        host=args.host,
        http_port=args.http_port,
        feed_port=args.feed_port,
    ).start()
    stop = threading.Event()

    def _stop(signum, frame):
        stop.set()

    # Signal handlers only install on the main thread; under a test driver
    # the Event simply waits out --duration instead.
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _stop)
        except ValueError:
            break
    print(
        f"repro serve: k={spec.source.sites} tracker={spec.tracker.name} "
        f"eps={spec.tracker.epsilon} spec={spec.spec_hash()[:12]}\n"
        f"  metrics  http://{args.host}:{server.http_port}/metrics\n"
        f"  status   http://{args.host}:{server.http_port}/status\n"
        f"  feed     {args.host}:{server.feed_port}  "
        "(one 'time site delta' per line)",
        flush=True,
    )
    try:
        stop.wait(timeout=args.duration)
    finally:
        server.shutdown()
    return json.dumps(server.status(), indent=2, sort_keys=True)


def _command_frequency(args: argparse.Namespace) -> str:
    config = ItemStreamConfig(
        length=args.length,
        universe_size=args.universe,
        num_sites=args.sites,
        seed=args.seed,
    )
    updates = zipfian_item_stream(config, deletion_probability=0.2)
    reducer = (
        HashReducer.from_epsilon(args.epsilon, num_rows=3, seed=args.seed)
        if args.sketched
        else None
    )
    tracker = FrequencyTracker(num_sites=args.sites, epsilon=args.epsilon, reducer=reducer)
    result = run_frequency_tracking(tracker, updates, audit_every=max(1, args.length // 50))
    rows = [
        [
            "count-min" if args.sketched else "exact",
            result.total_messages,
            round(result.max_error_ratio(), 4),
            result.violations(args.epsilon),
            round(result.f1_variability, 1),
        ]
    ]
    return format_table(
        ["variant", "messages", "max err / F1", "violations", "F1-variability"], rows
    )


def _throughput_point(payload: dict) -> List[object]:
    """Measure one (site count, tracker) cell of the throughput grid.

    Module-level so ``repro throughput --workers`` can map the grid over a
    process pool: the payload is plain JSON-compatible data, the row comes
    back ready for the table.
    """
    source = SourceSpec(**payload["source"])
    tracker = TrackerSpec(**payload["tracker"])
    slow_rate, fast_rate, speedup = measure_engine_throughput(
        tracker.build_factory(source.sites),
        source.build_updates(),
        record_every=payload["record_every"],
        shards=payload["shards"],
    )
    return [
        tracker.name,
        source.sites,
        round(slow_rate),
        round(fast_rate),
        round(speedup, 2),
    ]


def _command_throughput(args: argparse.Namespace) -> str:
    from repro.analysis import measure_columnar_throughput

    rows: List[List[object]] = []
    if args.engine == "arrays":
        trace = _load_cli_trace(args)
        num_sites = int(trace.sites.max()) + 1
        for tracker_name in ("deterministic", "randomized"):
            tracker = TrackerSpec(
                name=tracker_name, epsilon=args.epsilon, seed=args.seed
            )
            slow_rate, fast_rate, speedup = measure_columnar_throughput(
                tracker.build_factory(num_sites),
                trace,
                record_every=args.record_every,
                shards=args.shards,
            )
            rows.append(
                [
                    tracker_name,
                    num_sites,
                    round(slow_rate),
                    round(fast_rate),
                    round(speedup, 2),
                ]
            )
        header = (
            f"trace={args.trace} n={len(trace)} eps={args.epsilon} "
            f"shards={args.shards} record_every={args.record_every} "
            f"engine=arrays{' (mmap)' if args.mmap else ''}"
        )
        return header + "\n" + format_table(
            ["algorithm", "k", "per-update up/s", "arrays up/s", "speedup"], rows
        )
    payloads = [
        {
            "source": {
                "stream": "random_walk",
                "length": args.length,
                "seed": args.seed,
                "sites": num_sites,
                "assignment": "blocked",
                "assignment_params": {"block_length": args.block_length},
            },
            "tracker": {
                "name": tracker_name,
                "epsilon": args.epsilon,
                "seed": args.seed,
            },
            "record_every": args.record_every,
            "shards": args.shards,
        }
        for num_sites in args.sites
        for tracker_name in ("deterministic", "randomized")
    ]
    if args.workers > 1 and len(payloads) > 1:
        from concurrent.futures import ProcessPoolExecutor

        # Wall-clock rates measured in sibling processes are comparable as
        # long as the pool is not oversubscribed; grid order is preserved.
        with ProcessPoolExecutor(
            max_workers=min(args.workers, len(payloads))
        ) as pool:
            rows.extend(pool.map(_throughput_point, payloads))
    else:
        rows.extend(_throughput_point(payload) for payload in payloads)
    header = (
        f"random_walk n={args.length} eps={args.epsilon} "
        f"block={args.block_length} shards={args.shards} "
        f"record_every={args.record_every}"
    )
    return header + "\n" + format_table(
        ["algorithm", "k", "per-update up/s", "batched up/s", "speedup"], rows
    )


def _command_trace(args: argparse.Namespace) -> str:
    from repro.streams import columns_from_updates, save_trace_csv, save_trace_npz

    source = SourceSpec(
        stream=args.stream,
        length=args.length,
        seed=args.seed,
        sites=args.sites,
        assignment="blocked" if args.block_length > 0 else "round_robin",
        assignment_params=(
            {"block_length": args.block_length} if args.block_length > 0 else {}
        ),
    )
    trace = columns_from_updates(source.build_updates())
    if str(args.out).endswith(".npz"):
        save_trace_npz(trace, args.out)
        layout = "npz (memory-mappable)"
    else:
        save_trace_csv(trace, args.out)
        layout = "csv"
    return (
        f"wrote {len(trace)} updates ({args.stream}, k={args.sites}, "
        f"seed={args.seed}) to {args.out} [{layout}]\n"
        f"replay with: python -m repro tracking --engine arrays --trace {args.out}"
    )


def _command_latency(args: argparse.Namespace) -> str:
    from repro.analysis.staleness import time_averaged_relative_error

    base = RunSpec(
        source=SourceSpec(
            stream=args.stream,
            length=args.length,
            seed=args.seed,
            sites=args.sites,
        ),
        tracker=TrackerSpec(
            name=args.algorithm, epsilon=args.epsilon, seed=args.seed
        ),
        topology=TopologySpec(
            shards=args.shards, levels=args.levels, fanout=args.fanout
        ),
        transport=TransportSpec(
            mode="async",
            latency=args.model,
            preserve_order=not args.allow_reordering,
            seed=args.seed,
            loss=args.loss,
            loss_model=args.loss_model,
            loss_seed=args.loss_seed,
            repair=args.repair,
        ),
        engine="batched" if args.engine == "batched" else "per-update",
        record_every=args.record_every,
    )
    rows = []
    for point in Sweep(base, {"transport.scale": args.scales}).run(
        workers=args.workers
    ):
        result = point.result
        summary = result.summary(args.epsilon)
        row = [
            point.overrides["transport.scale"],
            summary["total_messages"],
            round(summary["max_relative_error"], 4),
            round(summary["violation_fraction"], 4),
            round(time_averaged_relative_error(result.records), 4),
            round(result.staleness.mean_age, 2),
            round(result.staleness.max_age, 2),
            result.staleness.inflight_highwater,
            result.staleness.reordered,
        ]
        if args.loss > 0.0:
            reliability = summary["reliability"]
            row.extend([reliability["dropped"], reliability["retransmitted"]])
        rows.append(row)
    header = (
        f"stream={args.stream} n={args.length} k={args.sites} eps={args.epsilon} "
        f"{_topology_label(args)} algo={args.algorithm} model={args.model} "
        f"engine={'batched' if args.engine == 'batched' else 'per-update'} "
        f"order={'reordering' if args.allow_reordering else 'fifo'} seed={args.seed}"
    )
    if args.loss > 0.0:
        header += (
            f" loss={args.loss}({args.loss_model}) loss_seed={args.loss_seed}"
            f" closes={'repaired' if args.repair else 'naive'}"
        )
    columns = [
        "scale",
        "messages",
        "max rel err",
        "violation frac",
        "time-avg err",
        "mean age",
        "max age",
        "in-flight hwm",
        "reordered",
    ]
    if args.loss > 0.0:
        columns.extend(["dropped", "retransmitted"])
    table = format_table(columns, rows)
    return header + "\n" + table


def _command_lowerbound(args: argparse.Namespace) -> str:
    family = DeterministicFlipFamily(n=args.n, level=args.level, num_flips=args.flips)
    reduction = IndexReduction(
        family,
        lambda ups: TranscriptTracer(DeterministicCounter(1, family.epsilon / 2)).build(ups),
        num_sites=1,
    )
    indices = family.sample_indices(args.samples, seed=args.seed)
    reports = reduction.run_many(indices)
    rows = [
        [
            report.encoded_index,
            report.decoded_index,
            "yes" if report.correct else "no",
            round(report.summary_bits, 0),
            round(report.information_bits, 1),
        ]
        for report in reports
    ]
    header = (
        f"family C({args.n}, {args.flips}) = {family.size():,} members, "
        f"member variability {family.member_variability():.3f}"
    )
    return header + "\n" + format_table(
        ["encoded", "decoded", "correct", "summary bits", "info bits"], rows
    )


_COMMANDS = {
    "variability": _command_variability,
    "tracking": _command_tracking,
    "throughput": _command_throughput,
    "latency": _command_latency,
    "trace": _command_trace,
    "run": _command_run,
    "serve": _command_serve,
    "frequency": _command_frequency,
    "lowerbound": _command_lowerbound,
}

#: Subcommands sharing the unified delivery-engine selector.
_ENGINE_COMMANDS = ("tracking", "throughput", "latency")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in _ENGINE_COMMANDS:
        args.engine = _resolve_engine(parser, args)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
