"""Unified span-simulation engine layer.

The execution substrate of the repo — how updates are delivered, how
protocol spans are simulated in closed form, how block closes are
fast-forwarded — is decoupled here from the protocols under study, so that
new engines (columnar, asynchronous, sharded) reuse one pinned span algebra
instead of growing another copy of it.

* :func:`segment_cuts` — the one segmentation rule every batched engine
  shares (site changes, recording points, chunk ends).
* :class:`SpanKernel` — trigger arithmetic, bulk accounting, simulated block
  closes and multi-block fast-forwarding for the block-template trackers.
* :data:`DEFAULT_KERNEL` — the stateless instance sites use by default.
"""

from repro.engine.kernel import DEFAULT_KERNEL, SpanKernel, segment_cuts

__all__ = ["segment_cuts", "SpanKernel", "DEFAULT_KERNEL"]
