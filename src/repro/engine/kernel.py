"""The span-simulation kernel shared by every delivery engine.

Four engines drive a tracking network today — per-update, batched, columnar
and asynchronous, plus the sharded variants of each — and all of them lean on
the same closed-form span algebra: a contiguous run of updates destined for
one site is an alternation of *trigger-free spans* (no block close can occur,
so the block level and every threshold derived from it are fixed) and *block
closes* (request/reply/broadcast exchanges whose messages touch known, idle
peers).  This module extracts that algebra into one :class:`SpanKernel` so
the engines cannot drift apart:

* **Run segmentation** (:func:`segment_cuts`) — where a chunk of updates is
  cut into deliverable segments.  Shared by ``run_tracking``'s batcher, the
  columnar ``run_tracking_arrays`` cutter and the asynchronous batched
  engine, so the bit-for-bit record contract is pinned in one place.
* **Trigger arithmetic** (:meth:`SpanKernel.close_offset`) — the 1-based step
  offset at which a site's count report would fire the coordinator's block
  trigger, computed in closed form from the count threshold and the
  trigger gap.
* **Bulk accounting** — count reports inside a trigger-free span all carry
  the same payload, so they are charged in one call and their cumulative
  ``t_hat`` effect applied at once (synchronously through
  ``absorb_count_reports``, asynchronously as a single prepaid in-flight
  aggregate: one event per span, not one per message).
* **Fallback semantics** (:meth:`SpanKernel.replay`) — every
  correctness-sensitive case (short run, logging enabled, non-unit delta,
  unknown peer types) replays the run through ``receive_update`` so errors
  fire after exactly the same prefix as per-update delivery.  The three
  previously duplicated fallback loops live here, once.
* **Multi-block fast-forwarding** (:meth:`SpanKernel.fast_forward_closes`) —
  when a run spans several consecutive block closes at the same level,
  the whole close sequence (request/reply/broadcast costs, ``t_hat`` and
  boundary evolution, level stability) is computed in closed form instead of
  one simulated close per block.  This is the regime that dominates batched
  cost at small ``k`` and low levels, where blocks are only ``k * ceil(2^(r-1))``
  updates long.

Exactness contract: within one ``receive_batch`` call nothing is observable
— the runner records estimates only between segments — so the kernel must
leave *final* site state, coordinator state, channel counters (messages,
bits, per-kind breakdown) and RNG position identical to per-update delivery.
``tests/test_engine_kernel.py`` pins this property across coordinators,
stream generators and shard counts.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.monitoring.messages import (
    COORDINATOR,
    HEADER_BITS,
    Message,
    MessageKind,
    integer_bit_length,
    integer_bit_lengths,
)

__all__ = ["segment_cuts", "SpanKernel", "DEFAULT_KERNEL"]


def segment_cuts(site_array: np.ndarray, start_index: int, record_every: int):
    """Exclusive end offsets splitting a chunk into deliverable segments.

    Cuts fall wherever the destination site changes, after every global
    recording point (``start_index`` is the global index of the chunk's
    first update), and at the chunk end.  Shared by the batched, columnar
    and asynchronous batched engines so their segmentation — and with it
    the bit-for-bit record contract — can never drift apart.
    """
    length = len(site_array)
    cuts = set((np.flatnonzero(site_array[1:] != site_array[:-1]) + 1).tolist())
    first_record = (-start_index) % record_every
    cuts.update(range(first_record + 1, length + 1, record_every))
    cuts.add(length)
    return sorted(cuts)


@lru_cache(maxsize=None)
def _band_edges(num_sites: int) -> np.ndarray:
    """Ascending level-band thresholds for ``k`` sites.

    The bands of :func:`repro.core.blocks.block_level` tile ``[0, inf)``
    contiguously — level 0 is ``[0, 4k)`` and level ``r >= 1`` is
    ``[2k * 2^r, 4k * 2^r)`` — so the level of any magnitude is the number
    of edges ``4k, 8k, 16k, ...`` at or below it: one bisect
    (``searchsorted``) over this precomputed array replaces the per-band
    comparisons, and is exact integer arithmetic for every magnitude the
    codebase can produce (payloads are bounded by stream length; see
    :func:`repro.monitoring.messages.integer_bit_lengths`).
    """
    edges = [4 * num_sites]
    while edges[-1] < (1 << 62):
        edges.append(edges[-1] * 2)
    return np.array(edges, dtype=np.int64)


def _block_levels(boundaries: np.ndarray, num_sites: int) -> np.ndarray:
    """Vectorised :func:`repro.core.blocks.block_level` over boundary values."""
    return _band_edges(num_sites).searchsorted(np.abs(boundaries), side="right")


def _count_thresholds(levels: np.ndarray) -> np.ndarray:
    """Per-site count-report thresholds ``ceil(2^(r-1))`` for an array of levels."""
    return np.int64(1) << np.maximum(levels.astype(np.int64) - 1, 0)


def _stable_level_count(boundaries: np.ndarray, level: int, num_sites: int) -> int:
    """Number of leading boundary values whose block level stays ``level``.

    A bisect over the precomputed band edges (:func:`_band_edges`) classifies
    every boundary in one ``searchsorted`` pass instead of a per-band linear
    comparison scan.
    """
    stable = _block_levels(boundaries, num_sites) == level
    if stable.all():
        return int(stable.size)
    return int(np.argmin(stable))


#: Candidate-chunk bounds for the close ladder's adaptive walk.  After a
#: level change the next same-level stretch starts small (oscillating
#: schedules flip levels every few closes, so materialising the whole
#: remaining progression would gather O(run) elements per stretch) and grows
#: geometrically while a stretch proves stable, so monotone schedules still
#: classify long stretches in a handful of passes.
_LADDER_CHUNK_MIN = 8
_LADDER_CHUNK_GROWTH = 4


def _close_ladder(
    prefix: np.ndarray,
    index: int,
    length: int,
    offset: int,
    num_sites: int,
    adaptive: bool = True,
):
    """Positions, boundary values and post-close levels of a run's close ladder.

    Starting from the triggered close at ``index`` (whose boundary value is
    ``offset + prefix[index]``), each close's *post* level sets the cycle
    length ``k * ceil(2^(r-1))`` to the next close, so the ladder is walked
    one vectorised same-level stretch at a time: candidate positions are an
    arithmetic progression, their boundary values come straight off the
    prefix sums, their levels off the band-edge bisect, and the stretch ends
    either at the run's edge or one past the first level change (the
    transition close is taken — its broadcast re-levels the sites — and the
    walk continues at the new level's cycle).

    The first probe takes the whole remaining progression (a monotone or
    same-level schedule resolves in one gather); once a level change has
    been seen the walk switches to bounded chunks growing geometrically
    from :data:`_LADDER_CHUNK_MIN`, so a schedule that flips levels every
    few closes — a random walk hovering at a band edge — gathers O(closes)
    candidate elements instead of O(closes x run length).  ``adaptive=False``
    keeps the full-progression probe on every stretch (the PR 8 walk), which
    the descent-ladder benchmark uses as its control.

    Returns ``(positions, boundaries, levels_after)`` as equal-length int64
    arrays; ``positions[0] == index`` always.
    """
    edges = _band_edges(num_sites)
    first_boundary = offset + int(prefix[index])
    level = int(edges.searchsorted(abs(first_boundary), side="right"))
    pos_chunks = [np.array([index], dtype=np.int64)]
    bound_chunks = [np.array([first_boundary], dtype=np.int64)]
    level_chunks = [np.array([level], dtype=np.int64)]
    pos = index
    chunk = 0  # 0: no level change seen yet; probe the whole progression.
    while True:
        cycle = num_sites * (1 << max(level - 1, 0))
        max_more = (length - 1 - pos) // cycle
        if max_more <= 0:
            break
        want = max_more if (chunk == 0 or not adaptive) else min(chunk, max_more)
        candidates = pos + cycle * np.arange(1, want + 1, dtype=np.int64)
        bounds = offset + prefix[candidates]
        cand_levels = edges.searchsorted(np.abs(bounds), side="right")
        stable = cand_levels == level
        if stable.all():
            take = want
        else:
            take = int(np.argmin(stable)) + 1
        pos_chunks.append(candidates[:take])
        bound_chunks.append(bounds[:take])
        level_chunks.append(cand_levels[:take].astype(np.int64))
        pos = int(candidates[take - 1])
        new_level = int(cand_levels[take - 1])
        if new_level == level:
            if take == max_more:
                break
            # Stable partial chunk: same level continues; widen the probe.
            chunk = max(chunk, _LADDER_CHUNK_MIN) * _LADDER_CHUNK_GROWTH
        else:
            level = new_level
            chunk = _LADDER_CHUNK_MIN
    return (
        np.concatenate(pos_chunks),
        np.concatenate(bound_chunks),
        np.concatenate(level_chunks),
    )


class SpanKernel:
    """Owns the closed-form span machinery of the block-template protocol.

    One stateless instance (:data:`DEFAULT_KERNEL`) serves every site; the
    benchmark harness swaps in ``SpanKernel(fast_forward=False)`` to measure
    what multi-block fast-forwarding buys over the single-close engine.

    Args:
        fast_forward: Enable multi-block fast-forwarding (closed-form
            simulation of consecutive same-level block closes).  Disabling
            it reproduces the single-close batched engine exactly.
        descent: Enable the descent-tuned ladder walk and the trackers'
            whole-window hook paths (one gather / one RNG draw per window
            however often the level schedule flips).  Disabling it keeps
            the PR 8 behaviour — full-progression ladder probes and
            per-stretch hook loops — as a bit-for-bit control for the
            oscillating-workload benchmark; outputs never differ, only
            speed does.
    """

    def __init__(self, fast_forward: bool = True, descent: bool = True) -> None:
        self.fast_forward = fast_forward
        self.descent = descent

    # -- fallback ------------------------------------------------------------

    @staticmethod
    def replay(site, times: Sequence[int], deltas: Sequence[int]) -> None:
        """Replay a run through ``receive_update``, one step at a time.

        The single fallback path for every case the closed-form machinery
        must not handle: short runs, logging enabled, asynchronous-channel
        states the span algebra cannot cover, non-unit deltas and unknown
        coordinator or peer types.  Replaying per update pins the fallback's
        *prefix semantics*: an error (e.g. the ``StreamError`` for the first
        non-unit delta) fires after exactly the same consumed prefix as
        per-update delivery would leave behind.
        """
        for time, delta in zip(times, deltas):
            site.receive_update(time, delta)

    # -- trigger arithmetic --------------------------------------------------

    @staticmethod
    def close_offset(
        count_since_report: int,
        count_threshold: int,
        reported_updates: int,
        trigger_threshold: int,
    ) -> int:
        """1-based step offset at which a count report would fire the trigger.

        Within an open block this site's count reports leave every
        ``count_threshold`` updates and each advances the coordinator's
        ``t_hat`` by exactly that amount, so the step at which one of them
        reaches the block trigger is pure arithmetic.  Every step strictly
        before the returned offset is trigger-free.
        """
        trigger_gap = trigger_threshold - reported_updates
        reports_to_close = -(-trigger_gap // count_threshold)
        return (count_threshold - count_since_report) + (
            reports_to_close - 1
        ) * count_threshold

    # -- main entry ----------------------------------------------------------

    def consume_run(
        self,
        site,
        network,
        coordinator,
        times: Sequence[int],
        deltas: np.ndarray,
        can_fast_close: bool,
        can_fast_forward: bool,
    ) -> None:
        """Consume a contiguous single-site run as spans and block closes.

        The run alternates *simulated spans* (the site's ``on_stream_batch``
        hook reproduces estimation traffic from cumulative sums while the
        kernel bulk-charges the span's count reports) and *close steps*.
        Close steps are fast-forwarded in closed form — many consecutive
        same-level closes at once when ``can_fast_forward``, a single
        simulated close when ``can_fast_close`` — and otherwise replayed
        through ``receive_update``.

        ``can_fast_close`` and ``can_fast_forward`` are capability flags the
        adapter (:meth:`repro.core.template.BlockTrackingSite.receive_batch`)
        derives from the channel and peer types; both require a synchronous
        channel, since simulated closes read and reset peer state directly.
        """
        length = len(deltas)
        channel = site._channel
        prefix = None
        index = 0
        while index < length:
            count_threshold = site.count_report_threshold()
            close_offset = self.close_offset(
                site.count_since_report,
                count_threshold,
                coordinator.reported_updates,
                coordinator.block_trigger_threshold(),
            )
            span = min(length - index, close_offset - 1)
            consumed = 0
            if span > 0:
                consumed = site.on_stream_batch(times, deltas, index, span)
            if consumed > 0:
                total_count = site.count_since_report + consumed
                num_reports = total_count // count_threshold
                site.count_since_report = total_count % count_threshold
                if num_reports:
                    # All count reports in the span carry the same payload
                    # (the threshold is fixed while the block is open), so
                    # one bulk charge covers them and their cumulative t_hat
                    # effect is applied at once.
                    self._emit_count_reports(
                        site,
                        coordinator,
                        channel,
                        num_reports,
                        count_threshold,
                        times[index + consumed - 1],
                    )
                site.block_value_change += int(
                    deltas[index : index + consumed].sum()
                )
                index += consumed
                continue
            if can_fast_forward and span == 0:
                if prefix is None:
                    prefix = np.cumsum(deltas)
                advanced = self.fast_forward_closes(
                    site, network, coordinator, deltas, prefix, index
                )
                if advanced:
                    index += advanced
                    continue
            if can_fast_close:
                self.fast_close_step(
                    site, network, coordinator, times[index], int(deltas[index])
                )
            else:
                # Trigger step (or a hook fallback): the per-update path
                # produces the count report and the block close it fires.
                site.receive_update(times[index], int(deltas[index]))
            index += 1

    # -- bulk count-report accounting ----------------------------------------

    @staticmethod
    def _emit_count_reports(
        site, coordinator, channel, num_reports: int, count_each: int, time: int
    ) -> None:
        """Charge a span's count reports in bulk and apply their t_hat effect.

        Synchronous channels absorb the reports immediately through
        :meth:`~repro.core.template.BlockTrackingCoordinator.absorb_count_reports`
        (the caller established in closed form that the trigger is not
        reached).  Asynchronous channels instead put *one* prepaid aggregate
        report in flight — one event per span, not one per message — whose
        delivery advances ``t_hat`` by the span total through the ordinary
        receive path, so a trigger crossed by then (reports from other sites
        may have landed first) still closes the block correctly.
        """
        bits = num_reports * (HEADER_BITS + integer_bit_length(count_each))
        channel.charge(MessageKind.REPORT, num_reports, bits)
        if channel.is_synchronous:
            coordinator.absorb_count_reports(num_reports, count_each)
        else:
            channel.send_prepaid_to_coordinator(
                Message(
                    kind=MessageKind.REPORT,
                    sender=site.site_id,
                    receiver=COORDINATOR,
                    payload={"count": num_reports * count_each},
                    time=time,
                )
            )

    # -- single simulated close ----------------------------------------------

    @staticmethod
    def fast_close_step(site, network, coordinator, time: int, delta: int) -> None:
        """Process one update step, simulating any block close it triggers.

        Drop-in equivalent of ``receive_update`` for a unit delta, used at
        the closed-form trigger step of a batched run.  The estimation side
        runs through the real ``on_stream_update`` (so estimation reports
        and RNG draws are exact); the count report and the block close it
        fires are applied in closed form: peer sites are idle during a
        contiguous single-site run, so their request replies are read — and
        their counters reset — directly, with every elided message charged
        at exactly the cost the per-update path would record.
        """
        from repro.core.blocks import block_level

        site.count_since_report += 1
        site.block_value_change += delta
        will_report = site.count_since_report >= site.count_report_threshold()
        will_close = will_report and (
            coordinator.reported_updates + site.count_since_report
            >= coordinator.block_trigger_threshold()
        )
        if not will_close:
            # Defensive: the trigger arithmetic said otherwise.  Fall back to
            # exact per-update behaviour (minus the already-applied counters).
            site.on_stream_update(time, delta)
            if will_report:
                count = site.count_since_report
                site.count_since_report = 0
                site.send(
                    Message(
                        kind=MessageKind.REPORT,
                        sender=site.site_id,
                        receiver=COORDINATOR,
                        payload={"count": count},
                        time=time,
                    )
                )
            return
        # The step's estimation report (if any) reaches the coordinator just
        # before the close wipes all estimation state, so it can be charged
        # instead of delivered.
        site.on_stream_update_superseded(time, delta)
        count = site.count_since_report
        site.count_since_report = 0
        channel = site._channel
        num_sites = network.num_sites
        # The closing count report, then one request per site.
        channel.charge(MessageKind.REPORT, 1, HEADER_BITS + integer_bit_length(count))
        channel.charge(MessageKind.REQUEST, num_sites, num_sites * HEADER_BITS)
        # Replies: read every site's exact counters directly (this site
        # included), resetting the count exactly as a real request would.
        # Peer sites are idle mid-run, so almost all replies are {0, 0}.
        zero_reply_bits = HEADER_BITS + 2 * integer_bit_length(0)
        extra_updates = 0
        total_change = 0
        reply_bits = 0
        for peer in network.sites:
            peer_count = peer.count_since_report
            peer_change = peer.block_value_change
            if peer_count or peer_change:
                peer.count_since_report = 0
                extra_updates += peer_count
                total_change += peer_change
                reply_bits += (
                    HEADER_BITS
                    + integer_bit_length(peer_count)
                    + integer_bit_length(peer_change)
                )
            else:
                reply_bits += zero_reply_bits
        channel.charge(MessageKind.REPLY, num_sites, reply_bits)
        # Coordinator side of the close, mirroring _close_block exactly.
        coordinator.boundary_time += (
            coordinator.reported_updates + count + extra_updates
        )
        coordinator.boundary_value += total_change
        coordinator.reported_updates = 0
        coordinator.level = block_level(
            coordinator.boundary_value, coordinator.num_sites
        )
        coordinator.blocks_completed += 1
        coordinator.on_block_start(coordinator.level)
        # The level broadcast: charged once per site, delivered by resetting
        # every site's block state exactly as the broadcast handler would.
        broadcast_bits = HEADER_BITS + integer_bit_length(coordinator.level)
        channel.charge(MessageKind.BROADCAST, num_sites, num_sites * broadcast_bits)
        for peer in network.sites:
            peer.level = coordinator.level
            peer.block_value_change = 0
            peer.count_since_report = 0
            peer.on_block_start(peer.level)

    # -- multi-block fast-forwarding -----------------------------------------

    def fast_forward_closes(
        self,
        site,
        network,
        coordinator,
        deltas: np.ndarray,
        prefix: np.ndarray,
        index: int,
    ) -> int:
        """Simulate a run of consecutive block closes in closed form.

        Called at a closing step (the span arithmetic placed the next block
        trigger at this exact update).  At level ``r`` with per-site count
        threshold ``c = ceil(2^(r-1))``, a contiguous single-site run closes
        a block every ``L = c * k`` updates: ``k - 1`` count reports, then
        the closing report, then the request/reply/broadcast exchange with
        idle peers.  The whole close ladder — including closes whose
        boundary value *leaves* the current level's band, after which the
        next close sits the new level's cycle away — comes off the run's
        prefix sums (:func:`_close_ladder`), so the *entire sequence of
        ``M`` closes* has closed form even when it climbs levels:

        * cost: the triggering close's report at the entry threshold plus
          ``k`` reports per later close at that cycle's own threshold,
          ``M * k`` requests, ``M * k`` replies (all-zero from peers, the
          cycle's net change from this site), ``M * k`` broadcasts carrying
          each close's post level;
        * coordinator: ``boundary_time`` advances by every counted update,
          ``boundary_value`` walks the per-cycle prefix sums, the level
          lands on the last close's band, ``blocks_completed += M``;
        * estimation: delegated to the site's ``on_multiblock_window`` hook,
          which reproduces state, RNG consumption and report costs across
          the window — every estimation report inside it is superseded by a
          block close before the next observation point, so all of them are
          charged rather than delivered.  Cross-level windows pass the hook
          the explicit close offsets and the per-close level schedule.

        Returns the number of steps consumed (0 if fast-forwarding does not
        apply here, in which case the caller simulates a single close).
        """
        count_threshold = site.count_report_threshold()
        level = coordinator.level
        if site.level != level:
            return 0
        count = site.count_since_report + 1
        if count != count_threshold:
            # A closing report larger than the threshold (stale site level or
            # mid-block entry) is out of steady state; close it singly.
            return 0
        trigger = coordinator.block_trigger_threshold()
        if coordinator.reported_updates + count < trigger:
            return 0
        length = len(deltas)
        num_sites = network.num_sites
        # Peer value changes feed only the first boundary (the first close's
        # broadcast zeroes every peer); peer counts are folded into
        # boundary_time by the reply loop below.
        peer_change = 0
        for peer in network.sites:
            if peer is not site:
                peer_change += peer.block_value_change
        first_boundary = (
            coordinator.boundary_value
            + site.block_value_change
            + int(deltas[index])
            + peer_change
        )
        offset = first_boundary - int(prefix[index])
        positions, boundaries, levels_after = _close_ladder(
            prefix, index, length, offset, coordinator.num_sites,
            adaptive=self.descent,
        )
        closes = int(positions.size)
        if closes < 2:
            return 0
        window = int(positions[-1]) - index + 1
        final_level = int(levels_after[-1])
        # Cycle ``j`` (the steps between closes ``j-1`` and ``j``) runs at
        # ``levels_after[j-1]``; the window is uniform when every cycle runs
        # at the entry level, which keeps the hot same-level hook form.
        uniform = bool((levels_after[:-1] == level).all())
        # Estimation side first: the hook may decline, in which case nothing
        # has been committed yet and the single-close path runs.
        if uniform:
            accepted = site.on_multiblock_window(deltas, index, window, trigger)
        else:
            accepted = site.on_multiblock_window(
                deltas,
                index,
                window,
                trigger,
                close_offsets=positions - index,
                levels=levels_after,
            )
        if not accepted:
            return 0
        channel = site._channel
        # Count reports: the triggering close contributes 1 report at the
        # entry threshold; each later close contributes k reports (k - 1
        # in-cycle plus the closing one) at its own cycle's threshold.
        entry_report_bits = HEADER_BITS + integer_bit_length(count_threshold)
        report_count = 1 + (closes - 1) * num_sites
        if uniform:
            report_bits = report_count * entry_report_bits
        else:
            cycle_thresholds = _count_thresholds(levels_after[:-1])
            report_bits = entry_report_bits + num_sites * (
                (closes - 1) * HEADER_BITS
                + int(integer_bit_lengths(cycle_thresholds).sum())
            )
        channel.charge(MessageKind.REPORT, report_count, report_bits)
        channel.charge(
            MessageKind.REQUEST, closes * num_sites, closes * num_sites * HEADER_BITS
        )
        # Replies.  First close: read (and reset) real peer counters, exactly
        # like a single simulated close.  Later closes: peers answer {0, 0},
        # this site answers {0, cycle net change}.
        zero_reply_bits = HEADER_BITS + 2 * integer_bit_length(0)
        self_change = site.block_value_change + int(deltas[index])
        reply_bits = 0
        extra_updates = 0
        for peer in network.sites:
            if peer is site:
                peer_count, change = 0, self_change
            else:
                peer_count, change = peer.count_since_report, peer.block_value_change
            if peer_count or change:
                peer.count_since_report = 0
                extra_updates += peer_count
                reply_bits += (
                    HEADER_BITS
                    + integer_bit_length(peer_count)
                    + integer_bit_length(int(change))
                )
            else:
                reply_bits += zero_reply_bits
        cycle_changes = prefix[positions[1:]] - prefix[positions[:-1]]
        reply_bits += (closes - 1) * (
            (num_sites - 1) * zero_reply_bits
            + HEADER_BITS
            + integer_bit_length(0)
        ) + int(integer_bit_lengths(cycle_changes).sum())
        channel.charge(MessageKind.REPLY, closes * num_sites, reply_bits)
        # Broadcasts carry each close's post level (k copies per close).
        channel.charge(
            MessageKind.BROADCAST,
            closes * num_sites,
            num_sites
            * (closes * HEADER_BITS + int(integer_bit_lengths(levels_after).sum())),
        )
        # Coordinator: every counted update lands in boundary_time — the
        # pre-window t_hat, the first closing report and idle-peer residue,
        # then one full cycle per later close.
        coordinator.boundary_time += (
            coordinator.reported_updates
            + count
            + extra_updates
            + int(positions[-1]) - index
        )
        coordinator.boundary_value = int(boundaries[-1])
        coordinator.reported_updates = 0
        coordinator.level = final_level
        coordinator.blocks_completed += closes
        coordinator.on_block_start(final_level)
        for peer in network.sites:
            peer.level = final_level
            peer.block_value_change = 0
            peer.count_since_report = 0
            peer.on_block_start(final_level)
        return window


#: The stateless kernel instance every block-template site uses by default.
DEFAULT_KERNEL = SpanKernel()
