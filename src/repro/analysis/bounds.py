"""Closed-form versions of the paper's bounds.

These functions return the *functional form* of each bound (with unit leading
constants unless the paper fixes one), so experiments can compare measured
quantities against the predicted growth shape rather than against absolute
constants — which is also how the paper itself states them (big-O).
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError

__all__ = [
    "monotone_variability_bound",
    "nearly_monotone_variability_bound",
    "random_walk_variability_bound",
    "biased_walk_variability_bound",
    "deterministic_message_bound",
    "randomized_message_bound",
    "block_partition_message_bound",
    "monotone_message_bound_cormode",
    "monotone_message_bound_huang",
    "liu_fair_coin_message_bound",
    "single_site_message_bound",
    "deterministic_tracing_space_bound",
    "randomized_tracing_space_bound",
]


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")


def monotone_variability_bound(final_value: int) -> float:
    """Theorem 2.1 with ``beta = 1``: monotone streams have ``v <= 1 + ln f(n)``.

    (The exact value for a +1-only stream is the harmonic number ``H(f(n))``.)
    """
    _require_positive("final_value", final_value)
    return 1.0 + math.log(final_value)


def nearly_monotone_variability_bound(beta: float, final_value: int) -> float:
    """Theorem 2.1: ``v = O(beta log(beta f(n)))`` for nearly monotone streams."""
    _require_positive("beta", beta)
    _require_positive("final_value", final_value)
    return 4.0 * (1.0 + beta) * (1.0 + math.log2(2.0 * (1.0 + beta) * final_value))


def random_walk_variability_bound(n: int) -> float:
    """Theorem 2.2: ``E[v(n)] = O(sqrt(n) log n)`` for fair coin flips."""
    _require_positive("n", n)
    return math.sqrt(n) * math.log(max(n, 2))


def biased_walk_variability_bound(n: int, drift: float) -> float:
    """Theorem 2.4: ``E[v(n)] = O(log(n) / mu)`` for drift ``mu``."""
    _require_positive("n", n)
    _require_positive("drift", drift)
    return math.log(max(n, 2)) / drift


def block_partition_message_bound(num_sites: int, variability: float) -> float:
    """Section 3.1: the partition itself uses at most ``25 k v + 3 k`` messages."""
    _require_positive("num_sites", num_sites)
    return 25.0 * num_sites * max(variability, 0.0) + 3.0 * num_sites


def deterministic_message_bound(num_sites: int, epsilon: float, variability: float) -> float:
    """Section 3.3: ``O(k v / eps)`` messages (stated constant: ``5 k v / eps``),
    plus the block-partition messages."""
    _require_positive("num_sites", num_sites)
    _require_positive("epsilon", epsilon)
    return 5.0 * num_sites * max(variability, 0.0) / epsilon + block_partition_message_bound(
        num_sites, variability
    )


def randomized_message_bound(num_sites: int, epsilon: float, variability: float) -> float:
    """Section 3.4: ``O((k + sqrt(k)/eps) v)`` expected messages
    (stated in-block constant: ``30 sqrt(k) v / eps``), plus the partition."""
    _require_positive("num_sites", num_sites)
    _require_positive("epsilon", epsilon)
    return 30.0 * math.sqrt(num_sites) * max(variability, 0.0) / epsilon + (
        block_partition_message_bound(num_sites, variability)
    )


def monotone_message_bound_cormode(num_sites: int, epsilon: float, n: int) -> float:
    """Cormode et al.: ``O((k / eps) log n)`` messages for monotone streams."""
    _require_positive("num_sites", num_sites)
    _require_positive("epsilon", epsilon)
    _require_positive("n", n)
    return (num_sites / epsilon) * math.log(max(n, 2))


def monotone_message_bound_huang(num_sites: int, epsilon: float, n: int) -> float:
    """Huang et al.: ``O((k + sqrt(k) / eps) log n)`` messages for monotone streams."""
    _require_positive("num_sites", num_sites)
    _require_positive("epsilon", epsilon)
    _require_positive("n", n)
    return (num_sites + math.sqrt(num_sites) / epsilon) * math.log(max(n, 2))


def liu_fair_coin_message_bound(num_sites: int, epsilon: float, n: int) -> float:
    """Liu et al.: ``O((sqrt(k)/eps) sqrt(n log n))`` expected messages, fair coins."""
    _require_positive("num_sites", num_sites)
    _require_positive("epsilon", epsilon)
    _require_positive("n", n)
    return (math.sqrt(num_sites) / epsilon) * math.sqrt(n * math.log(max(n, 2)))


def single_site_message_bound(epsilon: float, variability: float) -> float:
    """Appendix I: at most ``(1 + eps)/eps * v(n)`` messages for ``k = 1``."""
    _require_positive("epsilon", epsilon)
    return (1.0 + epsilon) / epsilon * max(variability, 0.0)


def deterministic_tracing_space_bound(epsilon: float, variability: float, n: int) -> float:
    """Theorem 4.1: ``Omega((v / eps) log n)`` bits of space (returned with unit constant)."""
    _require_positive("epsilon", epsilon)
    _require_positive("n", n)
    return max(variability, 0.0) / epsilon * math.log2(max(n, 2))


def randomized_tracing_space_bound(epsilon: float, variability: float) -> float:
    """Theorem 4.2: ``Omega(v / eps)`` bits of space (returned with unit constant)."""
    _require_positive("epsilon", epsilon)
    return max(variability, 0.0) / epsilon
