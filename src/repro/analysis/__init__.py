"""Analysis utilities: theoretical bounds, metrics, fitting and reporting.

These modules are the glue between the algorithms and the experiments:
closed-form versions of the paper's bounds (:mod:`repro.analysis.bounds`),
growth-rate fitting used to check asymptotic *shapes*
(:mod:`repro.analysis.fitting`), aggregation of repeated randomized trials
(:mod:`repro.analysis.metrics`), a small experiment driver shared by the
benchmarks and examples (:mod:`repro.analysis.experiments`) and plain-text
table rendering (:mod:`repro.analysis.reporting`).
"""

from repro.analysis.bounds import (
    biased_walk_variability_bound,
    deterministic_message_bound,
    deterministic_tracing_space_bound,
    monotone_message_bound_cormode,
    monotone_message_bound_huang,
    monotone_variability_bound,
    nearly_monotone_variability_bound,
    randomized_message_bound,
    randomized_tracing_space_bound,
    random_walk_variability_bound,
    single_site_message_bound,
)
from repro.analysis.experiments import (
    TrackerComparison,
    compare_trackers,
    measure_columnar_throughput,
    measure_engine_throughput,
    run_tracker_on_stream,
    repeat_variability,
)
from repro.analysis.fitting import GrowthFit, fit_growth
from repro.analysis.metrics import (
    TrialSummary,
    level_message_shares,
    root_traffic_fraction,
    shard_imbalance,
    summarize_trials,
)
from repro.analysis.reporting import format_table
from repro.analysis.staleness import (
    LatencySweepPoint,
    StalenessSummary,
    error_over_time,
    run_latency_sweep,
    summarize_staleness,
    time_averaged_relative_error,
)

__all__ = [
    "biased_walk_variability_bound",
    "deterministic_message_bound",
    "deterministic_tracing_space_bound",
    "monotone_message_bound_cormode",
    "monotone_message_bound_huang",
    "monotone_variability_bound",
    "nearly_monotone_variability_bound",
    "randomized_message_bound",
    "randomized_tracing_space_bound",
    "random_walk_variability_bound",
    "single_site_message_bound",
    "TrackerComparison",
    "compare_trackers",
    "measure_columnar_throughput",
    "measure_engine_throughput",
    "run_tracker_on_stream",
    "repeat_variability",
    "GrowthFit",
    "fit_growth",
    "TrialSummary",
    "shard_imbalance",
    "level_message_shares",
    "root_traffic_fraction",
    "summarize_trials",
    "format_table",
    "LatencySweepPoint",
    "StalenessSummary",
    "error_over_time",
    "run_latency_sweep",
    "summarize_staleness",
    "time_averaged_relative_error",
]
