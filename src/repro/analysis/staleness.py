"""Staleness and error instrumentation for the asynchronous transport.

When messages take time to arrive, the coordinator's estimate lags the truth
in a way the paper's instant-delivery model never exhibits.  This module
turns the raw signals collected by
:class:`repro.asynchrony.channel.AsyncChannel` and the event-driven runner
into comparable numbers:

* :func:`summarize_staleness` — message age at delivery (mean / max /
  95th percentile), the in-flight high-water mark, and the count of
  reordered deliveries;
* :func:`time_averaged_relative_error` — estimate-vs-truth error traced
  over virtual time, weighted by how long each estimate was held;
* :func:`run_latency_sweep` — the experiment behind ``python -m repro
  latency``: sweep a latency scale and report achieved error next to
  staleness, holding stream, assignment and seeds fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import EstimateRecord

__all__ = [
    "StalenessSummary",
    "summarize_staleness",
    "error_over_time",
    "time_averaged_relative_error",
    "LatencySweepPoint",
    "run_latency_sweep",
]


@dataclass(frozen=True)
class StalenessSummary:
    """Aggregate staleness signals from one asynchronous run.

    Attributes:
        delivered: Total deliveries (inline and queued).
        mean_age: Mean virtual time spent in flight per delivery.
        max_age: Largest in-flight time of any delivery.
        p95_age: 95th percentile of in-flight times.
        inflight_highwater: Largest number of simultaneously in-flight
            messages at any virtual instant.
        reordered: Deliveries that arrived out of send order on their link
            (always 0 when the channel preserves per-link FIFO order).
    """

    delivered: int = 0
    mean_age: float = 0.0
    max_age: float = 0.0
    p95_age: float = 0.0
    inflight_highwater: int = 0
    reordered: int = 0


def summarize_staleness(channel) -> StalenessSummary:
    """Aggregate an :class:`~repro.asynchrony.channel.AsyncChannel`'s signals.

    Accepts any object exposing ``delivery_ages``, ``inflight_highwater`` and
    ``reordered_deliveries`` (duck-typed so this module stays import-light).
    """
    ages = np.asarray(channel.delivery_ages, dtype=float)
    if ages.size == 0:
        return StalenessSummary(
            inflight_highwater=channel.inflight_highwater,
            reordered=channel.reordered_deliveries,
        )
    return StalenessSummary(
        delivered=int(ages.size),
        mean_age=float(ages.mean()),
        max_age=float(ages.max()),
        p95_age=float(np.percentile(ages, 95)),
        inflight_highwater=channel.inflight_highwater,
        reordered=channel.reordered_deliveries,
    )


def error_over_time(records: Sequence[EstimateRecord]) -> List[tuple]:
    """Trace ``(time, relative error)`` pairs over a run's recorded steps.

    Steps with ``f(t) = 0`` use the absolute error instead (relative error is
    undefined there); this matches how
    :meth:`repro.monitoring.runner.TrackingResult.max_relative_error`
    treats the zero crossings of a random walk.
    """
    trace = []
    for record in records:
        if record.true_value == 0:
            trace.append((record.time, float(record.absolute_error)))
        else:
            trace.append(
                (record.time, float(record.absolute_error / abs(record.true_value)))
            )
    return trace


def time_averaged_relative_error(records: Sequence[EstimateRecord]) -> float:
    """Mean relative error over virtual time, weighted by holding duration.

    Each recorded estimate is held from its record time until the next
    record; the average weights each step's relative error by that span, so
    sparse recording strides do not bias the result toward burst periods.
    Returns 0.0 for an empty run.
    """
    if not records:
        return 0.0
    errors = np.asarray(
        [error for _, error in error_over_time(records)], dtype=float
    )
    times = np.asarray([record.time for record in records], dtype=float)
    if times.size == 1:
        return float(errors[0])
    spans = np.diff(times, append=times[-1] + (times[-1] - times[-2] or 1.0))
    spans = np.maximum(spans, 0.0)
    total = spans.sum()
    if total <= 0:
        return float(errors.mean())
    return float((errors * spans).sum() / total)


@dataclass(frozen=True)
class LatencySweepPoint:
    """One row of a latency sweep: protocol outcome at one latency scale.

    Attributes:
        scale: The latency scale (virtual-time units) this row was run at.
        messages: Total messages charged by the channel.
        bits: Total bits charged by the channel.
        max_relative_error: Worst relative error over the recorded steps.
        violation_fraction: Fraction of recorded steps violating the eps
            guarantee (the guarantee is proved for instant delivery only, so
            this is the quantity latency erodes).
        time_avg_error: Time-weighted mean relative error over the run.
        staleness: Message-age and in-flight aggregates for the run.
    """

    scale: float
    messages: int
    bits: int
    max_relative_error: float
    violation_fraction: float
    time_avg_error: float
    staleness: StalenessSummary


def run_latency_sweep(
    factory_builder: Callable[[], object],
    updates: Sequence,
    epsilon: float,
    scales: Sequence[float],
    model_for_scale: Optional[Callable[[float], object]] = None,
    record_every: int = 1,
    seed: int = 0,
    preserve_order: bool = True,
    shards: int = 1,
    sharding=None,
    batched: bool = False,
) -> List[LatencySweepPoint]:
    """Sweep delivery-latency scales and measure achieved error and staleness.

    Every scale runs the *same* distributed stream through a *fresh* network
    built by ``factory_builder`` (so per-run state and site RNGs restart
    identically), over an asynchronous channel whose latency model is
    ``model_for_scale(scale)``.  Scale 0 always uses the zero-latency model,
    i.e. the paper's synchronous semantics — the sweep's baseline row.

    Args:
        factory_builder: Zero-argument callable returning a tracker factory
            (e.g. ``lambda: DeterministicCounter(k, eps)``); called once per
            scale so runs cannot leak state into each other.
        updates: Materialised distributed stream (replayed once per scale).
        epsilon: Error parameter used for violation accounting.
        scales: Latency scales to sweep, in virtual-time units (one unit =
            one stream timestep).
        model_for_scale: Maps a positive scale to a latency model; defaults
            to uniform jitter on ``[scale / 2, 3 * scale / 2]``.
        record_every: Recording stride passed to the async runner.
        seed: Seed for the channel's latency RNG (same for every scale, so
            rows differ only by the model).
        preserve_order: Per-link FIFO (default) versus reordering allowed.
        shards: Coordinator shards; above 1 each scale runs the two-level
            sharded hierarchy, with the *same* latency model on the
            shard-local legs and on the shard-to-root leg — every estimate
            crosses two delays before the root sees it.
        sharding: Site-to-shard partition policy (contiguous by default).
        batched: Run each scale through the asynchronous bulk span engine
            (one in-flight event per trigger-free span) instead of
            per-update delivery — the option that makes 10^7-update sweeps
            tractable.  Zero-latency rows stay bit-for-bit the synchronous
            engine either way; positive scales model delivery at span
            granularity (see
            :func:`repro.asynchrony.runner.run_tracking_async`).

    Returns:
        One :class:`LatencySweepPoint` per scale, in input order.
    """
    # Imported here, not at module level: repro.asynchrony depends on this
    # module for its summary type, and the analysis package must stay
    # importable without it.
    from repro.asynchrony import (
        ConstantLatency,
        UniformLatency,
        build_async_network,
        build_sharded_async_network,
        run_tracking_async,
    )

    if not scales:
        raise ConfigurationError("latency sweep needs at least one scale")
    if model_for_scale is None:
        model_for_scale = lambda scale: UniformLatency(scale / 2.0, 1.5 * scale)
    points = []
    for scale in scales:
        if scale < 0:
            raise ConfigurationError(f"latency scale must be >= 0, got {scale}")
        model = ConstantLatency(0.0) if scale == 0 else model_for_scale(scale)
        if shards > 1:
            network = build_sharded_async_network(
                factory_builder(),
                shards,
                latency=model,
                seed=seed,
                preserve_order=preserve_order,
                sharding=sharding,
            )
        else:
            network = build_async_network(
                factory_builder(),
                latency=model,
                seed=seed,
                preserve_order=preserve_order,
            )
        result = run_tracking_async(
            network, updates, record_every=record_every, batched=batched
        )
        points.append(
            LatencySweepPoint(
                scale=float(scale),
                messages=result.total_messages,
                bits=result.total_bits,
                max_relative_error=result.max_relative_error(),
                violation_fraction=result.violation_fraction(epsilon),
                time_avg_error=time_averaged_relative_error(result.records),
                staleness=result.staleness,
            )
        )
    return points
