"""Small experiment driver shared by benchmarks, examples and tests.

The driver answers the two questions every experiment asks:

* "run this tracker on this stream with ``k`` sites — how wrong was it and
  how much did it talk?" (:func:`run_tracker_on_stream`,
  :func:`compare_trackers`), and
* "what is the (expected) variability of this stream class at this length?"
  (:func:`repeat_variability`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.variability import variability
from repro.exceptions import ConfigurationError, ProtocolError
from repro.monitoring.runner import TrackingResult
from repro.streams.assignment import AssignmentPolicy, RoundRobinAssignment, assign_sites
from repro.streams.model import StreamSpec

__all__ = [
    "TrackerComparison",
    "run_tracker_on_stream",
    "compare_trackers",
    "measure_engine_throughput",
    "measure_columnar_throughput",
    "repeat_variability",
]


@dataclass(frozen=True)
class TrackerComparison:
    """One tracker's outcome on one stream, in comparable units.

    Attributes:
        name: Label of the tracker (e.g. ``"deterministic"``).
        messages: Total messages used.
        bits: Total message bits used.
        max_relative_error: Worst relative error over the run.
        violation_fraction: Fraction of timesteps violating the eps guarantee.
        variability: The stream's f-variability (same for every tracker).
        messages_per_variability: ``messages / max(variability, 1)``, the
            quantity the paper's ``O(poly(k, 1/eps) * v)`` bounds normalise.
    """

    name: str
    messages: int
    bits: int
    max_relative_error: float
    violation_fraction: float
    variability: float
    messages_per_variability: float


def run_tracker_on_stream(
    factory,
    spec: StreamSpec,
    num_sites: int,
    policy: Optional[AssignmentPolicy] = None,
    record_every: int = 1,
    batched: Optional[bool] = None,
    shards: int = 1,
    sharding=None,
) -> TrackingResult:
    """Distribute a stream over ``num_sites`` sites and run one tracker on it.

    With ``shards > 1`` the tracker runs as a two-level sharded hierarchy
    (:mod:`repro.monitoring.sharding`): the reported totals then include the
    shard-to-root hops on top of the shard-local traffic.
    """
    updates = assign_sites(spec, num_sites, policy or RoundRobinAssignment())
    if shards <= 1:
        return factory.track(updates, record_every=record_every, batched=batched)
    from repro.monitoring.runner import run_tracking
    from repro.monitoring.sharding import build_sharded_network

    network = build_sharded_network(factory, shards, sharding=sharding)
    return run_tracking(network, updates, record_every=record_every, batched=batched)


def compare_trackers(
    factories: Mapping[str, object],
    spec: StreamSpec,
    num_sites: int,
    epsilon: float,
    policy: Optional[AssignmentPolicy] = None,
    record_every: int = 1,
    batched: Optional[bool] = None,
    shards: int = 1,
    sharding=None,
) -> List[TrackerComparison]:
    """Run several trackers on the same distributed stream and tabulate them.

    Args:
        factories: Mapping from display name to tracker factory.
        spec: The stream to track.
        num_sites: Number of sites ``k``.
        epsilon: Error parameter used for violation accounting.
        policy: Site-assignment policy (round robin by default).
        record_every: Per-step recording stride passed to the runner.
        batched: Delivery-engine selector passed to the runner (``None`` =
            auto, ``True`` = batched fast path, ``False`` = per-update).
        shards: Coordinator shards; above 1 every tracker runs as a sharded
            hierarchy and its totals include the shard-to-root hops.
        sharding: Site-to-shard partition policy (contiguous by default).

    Returns:
        One :class:`TrackerComparison` per factory, in input order.
    """
    if not factories:
        raise ConfigurationError("factories must not be empty")
    stream_variability = variability(spec.deltas, start=spec.start)
    comparisons = []
    for name, factory in factories.items():
        result = run_tracker_on_stream(
            factory,
            spec,
            num_sites,
            policy=policy,
            record_every=record_every,
            batched=batched,
            shards=shards,
            sharding=sharding,
        )
        summary = result.summary(epsilon)
        comparisons.append(
            TrackerComparison(
                name=name,
                messages=summary["total_messages"],
                bits=summary["total_bits"],
                max_relative_error=summary["max_relative_error"],
                violation_fraction=summary["violation_fraction"],
                variability=stream_variability,
                messages_per_variability=summary["total_messages"]
                / max(stream_variability, 1.0),
            )
        )
    return comparisons


def measure_engine_throughput(
    factory,
    updates: Sequence,
    record_every: int = 20_000,
    shards: int = 1,
) -> Tuple[float, float, float]:
    """Time both runner engines on the same updates and verify they agree.

    Runs the per-update engine, then the batched engine, on ``updates``
    (which must be a materialised sequence so both runs see the same data
    and ``len()`` is known for the rate).  Raises
    :class:`~repro.exceptions.ProtocolError` if the engines disagree on
    message totals, bit totals or any recorded estimate — they are
    bit-for-bit equivalent by contract, so a divergence is always a bug.

    With ``shards > 1`` both engines drive a fresh sharded hierarchy
    (:mod:`repro.monitoring.sharding`).  Recorded estimates and the merged
    *shard-local* counters must still agree exactly; the shard-to-root hop
    count is excluded from the check because estimate pushes happen per
    delivery event, and the engines legitimately batch deliveries
    differently (see the push-granularity note in the sharding module).

    Returns:
        ``(per_update_rate, batched_rate, speedup)`` in updates/second and
        the wall-clock ratio between the two engines.

    Used by both the throughput benchmark (``benchmarks/
    test_bench_e17_throughput.py``) and ``python -m repro throughput`` so
    the two tables cannot drift apart.
    """
    if shards > 1:
        from repro.monitoring.runner import run_tracking
        from repro.monitoring.sharding import build_sharded_network

        def run(batched: bool):
            network = build_sharded_network(factory, shards)
            begin = time.perf_counter()
            result = run_tracking(
                network, updates, record_every=record_every, batched=batched
            )
            return result, network.local_stats, time.perf_counter() - begin

        slow, slow_local, slow_seconds = run(False)
        fast, fast_local, fast_seconds = run(True)
        agree = (
            slow_local.messages == fast_local.messages
            and slow_local.bits == fast_local.bits
            and [r.estimate for r in slow.records] == [r.estimate for r in fast.records]
        )
    else:
        start = time.perf_counter()
        slow = factory.track(updates, record_every=record_every, batched=False)
        slow_seconds = time.perf_counter() - start
        start = time.perf_counter()
        fast = factory.track(updates, record_every=record_every, batched=True)
        fast_seconds = time.perf_counter() - start
        agree = (
            slow.total_messages == fast.total_messages
            and slow.total_bits == fast.total_bits
            and [r.estimate for r in slow.records] == [r.estimate for r in fast.records]
        )
    if not agree:
        raise ProtocolError(
            "batched and per-update engines disagree on the same stream; "
            "this violates the equivalence contract — please report"
        )
    n = len(updates)
    return n / slow_seconds, n / fast_seconds, slow_seconds / fast_seconds


def measure_columnar_throughput(
    factory,
    trace,
    record_every: int = 20_000,
    shards: int = 1,
) -> Tuple[float, float, float]:
    """Time the per-update engine against the columnar array engine.

    The columnar counterpart of :func:`measure_engine_throughput` for
    replayed traces (:class:`repro.streams.io.TraceColumns`): the baseline
    replays the trace as :class:`~repro.types.Update` objects through the
    per-update engine, the fast run feeds the arrays straight into
    :func:`repro.monitoring.runner.run_tracking_arrays`.  The engines must
    agree bit-for-bit on message totals, bit totals and every recorded
    estimate — a divergence raises
    :class:`~repro.exceptions.ProtocolError`.

    Returns:
        ``(per_update_rate, arrays_rate, speedup)`` in updates/second.
    """
    from repro.monitoring.runner import run_tracking, run_tracking_arrays

    def build_network():
        if shards > 1:
            from repro.monitoring.sharding import build_sharded_network

            return build_sharded_network(factory, shards)
        return factory.build_network()

    updates = trace.to_updates()
    begin = time.perf_counter()
    slow = run_tracking(
        build_network(), updates, record_every=record_every, batched=False
    )
    slow_seconds = time.perf_counter() - begin
    begin = time.perf_counter()
    fast = run_tracking_arrays(
        build_network(),
        trace.times,
        trace.sites,
        trace.deltas,
        record_every=record_every,
    )
    fast_seconds = time.perf_counter() - begin
    agree = (
        slow.total_messages == fast.total_messages
        and slow.total_bits == fast.total_bits
        and [r.estimate for r in slow.records] == [r.estimate for r in fast.records]
    )
    if not agree and shards > 1:
        # Sharded root-hop counts legitimately differ between delivery
        # granularities (see the push-granularity note in the sharding
        # module); estimates must still match exactly.
        agree = [r.estimate for r in slow.records] == [
            r.estimate for r in fast.records
        ]
    if not agree:
        raise ProtocolError(
            "columnar and per-update engines disagree on the same trace; "
            "this violates the equivalence contract — please report"
        )
    n = len(trace)
    return n / slow_seconds, n / fast_seconds, slow_seconds / fast_seconds


def repeat_variability(
    generator: Callable[[int], StreamSpec],
    trials: int,
    seed: int = 0,
) -> Dict[str, float]:
    """Estimate the expected variability of a random stream class.

    Args:
        generator: Callable taking a seed and returning a fresh stream.
        trials: Number of independent streams to average over.
        seed: Base seed; trial ``i`` uses ``seed + i``.

    Returns:
        A dict with keys ``mean``, ``std``, ``min`` and ``max``.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    values = []
    for trial in range(trials):
        spec = generator(seed + trial)
        values.append(variability(spec.deltas, start=spec.start))
    array = np.asarray(values, dtype=float)
    return {
        "mean": float(np.mean(array)),
        "std": float(np.std(array)),
        "min": float(np.min(array)),
        "max": float(np.max(array)),
    }
