"""Small experiment driver shared by benchmarks, examples and tests.

The driver answers the two questions every experiment asks:

* "run this tracker on this stream with ``k`` sites — how wrong was it and
  how much did it talk?" (:func:`run_tracker_on_stream`,
  :func:`compare_trackers`), and
* "what is the (expected) variability of this stream class at this length?"
  (:func:`repeat_variability`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.variability import variability
from repro.exceptions import ConfigurationError
from repro.monitoring.runner import TrackingResult
from repro.streams.assignment import AssignmentPolicy, RoundRobinAssignment, assign_sites
from repro.streams.model import StreamSpec

__all__ = [
    "TrackerComparison",
    "run_tracker_on_stream",
    "compare_trackers",
    "repeat_variability",
]


@dataclass(frozen=True)
class TrackerComparison:
    """One tracker's outcome on one stream, in comparable units.

    Attributes:
        name: Label of the tracker (e.g. ``"deterministic"``).
        messages: Total messages used.
        bits: Total message bits used.
        max_relative_error: Worst relative error over the run.
        violation_fraction: Fraction of timesteps violating the eps guarantee.
        variability: The stream's f-variability (same for every tracker).
        messages_per_variability: ``messages / max(variability, 1)``, the
            quantity the paper's ``O(poly(k, 1/eps) * v)`` bounds normalise.
    """

    name: str
    messages: int
    bits: int
    max_relative_error: float
    violation_fraction: float
    variability: float
    messages_per_variability: float


def run_tracker_on_stream(
    factory,
    spec: StreamSpec,
    num_sites: int,
    policy: Optional[AssignmentPolicy] = None,
    record_every: int = 1,
) -> TrackingResult:
    """Distribute a stream over ``num_sites`` sites and run one tracker on it."""
    updates = assign_sites(spec, num_sites, policy or RoundRobinAssignment())
    return factory.track(updates, record_every=record_every)


def compare_trackers(
    factories: Mapping[str, object],
    spec: StreamSpec,
    num_sites: int,
    epsilon: float,
    policy: Optional[AssignmentPolicy] = None,
    record_every: int = 1,
) -> List[TrackerComparison]:
    """Run several trackers on the same distributed stream and tabulate them.

    Args:
        factories: Mapping from display name to tracker factory.
        spec: The stream to track.
        num_sites: Number of sites ``k``.
        epsilon: Error parameter used for violation accounting.
        policy: Site-assignment policy (round robin by default).
        record_every: Per-step recording stride passed to the runner.

    Returns:
        One :class:`TrackerComparison` per factory, in input order.
    """
    if not factories:
        raise ConfigurationError("factories must not be empty")
    stream_variability = variability(spec.deltas, start=spec.start)
    comparisons = []
    for name, factory in factories.items():
        result = run_tracker_on_stream(
            factory, spec, num_sites, policy=policy, record_every=record_every
        )
        comparisons.append(
            TrackerComparison(
                name=name,
                messages=result.total_messages,
                bits=result.total_bits,
                max_relative_error=result.max_relative_error(),
                violation_fraction=result.violation_fraction(epsilon),
                variability=stream_variability,
                messages_per_variability=result.total_messages
                / max(stream_variability, 1.0),
            )
        )
    return comparisons


def repeat_variability(
    generator: Callable[[int], StreamSpec],
    trials: int,
    seed: int = 0,
) -> Dict[str, float]:
    """Estimate the expected variability of a random stream class.

    Args:
        generator: Callable taking a seed and returning a fresh stream.
        trials: Number of independent streams to average over.
        seed: Base seed; trial ``i`` uses ``seed + i``.

    Returns:
        A dict with keys ``mean``, ``std``, ``min`` and ``max``.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    values = []
    for trial in range(trials):
        spec = generator(seed + trial)
        values.append(variability(spec.deltas, start=spec.start))
    array = np.asarray(values, dtype=float)
    return {
        "mean": float(np.mean(array)),
        "std": float(np.std(array)),
        "min": float(np.min(array)),
        "max": float(np.max(array)),
    }
