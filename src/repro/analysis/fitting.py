"""Growth-rate fitting used to verify asymptotic shapes empirically.

The reproduction cannot (and should not) match the paper's constants, but it
can check that a measured quantity grows like the predicted function of ``n``
(or ``k``, or ``1/eps``).  :func:`fit_growth` fits ``y ~ c * g(x)`` for a
library of candidate shapes by least squares on the multiplier and reports
the relative residual of each candidate, so tests and benchmarks can assert
"the best-fitting shape is the predicted one" or "the predicted shape fits
within a small relative residual".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["GROWTH_SHAPES", "GrowthFit", "fit_growth"]


def _shape_constant(x: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def _shape_log(x: np.ndarray) -> np.ndarray:
    return np.log(np.maximum(x, 2.0))


def _shape_sqrt(x: np.ndarray) -> np.ndarray:
    return np.sqrt(x)


def _shape_sqrt_log(x: np.ndarray) -> np.ndarray:
    return np.sqrt(x) * np.log(np.maximum(x, 2.0))


def _shape_linear(x: np.ndarray) -> np.ndarray:
    return x


def _shape_linear_log(x: np.ndarray) -> np.ndarray:
    return x * np.log(np.maximum(x, 2.0))


#: Candidate growth shapes, by name.
GROWTH_SHAPES: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "constant": _shape_constant,
    "log": _shape_log,
    "sqrt": _shape_sqrt,
    "sqrt_log": _shape_sqrt_log,
    "linear": _shape_linear,
    "linear_log": _shape_linear_log,
}


@dataclass(frozen=True)
class GrowthFit:
    """Result of fitting measured values against the candidate shapes.

    Attributes:
        best_shape: Name of the candidate with the smallest relative residual.
        best_constant: Fitted multiplier for the best candidate.
        residuals: Relative root-mean-square residual per candidate name.
        constants: Fitted multiplier per candidate name.
    """

    best_shape: str
    best_constant: float
    residuals: Mapping[str, float]
    constants: Mapping[str, float]

    def residual_of(self, shape: str) -> float:
        """Relative residual of a specific candidate shape."""
        if shape not in self.residuals:
            raise ConfigurationError(f"unknown shape {shape!r}")
        return self.residuals[shape]

    def shape_is_consistent(self, shape: str, tolerance: float = 0.25) -> bool:
        """Whether ``shape`` fits the data within the given relative residual."""
        return self.residual_of(shape) <= tolerance


def fit_growth(
    xs: Sequence[float],
    ys: Sequence[float],
    shapes: Optional[Sequence[str]] = None,
) -> GrowthFit:
    """Fit ``y ~ c * g(x)`` for each candidate shape ``g`` and rank them.

    Args:
        xs: The independent variable (e.g. stream lengths ``n``).
        ys: The measured values (e.g. variability or message counts).
        shapes: Candidate names from :data:`GROWTH_SHAPES` (default: all).

    Returns:
        A :class:`GrowthFit` with per-shape multipliers and relative residuals.

    Raises:
        ConfigurationError: On mismatched lengths, fewer than three points, or
            an unknown shape name.
    """
    if len(xs) != len(ys):
        raise ConfigurationError(
            f"xs ({len(xs)}) and ys ({len(ys)}) must have equal length"
        )
    if len(xs) < 3:
        raise ConfigurationError("need at least three points to fit a growth shape")
    names = list(shapes) if shapes is not None else list(GROWTH_SHAPES)
    for name in names:
        if name not in GROWTH_SHAPES:
            raise ConfigurationError(f"unknown shape {name!r}")
    x_array = np.asarray(xs, dtype=float)
    y_array = np.asarray(ys, dtype=float)
    if np.any(x_array <= 0):
        raise ConfigurationError("xs must be strictly positive")
    scale = float(np.mean(np.abs(y_array))) or 1.0

    residuals: Dict[str, float] = {}
    constants: Dict[str, float] = {}
    for name in names:
        basis = GROWTH_SHAPES[name](x_array)
        denominator = float(np.dot(basis, basis))
        constant = float(np.dot(basis, y_array) / denominator) if denominator > 0 else 0.0
        prediction = constant * basis
        residual = float(np.sqrt(np.mean((prediction - y_array) ** 2))) / scale
        residuals[name] = residual
        constants[name] = constant

    best = min(residuals, key=residuals.get)
    return GrowthFit(
        best_shape=best,
        best_constant=constants[best],
        residuals=residuals,
        constants=constants,
    )
