"""Plain-text table rendering for experiment output.

The benchmarks print their measured-versus-predicted tables with
:func:`format_table`, which right-pads every column so the output reads like
the tables in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["format_table"]


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a list of rows as an aligned plain-text table.

    Args:
        headers: Column names.
        rows: Row values; every row must have the same number of cells as
            there are headers.

    Returns:
        A multi-line string with a header line, a separator and one line per
        row.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [_render_cell(value) for value in row]
        if len(cells) != len(headers):
            raise ConfigurationError(
                f"row {cells} has {len(cells)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append(cells)
    widths = [len(str(header)) for header in headers]
    for cells in rendered_rows:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * widths[i] for i in range(len(headers)))
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
        for cells in rendered_rows
    ]
    return "\n".join([header_line, separator] + body)
