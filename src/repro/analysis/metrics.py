"""Aggregation of repeated randomized trials and per-shard accounting.

Randomized algorithms (the Section 3.4 tracker, the Huang and Liu baselines,
random-walk inputs) are evaluated over repeated trials; :func:`summarize_trials`
reduces a list of per-trial scalar observations to the statistics the
benchmarks report (mean, standard deviation, min/max and selected quantiles).
For the sharded hierarchy, :func:`shard_imbalance` condenses the per-shard
communication counters into one load-skew number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "TrialSummary",
    "summarize_trials",
    "shard_imbalance",
    "level_message_shares",
    "root_traffic_fraction",
]


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics of one scalar observed over repeated trials."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    percentile_90: float

    def as_row(self) -> list:
        """Row form used by the plain-text reports."""
        return [
            self.count,
            round(self.mean, 3),
            round(self.std, 3),
            round(self.minimum, 3),
            round(self.median, 3),
            round(self.percentile_90, 3),
            round(self.maximum, 3),
        ]


def summarize_trials(values: Sequence[float]) -> TrialSummary:
    """Summarise a sequence of per-trial observations.

    Raises:
        ConfigurationError: If ``values`` is empty.
    """
    if len(values) == 0:
        raise ConfigurationError("cannot summarize an empty list of trials")
    array = np.asarray(values, dtype=float)
    return TrialSummary(
        count=int(array.size),
        mean=float(np.mean(array)),
        std=float(np.std(array)),
        minimum=float(np.min(array)),
        maximum=float(np.max(array)),
        median=float(np.median(array)),
        percentile_90=float(np.percentile(array, 90)),
    )


def shard_imbalance(shard_stats: Sequence) -> float:
    """Load skew across shards: hottest shard's messages over the mean.

    Takes the per-shard counters of a
    :class:`repro.monitoring.sharding.ShardedNetwork` (``shard_stats()``, or
    anything exposing ``.messages``) and returns
    ``max(messages) / mean(messages)``: ``1.0`` means perfectly balanced
    shards; ``num_shards`` means one shard carried all the traffic.  A
    communication-silent topology (no messages anywhere) counts as balanced.

    Raises:
        ConfigurationError: If ``shard_stats`` is empty.
    """
    if len(shard_stats) == 0:
        raise ConfigurationError("shard_imbalance needs at least one shard")
    counts = np.asarray([stats.messages for stats in shard_stats], dtype=float)
    mean = float(counts.mean())
    if mean == 0.0:
        return 1.0
    return float(counts.max() / mean)


def level_message_shares(levels: Sequence) -> list:
    """Each hierarchy level's share of the total message traffic, root first.

    Takes the per-level view of a tree run — either
    :meth:`repro.monitoring.sharding.ShardedNetwork.level_summary` rows or
    ``result.levels`` / ``summary()["levels"]`` dicts — and returns one
    float per level summing to 1.0 (a silent run counts every level as 0).
    The headline diagnostic for depth sweeps: a healthy tree concentrates
    its traffic at the leaves, with each aggregation level a diminishing
    fraction.

    Raises:
        ConfigurationError: If ``levels`` is empty.
    """
    if len(levels) == 0:
        raise ConfigurationError("level_message_shares needs at least one level")
    counts = np.asarray(
        [
            row["messages"] if isinstance(row, dict) else row.messages
            for row in levels
        ],
        dtype=float,
    )
    total = float(counts.sum())
    if total == 0.0:
        return [0.0] * len(counts)
    return [float(count / total) for count in counts]


def root_traffic_fraction(levels: Sequence) -> float:
    """The root level's share of total traffic (``level_message_shares[0]``).

    The scalar that E21 tracks against ``k``: the whole point of the
    recursive hierarchy is that this fraction — and the root's absolute
    message count — grows sublinearly in the site count.
    """
    return level_message_shares(levels)[0]
