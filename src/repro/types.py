"""Shared type aliases and small value objects used across the library.

The distributed-monitoring model of Cormode, Muthukrishnan and Yi has three
kinds of actors: a stream of *updates*, a set of *sites* that receive those
updates, and a single *coordinator* that must maintain an estimate of an
aggregate of the whole stream.  The dataclasses here are the small, immutable
values those actors exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "SiteId",
    "Timestep",
    "Update",
    "ItemUpdate",
    "EstimateRecord",
    "prefix_sums",
]

# A site identifier is a small non-negative integer in ``range(k)``.
SiteId = int

# Timesteps are positive integers; time 0 is the (empty) initial state.
Timestep = int


@dataclass(frozen=True)
class Update:
    """A single stream update ``f'(t)`` destined for one site.

    Attributes:
        time: The timestep ``t`` at which the update arrives (1-based).
        site: The site ``i(t)`` that receives the update.
        delta: The change ``f'(t) = f(t) - f(t - 1)``.
    """

    time: Timestep
    site: SiteId
    delta: int

    def __post_init__(self) -> None:
        if self.time < 1:
            raise ValueError(f"update time must be >= 1, got {self.time}")
        if self.site < 0:
            raise ValueError(f"site id must be >= 0, got {self.site}")


@dataclass(frozen=True)
class ItemUpdate:
    """An insert/delete of a single item, used by frequency tracking.

    Attributes:
        time: The timestep of the update (1-based).
        site: The site that receives the update.
        item: The item identifier drawn from the universe ``U``.
        delta: ``+1`` for an insertion of ``item``, ``-1`` for a deletion.
    """

    time: Timestep
    site: SiteId
    item: int
    delta: int

    def __post_init__(self) -> None:
        if self.time < 1:
            raise ValueError(f"update time must be >= 1, got {self.time}")
        if self.site < 0:
            raise ValueError(f"site id must be >= 0, got {self.site}")
        if self.delta not in (-1, 1):
            raise ValueError(f"item update delta must be +-1, got {self.delta}")


@dataclass(frozen=True)
class EstimateRecord:
    """The coordinator's view at one timestep, recorded by the runner.

    Attributes:
        time: The timestep after which the record was taken.
        true_value: The exact value ``f(t)``.
        estimate: The coordinator's estimate ``fhat(t)``.
        messages: Cumulative number of messages exchanged so far.
        bits: Cumulative number of message bits exchanged so far.
    """

    time: Timestep
    true_value: int
    estimate: float
    messages: int
    bits: int

    @property
    def absolute_error(self) -> float:
        """Absolute estimation error ``|f(t) - fhat(t)|``."""
        return abs(self.true_value - self.estimate)

    def within_relative_error(self, epsilon: float) -> bool:
        """Return whether the estimate satisfies ``|f - fhat| <= eps * |f|``.

        The paper's guarantee is stated against ``eps * f(t)``; when
        ``f(t) = 0`` the only acceptable estimate is ``0`` (up to floating
        point rounding for randomized estimators).
        """
        return self.absolute_error <= epsilon * abs(self.true_value) + 1e-9


def prefix_sums(deltas: Iterable[int], start: int = 0) -> Iterator[int]:
    """Yield the running values ``f(t)`` of a stream of deltas ``f'(t)``.

    Args:
        deltas: The per-timestep changes ``f'(1), f'(2), ...``.
        start: The initial value ``f(0)``; the paper uses 0 unless stated.

    Yields:
        The values ``f(1), f(2), ...`` in order.
    """
    total = start
    for delta in deltas:
        total += delta
        yield total


def values_from_updates(updates: Sequence[Update], start: int = 0) -> list[int]:
    """Return the list of values ``f(1..n)`` induced by a list of updates."""
    return list(prefix_sums((u.delta for u in updates), start=start))
