"""Deterministic monotone counter (Cormode, Muthukrishnan & Yi).

The classic round-based algorithm for tracking an insertion-only count to
``eps`` relative error with ``O((k / eps) log n)`` messages:

* The coordinator runs in rounds.  At the start of round ``j`` it knows the
  exact count ``F_j`` and broadcasts a per-site signal threshold
  ``theta_j = max(1, floor(eps * F_j / k))``.
* Each site sends a (payload-free) signal every ``theta_j`` new updates.
* The coordinator estimates ``F_j + (signals received) * theta_j``.  After
  ``k`` signals it polls every site for its exact residual count, computes the
  exact ``F_{j+1}`` and starts the next round.

Unreported updates total less than ``k * theta_j <= eps * F_j <= eps * f(n)``,
so the estimate is always within ``eps`` relative error *for monotone
streams*.  Fed a non-monotone stream the algorithm still runs (it counts the
net change) but its guarantee is void — which is exactly the gap the paper's
variability framework closes.  The E7 benchmark compares it against the
Section 3 trackers on monotone inputs.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.template import check_tracking_parameters
from repro.exceptions import ConfigurationError
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.messages import BROADCAST_SITE, COORDINATOR, Message, MessageKind
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.site import Site

__all__ = ["CormodeSite", "CormodeCoordinator", "CormodeCounter"]


class CormodeSite(Site):
    """Site side: signal every ``theta`` updates, answer polls exactly."""

    def __init__(self, site_id: int) -> None:
        super().__init__(site_id)
        self.threshold = 1
        self.unsignalled = 0

    def receive_update(self, time: int, delta: int) -> None:
        self.unsignalled += delta
        if self.unsignalled >= self.threshold:
            self.unsignalled -= self.threshold
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={},
                    time=time,
                )
            )

    def receive_message(self, message: Message) -> None:
        if message.kind is MessageKind.REQUEST:
            residual = self.unsignalled
            self.unsignalled = 0
            self.send(
                Message(
                    kind=MessageKind.REPLY,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"residual": residual},
                    time=message.time,
                )
            )
        elif message.kind is MessageKind.BROADCAST:
            self.threshold = int(message.payload["threshold"])
        else:
            raise ConfigurationError(f"unexpected message kind {message.kind}")


class CormodeCoordinator(Coordinator):
    """Coordinator side: round bookkeeping and the running estimate."""

    def __init__(self, num_sites: int, epsilon: float) -> None:
        super().__init__()
        self.num_sites = num_sites
        self.epsilon = epsilon
        self.round_base = 0
        self.threshold = 1
        self.signals = 0
        self.rounds_completed = 0
        self._collecting = False
        self._residuals: Dict[int, int] = {}
        self._close_time = 0

    def estimate(self) -> float:
        return float(self.round_base + self.signals * self.threshold)

    def receive_message(self, message: Message) -> None:
        if message.kind is MessageKind.REPLY:
            if not self._collecting:
                raise ConfigurationError("reply received outside of a round close")
            self._residuals[message.sender] = int(message.payload["residual"])
            if len(self._residuals) == self.num_sites:
                self._finish_round()
            return
        if message.kind is not MessageKind.REPORT:
            raise ConfigurationError(f"unexpected message kind {message.kind}")
        self.signals += 1
        if self.signals >= self.num_sites and not self._collecting:
            self._close_round(message.time)

    def _close_round(self, time: int) -> None:
        """Start a round close by polling every site for its exact residual.

        Over a synchronous channel the replies arrive reentrantly and the
        round completes within this call; over an asynchronous channel the
        poll is in flight for a while and :meth:`_finish_round` runs when the
        last (possibly delayed) reply lands.
        """
        self._collecting = True
        self._residuals = {}
        self._close_time = time
        for site_id in range(self.num_sites):
            self.send(
                Message(
                    kind=MessageKind.REQUEST,
                    sender=COORDINATOR,
                    receiver=site_id,
                    payload={},
                    time=time,
                )
            )
        if self._channel is not None and self._channel.is_synchronous:
            if self._collecting:
                raise ConfigurationError(
                    f"round close expected {self.num_sites} replies, "
                    f"got {len(self._residuals)}"
                )

    def _finish_round(self) -> None:
        self._collecting = False
        exact = (
            self.round_base
            + self.signals * self.threshold
            + sum(self._residuals.values())
        )
        self.round_base = exact
        self.signals = 0
        self.rounds_completed += 1
        self.threshold = max(1, int(math.floor(self.epsilon * exact / self.num_sites)))
        self.send(
            Message(
                kind=MessageKind.BROADCAST,
                sender=COORDINATOR,
                receiver=BROADCAST_SITE,
                payload={"threshold": self.threshold},
                time=self._close_time,
            )
        )


class CormodeCounter:
    """Factory for the deterministic monotone baseline."""

    def __init__(self, num_sites: int, epsilon: float) -> None:
        check_tracking_parameters(num_sites, epsilon)
        self.num_sites = num_sites
        self.epsilon = epsilon

    def shard_factory(self, num_sites: int, shard_id: int) -> "CormodeCounter":
        """Per-shard clone for the sharded hierarchy (same ``eps``, local ``k``)."""
        return CormodeCounter(num_sites, self.epsilon)

    def build_network(self) -> MonitoringNetwork:
        """Create a wired coordinator + ``k`` sites running the CMY protocol."""
        coordinator = CormodeCoordinator(self.num_sites, self.epsilon)
        sites = [CormodeSite(i) for i in range(self.num_sites)]
        return MonitoringNetwork(coordinator, sites)

    def track(self, updates, record_every: int = 1, batched=None):
        """Run a distributed (monotone) stream through a fresh network."""
        from repro.monitoring.runner import run_tracking

        return run_tracking(
            self.build_network(), updates, record_every=record_every, batched=batched
        )
