"""Non-adaptive fixed-threshold tracker (ablation of the block partition).

Each site reports its exact local drift whenever it has drifted by a fixed
amount ``T`` since its last report; the coordinator sums the latest reports.
There is no block partition and no re-synchronisation, so the additive error
is up to ``k * T`` at all times:

* choose ``T`` small (1) and the cost degenerates to one message per update;
* choose ``T`` large and the relative-error guarantee is violated whenever
  ``|f(n)| < k T / eps``.

The E14 ablation benchmark runs this tracker next to the Section 3.3 tracker
to show that the *adaptive* threshold (``eps * 2^r`` tied to the block level,
re-synchronised at block boundaries) is what converts an additive guarantee
into the paper's relative one.
"""

from __future__ import annotations

from typing import Dict

from repro.core.template import check_tracking_parameters
from repro.exceptions import ConfigurationError
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.messages import COORDINATOR, Message, MessageKind
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.site import Site

__all__ = ["StaticThresholdSite", "StaticThresholdCoordinator", "StaticThresholdCounter"]


class StaticThresholdSite(Site):
    """Site side: report the exact drift every ``threshold`` units of change."""

    def __init__(self, site_id: int, threshold: int) -> None:
        super().__init__(site_id)
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.drift = 0
        self.unreported = 0

    def receive_update(self, time: int, delta: int) -> None:
        self.drift += delta
        self.unreported += delta
        if abs(self.unreported) >= self.threshold:
            self.unreported = 0
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"drift": self.drift},
                    time=time,
                )
            )

    def receive_message(self, message: Message) -> None:
        return None


class StaticThresholdCoordinator(Coordinator):
    """Coordinator side: sum of the latest reported per-site drifts."""

    def __init__(self) -> None:
        super().__init__()
        self._drifts: Dict[int, int] = {}

    def receive_message(self, message: Message) -> None:
        self._drifts[message.sender] = int(message.payload["drift"])

    def estimate(self) -> float:
        return float(sum(self._drifts.values()))


class StaticThresholdCounter:
    """Factory for the fixed-threshold ablation tracker."""

    def __init__(self, num_sites: int, threshold: int, epsilon: float = 0.1) -> None:
        check_tracking_parameters(num_sites, epsilon)
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        self.num_sites = num_sites
        self.threshold = threshold
        self.epsilon = epsilon

    def build_network(self) -> MonitoringNetwork:
        """Create a wired coordinator + ``k`` fixed-threshold sites."""
        sites = [StaticThresholdSite(i, self.threshold) for i in range(self.num_sites)]
        return MonitoringNetwork(StaticThresholdCoordinator(), sites)

    def track(self, updates, record_every: int = 1, batched=None):
        """Run a distributed stream through a fresh network."""
        from repro.monitoring.runner import run_tracking

        return run_tracking(
            self.build_network(), updates, record_every=record_every, batched=batched
        )
