"""Baseline tracking algorithms the paper compares against or builds upon.

* :mod:`repro.baselines.naive` — forward every update to the coordinator
  (exact, ``n`` messages); the trivial upper bound every algorithm must beat.
* :mod:`repro.baselines.cormode` — the deterministic monotone counter of
  Cormode, Muthukrishnan and Yi (``O((k/eps) log n)`` messages, insert-only).
* :mod:`repro.baselines.huang` — the randomized monotone counter of Huang,
  Yi and Zhang (``O((k + sqrt(k)/eps) log n)`` messages, insert-only).
* :mod:`repro.baselines.liu` — a sampling counter in the spirit of Liu,
  Radunovic and Vojnovic for random (coin-flip) input streams.
* :mod:`repro.baselines.static_threshold` — a non-adaptive fixed-threshold
  tracker used as an ablation of the block partition.
"""

from repro.baselines.cormode import CormodeCounter
from repro.baselines.huang import HuangCounter
from repro.baselines.liu import LiuStyleCounter
from repro.baselines.naive import NaiveCounter
from repro.baselines.static_threshold import StaticThresholdCounter

__all__ = [
    "CormodeCounter",
    "HuangCounter",
    "LiuStyleCounter",
    "NaiveCounter",
    "StaticThresholdCounter",
]
