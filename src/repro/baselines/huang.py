"""Randomized monotone counter (Huang, Yi & Zhang).

The randomized counter for insertion-only streams uses
``O((k + sqrt(k)/eps) log n)`` messages in expectation and guarantees the
``eps`` relative error with constant probability.  Structure:

* Rounds are defined by doublings of the count.  At the start of round ``j``
  the coordinator knows the exact count ``F_j``; the round ends when roughly
  ``F_j`` further updates have arrived (detected through per-site count
  signals, as in the deterministic counter), at which point the coordinator
  re-synchronises exactly.
* Within a round every site, on each update, sends its exact local count with
  probability ``p = min(1, 3 sqrt(2k) / (eps * F_j))``.  The coordinator keeps
  ``c_hat_i = c_i - 1 + 1/p`` for the last received count (Lemma 2.1 of Huang
  et al., restated as Fact 3.1 in the paper), an unbiased estimator of the
  site's count with variance at most ``1/p^2``.

The total standard deviation is at most ``sqrt(2k)/p <= eps F_j / 3``, so by
Chebyshev the estimate is within ``eps F_j <= eps f(n)`` with probability at
least 8/9 at any fixed time.  Expected in-round traffic is about
``p * F_j = 3 sqrt(2k) / eps`` messages per round and there are ``O(log n)``
rounds.

The Section 3.4 tracker is exactly this algorithm run inside the paper's
variability blocks (twice, once per sign), which is why the E7 benchmark
compares the two on monotone streams.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.core.template import check_tracking_parameters
from repro.exceptions import ConfigurationError
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.messages import BROADCAST_SITE, COORDINATOR, Message, MessageKind
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.site import Site

__all__ = ["HuangSite", "HuangCoordinator", "HuangCounter"]


class HuangSite(Site):
    """Site side: probabilistic count reports plus round-progress signals."""

    def __init__(self, site_id: int, seed: Optional[int] = None) -> None:
        super().__init__(site_id)
        self._rng = np.random.default_rng(seed)
        #: Exact count of updates received at this site in the current round.
        self.round_count = 0
        #: Probability of reporting after each update (set by broadcast).
        self.report_probability = 1.0
        #: Updates per progress signal (set by broadcast).
        self.signal_threshold = 1
        self._unsignalled = 0

    def receive_update(self, time: int, delta: int) -> None:
        if delta != 1:
            raise ConfigurationError(
                "the Huang et al. baseline only supports insertion (+1) updates"
            )
        self.round_count += 1
        self._unsignalled += 1
        if self.report_probability >= 1.0 or self._rng.random() < self.report_probability:
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"count": self.round_count, "probabilistic": 1},
                    time=time,
                )
            )
        if self._unsignalled >= self.signal_threshold:
            self._unsignalled -= self.signal_threshold
            self.send(
                Message(
                    kind=MessageKind.REPORT,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"signal": 1},
                    time=time,
                )
            )

    def receive_message(self, message: Message) -> None:
        if message.kind is MessageKind.REQUEST:
            count = self.round_count
            self.round_count = 0
            self._unsignalled = 0
            self.send(
                Message(
                    kind=MessageKind.REPLY,
                    sender=self.site_id,
                    receiver=COORDINATOR,
                    payload={"count": count},
                    time=message.time,
                )
            )
        elif message.kind is MessageKind.BROADCAST:
            self.report_probability = float(message.payload["probability"])
            self.signal_threshold = int(message.payload["signal_threshold"])
        else:
            raise ConfigurationError(f"unexpected message kind {message.kind}")


class HuangCoordinator(Coordinator):
    """Coordinator side: unbiased per-site estimators plus round bookkeeping."""

    def __init__(self, num_sites: int, epsilon: float) -> None:
        super().__init__()
        self.num_sites = num_sites
        self.epsilon = epsilon
        self.round_base = 0
        self.report_probability = 1.0
        self.signal_threshold = 1
        self.signals = 0
        self.rounds_completed = 0
        self._estimates: Dict[int, float] = {}
        self._collecting = False
        self._replies: Dict[int, int] = {}
        self._close_time = 0

    def estimate(self) -> float:
        return float(self.round_base + sum(self._estimates.values()))

    def receive_message(self, message: Message) -> None:
        if message.kind is MessageKind.REPLY:
            if not self._collecting:
                raise ConfigurationError("reply received outside of a round close")
            self._replies[message.sender] = int(message.payload["count"])
            if len(self._replies) == self.num_sites:
                self._finish_round()
            return
        if message.kind is not MessageKind.REPORT:
            raise ConfigurationError(f"unexpected message kind {message.kind}")
        if "signal" in message.payload:
            self.signals += 1
            if self.signals >= self.num_sites and not self._collecting:
                self._close_round(message.time)
            return
        corrected = (
            float(message.payload["count"]) - 1.0 + 1.0 / self.report_probability
        )
        self._estimates[message.sender] = corrected

    def _close_round(self, time: int) -> None:
        """Start a round close; completes when the last reply arrives.

        Synchronous channels deliver the replies reentrantly, so the round
        completes within this call; asynchronous channels finish it from
        :meth:`receive_message` when the ``k``-th delayed reply lands.
        """
        self._collecting = True
        self._replies = {}
        self._close_time = time
        for site_id in range(self.num_sites):
            self.send(
                Message(
                    kind=MessageKind.REQUEST,
                    sender=COORDINATOR,
                    receiver=site_id,
                    payload={},
                    time=time,
                )
            )
        if self._channel is not None and self._channel.is_synchronous:
            if self._collecting:
                raise ConfigurationError(
                    f"round close expected {self.num_sites} replies, "
                    f"got {len(self._replies)}"
                )

    def _finish_round(self) -> None:
        self._collecting = False
        exact = self.round_base + sum(self._replies.values())
        self.round_base = exact
        self.signals = 0
        self.rounds_completed += 1
        self._estimates = {}
        self.report_probability = min(
            1.0, 3.0 * math.sqrt(2.0 * self.num_sites) / (self.epsilon * max(exact, 1))
        )
        self.signal_threshold = max(1, exact // self.num_sites)
        self.send(
            Message(
                kind=MessageKind.BROADCAST,
                sender=COORDINATOR,
                receiver=BROADCAST_SITE,
                payload={
                    "probability": self.report_probability,
                    "signal_threshold": self.signal_threshold,
                },
                time=self._close_time,
            )
        )


class HuangCounter:
    """Factory for the randomized monotone baseline."""

    def __init__(self, num_sites: int, epsilon: float, seed: Optional[int] = None) -> None:
        check_tracking_parameters(num_sites, epsilon)
        self.num_sites = num_sites
        self.epsilon = epsilon
        self.seed = seed

    def shard_factory(self, num_sites: int, shard_id: int) -> "HuangCounter":
        """Per-shard clone; shard ``s`` draws from base seed ``seed + s``."""
        seed = None if self.seed is None else self.seed + shard_id
        return HuangCounter(num_sites, self.epsilon, seed=seed)

    def build_network(self) -> MonitoringNetwork:
        """Create a wired coordinator + ``k`` sites running the HYZ protocol."""
        coordinator = HuangCoordinator(self.num_sites, self.epsilon)
        sites = [
            HuangSite(i, seed=None if self.seed is None else self.seed + i)
            for i in range(self.num_sites)
        ]
        return MonitoringNetwork(coordinator, sites)

    def track(self, updates, record_every: int = 1, batched=None):
        """Run a distributed insertion-only stream through a fresh network."""
        from repro.monitoring.runner import run_tracking

        return run_tracking(
            self.build_network(), updates, record_every=record_every, batched=batched
        )
