"""Naive baseline: forward every update to the coordinator.

This is the trivial exact algorithm: one message per stream update, zero
error.  Every non-trivial tracker must beat its ``n`` messages (and the paper's
lower bounds say nothing can beat ``~v/eps`` while keeping the guarantee).
"""

from __future__ import annotations

from typing import List

from repro.core.template import check_tracking_parameters
from repro.monitoring.coordinator import Coordinator
from repro.monitoring.messages import COORDINATOR, Message, MessageKind
from repro.monitoring.network import MonitoringNetwork
from repro.monitoring.site import Site

__all__ = ["NaiveSite", "NaiveCoordinator", "NaiveCounter"]


class NaiveSite(Site):
    """Forwards each update verbatim."""

    def receive_update(self, time: int, delta: int) -> None:
        self.send(
            Message(
                kind=MessageKind.REPORT,
                sender=self.site_id,
                receiver=COORDINATOR,
                payload={"delta": delta},
                time=time,
            )
        )

    def receive_message(self, message: Message) -> None:
        # The coordinator never needs to talk back.
        return None


class NaiveCoordinator(Coordinator):
    """Sums the forwarded deltas; the estimate is always exact."""

    def __init__(self) -> None:
        super().__init__()
        self._value = 0

    def receive_message(self, message: Message) -> None:
        self._value += int(message.payload["delta"])

    def estimate(self) -> float:
        return float(self._value)


class NaiveCounter:
    """Factory matching the interface of the Section 3 tracker factories."""

    def __init__(self, num_sites: int, epsilon: float = 0.1) -> None:
        check_tracking_parameters(num_sites, epsilon)
        self.num_sites = num_sites
        self.epsilon = epsilon

    def shard_factory(self, num_sites: int, shard_id: int) -> "NaiveCounter":
        """Per-shard clone for the sharded hierarchy."""
        return NaiveCounter(num_sites, self.epsilon)

    def build_network(self) -> MonitoringNetwork:
        """Create a wired coordinator + ``k`` naive sites."""
        sites: List[NaiveSite] = [NaiveSite(i) for i in range(self.num_sites)]
        return MonitoringNetwork(NaiveCoordinator(), sites)

    def bootstrap_network(self, network, values, counts) -> None:
        """Seed a fresh naive network with exact state (live-migration hook).

        The naive coordinator's only state is the exact running total; the
        sites are stateless, so a handoff just restores the sum.
        """
        network.coordinator._value = int(sum(values))

    def track(self, updates, record_every: int = 1, batched=None):
        """Run a distributed stream through a fresh naive network."""
        from repro.monitoring.runner import run_tracking

        return run_tracking(
            self.build_network(), updates, record_every=record_every, batched=batched
        )
