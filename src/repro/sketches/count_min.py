"""Count-Min sketch (Cormode & Muthukrishnan, 2005).

A Count-Min sketch is a ``depth x width`` array of counters; item ``x``
updates counter ``(r, h_r(x))`` in every row ``r``.  For insert-only streams
the point estimate is the minimum over rows and overestimates the true
frequency by at most ``eps * F1`` with probability ``1 - (1/2)^depth`` when
``width = 2/eps``.  For turnstile streams (insertions and deletions, as in
Appendix H) the median over rows is the standard unbiased-ish alternative;
both are provided.

The sketch is *linear*: sketches over disjoint sub-streams (e.g. per-site
sketches in the distributed setting) add coordinate-wise, which is what lets
the coordinator combine per-site estimates in Appendix H.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sketches.hashing import PairwiseHash, PairwiseHashFamily

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """A Count-Min sketch with ``depth`` rows of ``width`` counters each."""

    def __init__(self, width: int, depth: int, seed: Optional[int] = None) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.seed = seed
        family = PairwiseHashFamily(range_size=width, seed=seed)
        self._hashes: list = family.draw_many(depth)
        self._table = np.zeros((depth, width), dtype=np.int64)
        self._total = 0

    @classmethod
    def from_error(
        cls, epsilon: float, failure_probability: float = 0.01, seed: Optional[int] = None
    ) -> "CountMinSketch":
        """Size a sketch for additive error ``eps * F1`` with the given failure probability.

        Uses the standard parameters ``width = ceil(2 / eps)`` and
        ``depth = ceil(log2(1 / failure_probability))``.
        """
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0.0 < failure_probability < 1.0:
            raise ConfigurationError(
                f"failure_probability must be in (0, 1), got {failure_probability}"
            )
        width = int(np.ceil(2.0 / epsilon))
        depth = max(1, int(np.ceil(np.log2(1.0 / failure_probability))))
        return cls(width=width, depth=depth, seed=seed)

    @property
    def total(self) -> int:
        """Sum of all updates applied (the signed stream mass)."""
        return self._total

    def counters(self) -> np.ndarray:
        """A copy of the counter table (for tests and size accounting)."""
        return self._table.copy()

    def size_in_counters(self) -> int:
        """Number of counters held (``depth * width``)."""
        return self.depth * self.width

    def bucket(self, row: int, item: int) -> int:
        """Return the bucket item ``item`` maps to in ``row``."""
        if not 0 <= row < self.depth:
            raise ConfigurationError(f"row {row} out of range 0..{self.depth - 1}")
        hash_function: PairwiseHash = self._hashes[row]
        return hash_function(item)

    def update(self, item: int, delta: int = 1) -> None:
        """Apply ``f_item += delta``."""
        for row in range(self.depth):
            self._table[row, self.bucket(row, item)] += delta
        self._total += delta

    def estimate(self, item: int) -> int:
        """Point estimate via the row minimum (valid for insert-only streams)."""
        return int(min(self._table[row, self.bucket(row, item)] for row in range(self.depth)))

    def estimate_median(self, item: int) -> int:
        """Point estimate via the row median (robust under deletions)."""
        values = [self._table[row, self.bucket(row, item)] for row in range(self.depth)]
        return int(np.median(values))

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Return the sketch of the concatenated streams (requires same seed/shape)."""
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ConfigurationError(
                "can only merge Count-Min sketches with identical shape and seed"
            )
        merged = CountMinSketch(self.width, self.depth, seed=self.seed)
        merged._table = self._table + other._table
        merged._total = self._total + other._total
        return merged
