"""Pairwise-independent hash functions.

Both the Count-Min sketch and the bucket reduction of Appendix H need hash
functions drawn from a pairwise-independent family.  We use the standard
construction ``h(x) = ((a x + b) mod p) mod m`` over a Mersenne prime
``p = 2^61 - 1`` with ``a`` drawn uniformly from ``1..p-1`` and ``b`` from
``0..p-1``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["MERSENNE_PRIME_61", "PairwiseHash", "PairwiseHashFamily"]

# A Mersenne prime comfortably larger than any 32-bit item universe.
MERSENNE_PRIME_61 = (1 << 61) - 1


class PairwiseHash:
    """One hash function ``h(x) = ((a x + b) mod p) mod range_size``."""

    def __init__(self, a: int, b: int, range_size: int, prime: int = MERSENNE_PRIME_61) -> None:
        if range_size < 1:
            raise ConfigurationError(f"range_size must be >= 1, got {range_size}")
        if not 1 <= a < prime:
            raise ConfigurationError(f"coefficient a must be in 1..p-1, got {a}")
        if not 0 <= b < prime:
            raise ConfigurationError(f"coefficient b must be in 0..p-1, got {b}")
        self.a = a
        self.b = b
        self.range_size = range_size
        self.prime = prime

    def __call__(self, item: int) -> int:
        """Hash a non-negative integer item into ``0..range_size-1``."""
        if item < 0:
            raise ConfigurationError(f"items must be non-negative integers, got {item}")
        return ((self.a * item + self.b) % self.prime) % self.range_size


class PairwiseHashFamily:
    """A reproducible source of independent :class:`PairwiseHash` functions."""

    def __init__(self, range_size: int, seed: Optional[int] = None) -> None:
        if range_size < 1:
            raise ConfigurationError(f"range_size must be >= 1, got {range_size}")
        self.range_size = range_size
        self._rng = np.random.default_rng(seed)

    def draw(self) -> PairwiseHash:
        """Draw one fresh hash function from the family."""
        a = int(self._rng.integers(1, MERSENNE_PRIME_61))
        b = int(self._rng.integers(0, MERSENNE_PRIME_61))
        return PairwiseHash(a=a, b=b, range_size=self.range_size)

    def draw_many(self, count: int) -> List[PairwiseHash]:
        """Draw ``count`` independent hash functions."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        return [self.draw() for _ in range(count)]
