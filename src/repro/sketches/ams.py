"""AMS sketch for the second frequency moment ``F2`` (Alon–Matias–Szegedy).

The paper's introduction lists frequency moments among the aggregates studied
in the distributed monitoring model, and its Appendix I tracker works for
*any* integer-valued aggregate of the dataset when there is a single site —
the site just has to be able to evaluate the aggregate.  The AMS sketch is the
standard way to evaluate ``F2 = sum_l f_l^2`` in small space over a turnstile
(insert/delete) stream, so it is the natural substrate for the
"general aggregate" example.

Each of ``depth x width`` counters maintains ``sum_l s_{r,c}(l) f_l`` for a
four-wise-independent sign function ``s``; each row's estimate is the mean of
the squared counters, and the final estimate is the median over rows.  With
``width = O(1/eps^2)`` the estimate is within ``(1 +- eps) F2`` with constant
probability per query.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sketches.hashing import MERSENNE_PRIME_61

__all__ = ["AmsF2Sketch"]


class _FourWiseHash:
    """Four-wise independent +-1 hash via a random degree-3 polynomial mod p."""

    def __init__(self, coefficients: np.ndarray, prime: int = MERSENNE_PRIME_61) -> None:
        self._coefficients = [int(c) for c in coefficients]
        self._prime = prime

    def sign(self, item: int) -> int:
        value = 0
        for coefficient in self._coefficients:
            value = (value * item + coefficient) % self._prime
        return 1 if value % 2 == 0 else -1


class AmsF2Sketch:
    """Turnstile sketch estimating the second frequency moment ``F2``."""

    def __init__(self, width: int, depth: int, seed: Optional[int] = None) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._hashes = [
            [_FourWiseHash(rng.integers(1, MERSENNE_PRIME_61, size=4)) for _ in range(width)]
            for _ in range(depth)
        ]
        self._counters = np.zeros((depth, width), dtype=np.int64)
        self._updates = 0

    @classmethod
    def from_error(cls, epsilon: float, seed: Optional[int] = None) -> "AmsF2Sketch":
        """Size the sketch for ``(1 +- eps) F2`` estimates with constant probability."""
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        width = max(1, int(np.ceil(6.0 / (epsilon * epsilon))))
        return cls(width=width, depth=5, seed=seed)

    @property
    def updates(self) -> int:
        """Number of updates applied so far."""
        return self._updates

    def size_in_counters(self) -> int:
        """Number of counters held."""
        return self.width * self.depth

    def update(self, item: int, delta: int = 1) -> None:
        """Apply ``f_item += delta`` (delta may be negative)."""
        if item < 0:
            raise ConfigurationError(f"items must be non-negative integers, got {item}")
        for row in range(self.depth):
            for column in range(self.width):
                self._counters[row, column] += delta * self._hashes[row][column].sign(item)
        self._updates += 1

    def estimate(self) -> float:
        """Return the current estimate of ``F2``."""
        row_estimates = np.mean(self._counters.astype(float) ** 2, axis=1)
        return float(np.median(row_estimates))

    def merge(self, other: "AmsF2Sketch") -> "AmsF2Sketch":
        """Return the sketch of the concatenated streams (same shape and seed)."""
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ConfigurationError(
                "can only merge AMS sketches with identical shape and seed"
            )
        merged = AmsF2Sketch(self.width, self.depth, seed=self.seed)
        merged._counters = self._counters + other._counters
        merged._updates = self._updates + other._updates
        return merged
