"""Greenwald–Khanna quantile summary (insert-only streams).

The distributed-monitoring literature the paper builds on (Cormode et al.,
Yi & Zhang, Huang et al.) tracks order statistics as well as counts, and the
block-partition idea itself comes from Tao et al.'s historical quantile
summaries.  This module provides the classic Greenwald–Khanna (GK) summary as
a reusable substrate: it maintains, in ``O((1/eps) log(eps n))`` space, enough
information about an insert-only stream of values to answer any rank or
quantile query with rank error at most ``eps * n``.

The implementation follows the original paper: tuples ``(value, g, delta)``
where ``g`` is the gap in minimum rank to the previous tuple and ``delta`` is
the uncertainty of the tuple's rank; adjacent tuples are merged whenever
``g_i + g_{i+1} + delta_{i+1} <= 2 eps n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import ConfigurationError, QueryError

__all__ = ["GKTuple", "GKQuantileSummary"]


@dataclass
class GKTuple:
    """One tuple of the GK summary.

    Attributes:
        value: The stored stream value.
        gap: ``g`` — difference between this tuple's minimum rank and the
            previous tuple's minimum rank.
        uncertainty: ``delta`` — the maximum rank minus the minimum rank.
    """

    value: float
    gap: int
    uncertainty: int


class GKQuantileSummary:
    """epsilon-approximate quantile summary for insert-only value streams."""

    # Compress after this many inserts since the last compression.
    _COMPRESS_PERIOD_FACTOR = 0.5

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._tuples: List[GKTuple] = []
        self._count = 0
        self._inserts_since_compress = 0
        self._compress_period = max(1, int(self._COMPRESS_PERIOD_FACTOR / epsilon))

    @property
    def count(self) -> int:
        """Number of values inserted so far."""
        return self._count

    def size(self) -> int:
        """Number of tuples currently stored (the summary's space)."""
        return len(self._tuples)

    def insert(self, value: float) -> None:
        """Insert one value into the summary."""
        self._count += 1
        threshold = self._threshold()
        position = 0
        while position < len(self._tuples) and self._tuples[position].value < value:
            position += 1
        if position == 0 or position == len(self._tuples):
            # New minimum or maximum: its rank is known exactly.
            entry = GKTuple(value=value, gap=1, uncertainty=0)
        else:
            entry = GKTuple(value=value, gap=1, uncertainty=max(0, threshold - 1))
        self._tuples.insert(position, entry)
        self._inserts_since_compress += 1
        if self._inserts_since_compress >= self._compress_period:
            self._compress()
            self._inserts_since_compress = 0

    def insert_many(self, values: Sequence[float]) -> None:
        """Insert a sequence of values."""
        for value in values:
            self.insert(value)

    def _threshold(self) -> int:
        return int(math.floor(2.0 * self.epsilon * max(self._count, 1)))

    def _compress(self) -> None:
        threshold = self._threshold()
        if len(self._tuples) < 3:
            return
        compressed: List[GKTuple] = [self._tuples[0]]
        for entry in self._tuples[1:-1]:
            last = compressed[-1]
            if (
                len(compressed) > 1
                and last.gap + entry.gap + entry.uncertainty <= threshold
            ):
                # Merge `last` into `entry` (keep the larger value, add gaps).
                merged = GKTuple(
                    value=entry.value,
                    gap=last.gap + entry.gap,
                    uncertainty=entry.uncertainty,
                )
                compressed[-1] = merged
            else:
                compressed.append(entry)
        compressed.append(self._tuples[-1])
        self._tuples = compressed

    def query_rank(self, rank: int) -> float:
        """Return a value whose rank is within ``eps * n`` of ``rank`` (1-based)."""
        if self._count == 0:
            raise QueryError("cannot query an empty summary")
        if not 1 <= rank <= self._count:
            raise QueryError(f"rank must be in 1..{self._count}, got {rank}")
        allowed = self.epsilon * self._count
        min_rank = 0
        for entry in self._tuples:
            min_rank += entry.gap
            max_rank = min_rank + entry.uncertainty
            if rank - min_rank <= allowed and max_rank - rank <= allowed:
                return entry.value
        return self._tuples[-1].value

    def query_quantile(self, phi: float) -> float:
        """Return an eps-approximate ``phi``-quantile (``phi`` in [0, 1])."""
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        if self._count == 0:
            raise QueryError("cannot query an empty summary")
        rank = min(self._count, max(1, int(math.ceil(phi * self._count))))
        return self.query_rank(rank)

    def quantiles(self, count: int) -> List[float]:
        """Return ``count`` evenly spaced approximate quantiles (excluding 0)."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        return [self.query_quantile((i + 1) / (count + 1)) for i in range(count)]
