"""Sketch substrates used by the frequency-tracking extension (Appendix H).

The exact frequency tracker keeps one counter per item per site, which is
prohibitive for a large universe.  Appendix H reduces the item space with one
of two linear sketches, both implemented here from scratch:

* the **Count-Min sketch** of Cormode and Muthukrishnan (randomized,
  pairwise-independent hashing), and
* the **CR-precis** structure of Ganguly and Majumder (deterministic,
  residues modulo distinct primes).

Both expose the same point-query interface so the distributed tracker can use
either interchangeably.
"""

from repro.sketches.ams import AmsF2Sketch
from repro.sketches.count_min import CountMinSketch
from repro.sketches.cr_precis import CRPrecis, first_primes
from repro.sketches.gk_quantile import GKQuantileSummary
from repro.sketches.hashing import PairwiseHash, PairwiseHashFamily

__all__ = [
    "AmsF2Sketch",
    "CountMinSketch",
    "CRPrecis",
    "first_primes",
    "GKQuantileSummary",
    "PairwiseHash",
    "PairwiseHashFamily",
]
