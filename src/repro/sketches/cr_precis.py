"""CR-precis deterministic frequency summary (Ganguly & Majumder, 2006/07).

The CR-precis keeps one row of counters per prime ``t_1 < t_2 < ... < t_r``;
item ``x`` updates counter ``x mod t_j`` in row ``j``.  By the Chinese
remainder theorem two distinct items collide in fewer than ``log_{t_1} |U|``
rows, which yields a deterministic additive-error guarantee of
``eps * F1 / 3`` when the number of rows and their sizes are chosen as in
Appendix H (``3/eps`` rows of roughly ``(6 log|U|) / (eps log(1/eps))``
counters).

Point queries can take the minimum over rows (the original CR-precis rule,
valid for insert-only streams) or the average (which the paper notes also
works and keeps the sketch linear, so it remains valid under deletions).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["first_primes", "primes_at_least", "CRPrecis"]


def _is_prime(candidate: int) -> bool:
    if candidate < 2:
        return False
    if candidate in (2, 3):
        return True
    if candidate % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= candidate:
        if candidate % divisor == 0:
            return False
        divisor += 2
    return True


def first_primes(count: int) -> List[int]:
    """Return the first ``count`` primes (2, 3, 5, ...)."""
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    primes: List[int] = []
    candidate = 2
    while len(primes) < count:
        if _is_prime(candidate):
            primes.append(candidate)
        candidate += 1
    return primes


def primes_at_least(count: int, lower_bound: int) -> List[int]:
    """Return the first ``count`` primes that are ``>= lower_bound``."""
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if lower_bound < 2:
        lower_bound = 2
    primes: List[int] = []
    candidate = lower_bound
    while len(primes) < count:
        if _is_prime(candidate):
            primes.append(candidate)
        candidate += 1
    return primes


class CRPrecis:
    """Deterministic frequency summary over rows of prime-modulus counters."""

    def __init__(self, primes: Sequence[int]) -> None:
        if not primes:
            raise ConfigurationError("CR-precis needs at least one prime row")
        unique = sorted(set(int(p) for p in primes))
        if len(unique) != len(primes):
            raise ConfigurationError("CR-precis primes must be distinct")
        for prime in unique:
            if not _is_prime(prime):
                raise ConfigurationError(f"{prime} is not prime")
        self.primes = unique
        self._rows = [np.zeros(prime, dtype=np.int64) for prime in unique]
        self._total = 0

    @classmethod
    def from_epsilon(
        cls, epsilon: float, universe_size: int, rows: Optional[int] = None
    ) -> "CRPrecis":
        """Size the structure per Appendix H for additive error ``eps * F1 / 3``.

        Uses ``rows = ceil(3 / eps)`` rows (unless overridden) of primes at
        least ``(6 log2 |U|) / (eps log2(1/eps))``.
        """
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if universe_size < 2:
            raise ConfigurationError(f"universe_size must be >= 2, got {universe_size}")
        row_count = rows if rows is not None else int(math.ceil(3.0 / epsilon))
        if row_count < 1:
            raise ConfigurationError(f"rows must be >= 1, got {row_count}")
        denominator = epsilon * max(math.log2(1.0 / epsilon), 1.0)
        minimum_prime = int(math.ceil(6.0 * math.log2(universe_size) / denominator))
        return cls(primes_at_least(row_count, minimum_prime))

    @property
    def total(self) -> int:
        """Sum of all updates applied."""
        return self._total

    def size_in_counters(self) -> int:
        """Total number of counters held (sum of the prime row sizes)."""
        return sum(self.primes)

    def update(self, item: int, delta: int = 1) -> None:
        """Apply ``f_item += delta``."""
        if item < 0:
            raise ConfigurationError(f"items must be non-negative integers, got {item}")
        for row, prime in enumerate(self.primes):
            self._rows[row][item % prime] += delta
        self._total += delta

    def estimate(self, item: int) -> int:
        """Point estimate via the row minimum (insert-only streams)."""
        return int(min(self._rows[row][item % prime] for row, prime in enumerate(self.primes)))

    def estimate_average(self, item: int) -> float:
        """Point estimate via the row average (linear; valid under deletions)."""
        values = [self._rows[row][item % prime] for row, prime in enumerate(self.primes)]
        return float(np.mean(values))

    def merge(self, other: "CRPrecis") -> "CRPrecis":
        """Return the summary of the concatenated streams (same primes required)."""
        if self.primes != other.primes:
            raise ConfigurationError("can only merge CR-precis structures with equal primes")
        merged = CRPrecis(self.primes)
        merged._rows = [a + b for a, b in zip(self._rows, other._rows)]
        merged._total = self._total + other._total
        return merged
