"""E6 (Section 3.4): the randomized tracker's guarantee and message cost.

Paper claims: at every timestep ``P(|f - fhat| > eps |f|) < 1/3``, and the
expected number of messages is ``O((k + sqrt(k)/eps) v(n))`` — i.e. a
``sqrt(k)`` improvement over the deterministic tracker's estimation traffic,
which shows up once ``k`` is large.  The benchmark sweeps ``k``, reports the
violation fraction and the estimation-message counts of both trackers, and
checks the crossover.
"""

import pytest

from repro.analysis.bounds import randomized_message_bound
from repro.core import DeterministicCounter, RandomizedCounter, variability
from repro.monitoring.messages import MessageKind
from repro.streams import assign_sites, biased_walk_stream

N = 30_000
EPSILON = 0.2
SITE_COUNTS = [4, 16, 64]


def _estimation_messages(factory, updates):
    network = factory.build_network()
    network.channel.enable_log()
    for update in updates:
        network.deliver_update(update.time, update.site, update.delta)
    estimation = sum(
        1
        for message in network.channel.log
        if message.kind is MessageKind.REPORT and "count" not in message.payload
    )
    return estimation, network.stats.messages


def _measure():
    spec = biased_walk_stream(N, drift=0.7, seed=31)
    v = variability(spec.deltas)
    rows = []
    for num_sites in SITE_COUNTS:
        updates = assign_sites(spec, num_sites)
        randomized = RandomizedCounter(num_sites, EPSILON, seed=32)
        deterministic = DeterministicCounter(num_sites, EPSILON)
        random_result = randomized.track(updates, record_every=7)
        rand_est, rand_total = _estimation_messages(
            RandomizedCounter(num_sites, EPSILON, seed=33), updates
        )
        det_est, det_total = _estimation_messages(deterministic, updates)
        rows.append(
            [
                num_sites,
                round(v, 1),
                round(random_result.violation_fraction(EPSILON), 4),
                rand_est,
                det_est,
                rand_total,
                det_total,
                round(randomized_message_bound(num_sites, EPSILON, v), 0),
            ]
        )
    return rows


def test_bench_e06_randomized_tracker(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        f"E6 / Section 3.4 — randomized tracker (eps = {EPSILON}, biased walk, n = {N})",
        [
            "k",
            "v(n)",
            "violation frac",
            "rand est msgs",
            "det est msgs",
            "rand total",
            "det total",
            "rand bound",
        ],
        rows,
    )
    for row in rows:
        num_sites, v, violations, rand_est, det_est, rand_total, det_total, bound = row
        # Correctness: violations stay below the paper's 1/3 (empirically far below).
        assert violations < 1.0 / 3.0
        # Expected-communication bound with slack for a single run.
        assert rand_total <= 2.0 * bound
    # The sqrt(k) advantage appears at large k: estimation traffic of the
    # randomized tracker drops below the deterministic tracker's.
    largest = rows[-1]
    assert largest[3] < largest[4]
