"""Shared helpers for the benchmark/experiment harness.

Every benchmark module reproduces one experiment from EXPERIMENTS.md (the
paper is a theory paper, so its "tables and figures" are its theorems; each
benchmark regenerates the measured-versus-predicted series for one of them).
Benchmarks both *time* a representative workload (via pytest-benchmark) and
*print* the reproduced table, and they assert the qualitative shape the paper
proves so that a regression in the algorithms is caught here too.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table


def emit(title: str, headers, rows) -> None:
    """Print one experiment table in a uniform format."""
    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))


@pytest.fixture(scope="session")
def table_printer():
    """Fixture handing benchmarks the shared table emitter."""
    return emit
