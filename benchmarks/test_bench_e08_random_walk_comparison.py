"""E8 (Section 2 remarks, Liu et al.): random-walk inputs.

Paper claim: for fair coin flips the worst-case-in-v bounds specialise to
``O((sqrt(k)/eps) sqrt(n) log n)`` expected messages — the same regime as the
algorithms of Liu et al. — while additionally giving a guarantee at *every*
timestep instead of a distributional one.  The benchmark compares the paper's
trackers, the Liu-style sampling baseline and the naive forwarder on fair
random walks, and also on a drifting walk where variability collapses and the
paper's trackers pull far ahead.
"""

import math

import pytest

from repro.analysis import compare_trackers
from repro.analysis.bounds import liu_fair_coin_message_bound
from repro.baselines import LiuStyleCounter, NaiveCounter
from repro.core import DeterministicCounter, RandomizedCounter
from repro.streams import biased_walk_stream, random_walk_stream

N = 40_000
NUM_SITES = 4
EPSILON = 0.2


def _rows_for(spec, label):
    comparisons = compare_trackers(
        {
            "naive": NaiveCounter(NUM_SITES),
            "liu-style sampling": LiuStyleCounter(NUM_SITES, EPSILON, seed=51),
            "paper deterministic": DeterministicCounter(NUM_SITES, EPSILON),
            "paper randomized": RandomizedCounter(NUM_SITES, EPSILON, seed=52),
        },
        spec,
        num_sites=NUM_SITES,
        epsilon=EPSILON,
        record_every=11,
    )
    return [
        [
            label,
            c.name,
            c.messages,
            round(c.messages / spec.length, 3),
            round(c.violation_fraction, 4),
            round(c.variability, 1),
        ]
        for c in comparisons
    ]


def _measure():
    fair = random_walk_stream(N, seed=53)
    drifting = biased_walk_stream(N, drift=0.5, seed=54)
    return _rows_for(fair, "fair walk") + _rows_for(drifting, "drifting walk")


def test_bench_e08_random_walk_comparison(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        f"E8 — random-walk inputs, k = {NUM_SITES}, eps = {EPSILON}, n = {N}",
        ["input", "algorithm", "messages", "msgs/update", "violation frac", "v(n)"],
        rows,
    )
    fair = {row[1]: row for row in rows if row[0] == "fair walk"}
    drifting = {row[1]: row for row in rows if row[0] == "drifting walk"}
    # On the fair walk: the sampling baseline is sub-linear and roughly in the
    # sqrt(n) regime; the paper's trackers keep a per-step guarantee.
    assert fair["liu-style sampling"][2] < N
    assert fair["liu-style sampling"][2] <= 10 * liu_fair_coin_message_bound(NUM_SITES, EPSILON, N)
    assert fair["paper deterministic"][4] == 0.0
    assert fair["paper randomized"][4] < 1.0 / 3.0
    # Liu-style sampling violates its target at a nonzero rate near f ~ 0.
    assert fair["liu-style sampling"][4] > 0.0
    # On the drifting walk variability collapses: the paper's deterministic
    # tracker beats naive by a wide margin while keeping zero violations.
    assert drifting["paper deterministic"][2] < 0.3 * drifting["naive"][2]
    assert drifting["paper deterministic"][4] == 0.0
    # Variability of the drifting walk is far below the fair walk's.
    assert drifting["naive"][5] < fair["naive"][5] / 3
