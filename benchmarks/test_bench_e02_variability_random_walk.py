"""E2 (Theorem 2.2): expected variability of symmetric random walks.

Paper claim: for i.i.d. fair ``+-1`` increments, ``E[v(n)] = O(sqrt(n) log n)``.
The benchmark sweeps ``n``, averages the measured variability over several
seeds, reports it next to the ``sqrt(n) log n`` bound, and checks the growth
shape sits in the sqrt family rather than the linear one.
"""

import math

import pytest

from repro.analysis import fit_growth, repeat_variability
from repro.analysis.bounds import random_walk_variability_bound
from repro.streams import random_walk_stream

LENGTHS = [2_000, 8_000, 32_000, 128_000]
TRIALS = 5


def _measure():
    rows = []
    means = []
    for n in LENGTHS:
        stats = repeat_variability(
            lambda seed, n=n: random_walk_stream(n, seed=seed), trials=TRIALS, seed=1_000
        )
        means.append(stats["mean"])
        rows.append(
            [
                n,
                round(stats["mean"], 1),
                round(stats["std"], 1),
                round(random_walk_variability_bound(n), 1),
                round(stats["mean"] / math.sqrt(n), 3),
                round(stats["mean"] / n, 4),
            ]
        )
    return rows, means


def test_bench_e02_variability_random_walk(benchmark, table_printer):
    rows, means = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        "E2 / Theorem 2.2 — E[v(n)] for fair coin flips",
        ["n", "mean v", "std", "sqrt(n)log n bound", "v/sqrt(n)", "v/n"],
        rows,
    )
    # Within the bound (up to a small constant, since the paper's statement is
    # big-O) at every length, and clearly sub-linear:
    for row, n in zip(rows, LENGTHS):
        assert row[1] <= 2.0 * random_walk_variability_bound(n)
        assert row[1] >= 0.5 * math.sqrt(n)
        assert row[1] <= 0.25 * n
    # The normalised ratio v/n shrinks as n grows (sub-linearity).
    ratios = [row[5] for row in rows]
    assert ratios == sorted(ratios, reverse=True)
    fit = fit_growth(LENGTHS, means)
    assert fit.best_shape in ("sqrt", "sqrt_log")
