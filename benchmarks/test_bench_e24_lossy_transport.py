"""E24 (faults): message cost versus accuracy as the network loses messages.

The paper's guarantee is proved over a lossless instant-delivery network;
the fault subsystem (:mod:`repro.faults`) measures what survives when links
drop messages and the ARQ layer retransmits them.  The naive block protocol
carries a latent bug that loss amplifies: a site zeroes its per-block drift
when a close's BROADCAST lands, silently discarding whatever arrived in the
reply-to-broadcast gap — under retransmission-scale delays that gap is
wide, and the coordinator's boundary drifts further from the truth with
every close.  The sequence-numbered repair (``transport.repair``) subtracts
exactly what the site replied instead, so the gap drift rides the next
REPLY into the boundary.

This benchmark sweeps i.i.d. loss 0 → 20% for naive versus repaired closes
over three topologies — the zero-latency sync-equivalent baseline, the flat
asynchronous network with jitter, and a 3-level tree — and reports exact
message/violation accounting per cell.  Scenarios are declared as
:class:`repro.api.RunSpec` values, the vocabulary ``repro run --config``
and ``python -m repro latency --loss`` execute.

Pinned shapes:

* accounting is conserved at any size: after the drain every cell satisfies
  ``retransmitted == dropped + duplicates``, and lossless cells carry zero
  reliability traffic;
* (full scale) the naive protocol *degrades*: at 20% loss its violation
  fraction rises far above its lossless baseline;
* (full scale) the repair *holds*: its violation fraction at 20% loss stays
  within noise of lossless, while spending no more messages than the naive
  protocol's bias-inflated traffic.
"""

from bench_support import check, size

from repro.api import RunSpec, SourceSpec, Sweep, TopologySpec, TrackerSpec, TransportSpec

LENGTH = size(20_000, 2_000)
NUM_SITES = 8
EPSILON = 0.1
LOSSES = [0.0, 0.05, 0.1, 0.2]
RECORD_EVERY = 20
#: Uniform jitter on [0.275, 0.825] — small against the 4-unit base RTO, so
#: the lossless baselines track tightly and the loss axis owns the damage.
JITTER_SCALE = 0.55

TOPOLOGIES = (
    ("baseline", dict(scale=0.0), TopologySpec()),
    ("flat", dict(scale=JITTER_SCALE), TopologySpec()),
    ("tree3", dict(scale=JITTER_SCALE), TopologySpec(levels=3, fanout=2)),
)


def _spec(transport_overrides, topology, repair) -> RunSpec:
    return RunSpec(
        source=SourceSpec(
            stream="oscillating",
            length=LENGTH,
            seed=11,
            sites=NUM_SITES,
            params={"target": 400},
        ),
        tracker=TrackerSpec(name="deterministic", epsilon=EPSILON),
        topology=topology,
        transport=TransportSpec(
            mode="async",
            latency="uniform",
            seed=3,
            loss_seed=5,
            repair=repair,
            **transport_overrides,
        ),
        engine="per-update",
        record_every=RECORD_EVERY,
    )


def _measure():
    cells = {}
    for name, transport, topology in TOPOLOGIES:
        for repair in (False, True):
            base = _spec(transport, topology, repair)
            for point in Sweep(base, {"transport.loss": LOSSES}).run():
                loss = point.overrides["transport.loss"]
                cells[(name, repair, loss)] = point.result
    return cells


def test_bench_e24_lossy_transport(benchmark, table_printer):
    cells = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for (name, repair, loss), result in sorted(
        cells.items(), key=lambda item: (item[0][0], item[0][1], item[0][2])
    ):
        summary = result.summary(EPSILON)
        reliability = summary["reliability"]
        rows.append(
            [
                name,
                "repaired" if repair else "naive",
                loss,
                summary["total_messages"],
                summary["total_bits"],
                reliability["dropped"],
                reliability["retransmitted"],
                reliability["duplicates"],
                round(summary["violation_fraction"], 4),
            ]
        )
    table_printer(
        "E24 / faults — loss rate vs messages and accuracy, naive vs "
        f"repaired closes (oscillating walk, n={LENGTH}, k={NUM_SITES}, "
        f"eps={EPSILON})",
        [
            "topology",
            "closes",
            "loss",
            "messages",
            "bits",
            "dropped",
            "retransmitted",
            "duplicates",
            "violation frac",
        ],
        rows,
    )
    # Structural at any size: exact accounting conservation per cell.
    for (name, repair, loss), result in cells.items():
        label = f"{name}/{'repaired' if repair else 'naive'}/loss={loss}"
        assert result.retransmitted == result.dropped + result.duplicates, label
        if loss == 0.0:
            assert (result.dropped, result.retransmitted, result.duplicates) == (
                0, 0, 0,
            ), label
        else:
            assert result.dropped > 0, label

    def violation(name, repair, loss):
        return cells[(name, repair, loss)].violation_fraction(EPSILON)

    # Quantitative shapes need the full-scale parameters.
    for name in ("baseline", "flat", "tree3"):
        naive_lossless = violation(name, False, 0.0)
        naive_lossy = violation(name, False, 0.2)
        repaired_lossless = violation(name, True, 0.0)
        repaired_lossy = violation(name, True, 0.2)
        check(
            naive_lossy > naive_lossless + 0.2,
            f"{name}: naive protocol should degrade under 20% loss "
            f"({naive_lossless} -> {naive_lossy})",
        )
        check(
            repaired_lossy <= repaired_lossless + 0.05,
            f"{name}: repaired protocol should stay flat under 20% loss "
            f"({repaired_lossless} -> {repaired_lossy})",
        )
    check(
        cells[("flat", True, 0.2)].total_messages
        <= cells[("flat", False, 0.2)].total_messages,
        "the naive protocol's boundary bias should inflate its traffic at "
        "least to the repaired protocol's level",
    )
