"""E1 (Theorem 2.1): variability of monotone and nearly monotone streams.

Paper claim: monotone streams have ``v(n) = O(log f(n))``; nearly monotone
streams (deletions bounded by ``beta f(n)``) have
``v(n) = O(beta log(beta f(n)))``.  The benchmark sweeps the stream length,
reports measured variability next to the closed-form bound, and checks that
the measured growth fits a logarithmic shape (and not a polynomial one).
"""

import pytest

from repro.analysis import fit_growth
from repro.analysis.bounds import monotone_variability_bound, nearly_monotone_variability_bound
from repro.core import variability
from repro.streams import database_size_trace, monotone_stream, nearly_monotone_stream

LENGTHS = [1_024, 4_096, 16_384, 65_536, 262_144]


def _measure():
    rows = []
    monotone_values = []
    nearly_values = []
    for n in LENGTHS:
        v_monotone = variability(monotone_stream(n).deltas)
        nearly = nearly_monotone_stream(n, deletion_fraction=0.25, seed=1)
        v_nearly = variability(nearly.deltas)
        trace = database_size_trace(n, seed=2)
        v_trace = variability(trace.deltas)
        monotone_values.append(v_monotone)
        nearly_values.append(v_nearly)
        rows.append(
            [
                n,
                round(v_monotone, 2),
                round(monotone_variability_bound(n), 2),
                round(v_nearly, 2),
                round(nearly_monotone_variability_bound(1.0, max(nearly.final_value(), 2)), 2),
                round(v_trace, 2),
            ]
        )
    return rows, monotone_values, nearly_values


def test_bench_e01_variability_monotone(benchmark, table_printer):
    rows, monotone_values, nearly_values = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    table_printer(
        "E1 / Theorem 2.1 — variability of (nearly) monotone streams",
        ["n", "v monotone", "bound 1+ln f", "v nearly-mono", "bound beta=1", "v db trace"],
        rows,
    )
    # Monotone variability is within the closed-form bound at every length.
    for row in rows:
        assert row[1] <= row[2]
        assert row[3] <= row[4]
    # The measured shape is logarithmic, not polynomial, in n.
    fit = fit_growth(LENGTHS, monotone_values)
    assert fit.best_shape == "log"
    nearly_fit = fit_growth(LENGTHS, nearly_values)
    assert nearly_fit.best_shape == "log"
    assert not nearly_fit.shape_is_consistent("linear", tolerance=0.1)
