"""E13 (Appendix C): simulating large updates with unit updates.

Paper claim: an update ``|f'(n)| > 1`` can be replaced by ``|f'(n)|`` unit
updates at an ``O(log max |f'|)`` multiplicative overhead in variability
(Theorem C.1 bounds the per-jump cost by a harmonic-number term for positive
jumps and a constant factor for negative ones).  The benchmark expands bursty
integer streams with growing jump sizes, measures the variability before and
after expansion, and compares against the closed-form per-jump bounds.
"""

import numpy as np
import pytest

from repro.core import expand_stream, variability
from repro.core.expansion import expansion_variability_overhead, harmonic_number
from repro.streams.model import StreamSpec

JUMP_SCALES = [2, 8, 32, 128]
STEPS = 2_000


def _jumpy_stream(scale, seed):
    """A stream of mostly-positive jumps of magnitude about ``scale``."""
    rng = np.random.default_rng(seed)
    deltas = []
    value = 0
    for _ in range(STEPS):
        magnitude = int(rng.integers(1, scale + 1))
        sign = 1 if value < magnitude or rng.random() < 0.7 else -1
        delta = sign * magnitude
        value += delta
        deltas.append(delta)
    return StreamSpec(name=f"jumpy_{scale}", deltas=tuple(deltas))


def _per_jump_bound_total(spec):
    total = 0.0
    value = 0
    for delta in spec.deltas:
        total += expansion_variability_overhead(value, delta)
        value += delta
    return total


def _measure():
    rows = []
    for scale in JUMP_SCALES:
        spec = _jumpy_stream(scale, seed=80 + scale)
        expanded = expand_stream(spec)
        original_v = variability(spec.deltas)
        expanded_v = variability(expanded.deltas)
        bound = _per_jump_bound_total(spec)
        rows.append(
            [
                scale,
                spec.length,
                expanded.length,
                round(original_v, 1),
                round(expanded_v, 1),
                round(bound, 1),
                round(expanded_v / max(original_v, 1e-9), 2),
                round(1.0 + harmonic_number(scale), 2),
            ]
        )
    return rows


def test_bench_e13_large_updates(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        "E13 / Appendix C — expanding large updates to unit updates",
        [
            "max |f'|",
            "n original",
            "n expanded",
            "v original",
            "v expanded",
            "per-jump bound",
            "inflation",
            "1 + H(max |f'|)",
        ],
        rows,
    )
    for row in rows:
        scale, n_orig, n_exp, v_orig, v_exp, bound, inflation, harmonic_factor = row
        # The expansion preserves the trajectory but lengthens the stream.
        assert n_exp >= n_orig
        # Measured expanded variability is within the Theorem C.1 per-jump bound.
        assert v_exp <= bound + 1e-6
        # The inflation factor stays within the O(log max |f'|) regime
        # (a constant times 1 + H(max|f'|)).
        assert inflation <= 3.0 * harmonic_factor
    # Inflation grows (at most logarithmically) with the jump scale.
    inflations = [row[6] for row in rows]
    assert inflations[-1] <= 3.0 * (1.0 + harmonic_number(JUMP_SCALES[-1]))
