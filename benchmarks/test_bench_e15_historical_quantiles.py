"""E15 (extension; Tao et al. connection): historical quantile summaries.

The paper restates Tao et al.'s bounds for summarising the order-statistics
history of an insert/delete dataset in terms of the ``|D|``-variability:
``Omega(v/eps)`` space is necessary and ``~(1/eps) polylog(1/eps) v`` is
achievable.  This extension experiment drives the checkpointing tracker of
:mod:`repro.core.history_quantiles` over datasets of very different
variability but equal length, and shows that the retained summary scales with
``v``, not with the stream length, while historical quantile queries stay
within the ``eps |D(t)|`` rank-error budget.
"""

import numpy as np
import pytest

from repro.core.history_quantiles import HistoricalQuantileTracker, ValueUpdate

N = 20_000
EPSILON = 0.1


def _insert_heavy(seed):
    """Mostly-growing dataset: low |D|-variability."""
    rng = np.random.default_rng(seed)
    live, updates = [], []
    for _ in range(N):
        if live and rng.random() < 0.15:
            value = live.pop(int(rng.integers(0, len(live))))
            updates.append(ValueUpdate(value=value, delta=-1))
        else:
            value = float(rng.integers(0, 100_000))
            live.append(value)
            updates.append(ValueUpdate(value=value, delta=+1))
    return updates


def _churning(seed, ceiling=100):
    """Dataset that hovers around ``ceiling`` under heavy churn: high |D|-variability."""
    rng = np.random.default_rng(seed)
    live, updates = [], []
    for _ in range(N):
        delete_probability = 0.75 if len(live) >= ceiling else 0.05
        if live and rng.random() < delete_probability:
            value = live.pop(int(rng.integers(0, len(live))))
            updates.append(ValueUpdate(value=value, delta=-1))
        else:
            value = float(rng.integers(0, 100_000))
            live.append(value)
            updates.append(ValueUpdate(value=value, delta=+1))
    return updates


def _dataset_at(updates, time):
    values = []
    for update in updates[:time]:
        if update.delta > 0:
            values.append(update.value)
        else:
            values.remove(update.value)
    return sorted(values)


def _max_rank_error_ratio(tracker, updates, query_times):
    worst = 0.0
    for time in query_times:
        dataset = _dataset_at(updates, time)
        size = len(dataset)
        if size == 0:
            continue
        for phi in (0.25, 0.5, 0.75):
            rank = max(1, int(np.ceil(phi * size)))
            answer = tracker.query_rank(time, rank)
            low = np.searchsorted(dataset, answer, side="left") + 1
            high = np.searchsorted(dataset, answer, side="right")
            error = 0 if low <= rank <= high else min(abs(rank - low), abs(rank - high))
            worst = max(worst, error / size)
    return worst


def _measure():
    rows = []
    workloads = {"insert-heavy (low v)": _insert_heavy(1), "churning (high v)": _churning(2)}
    for name, updates in workloads.items():
        tracker = HistoricalQuantileTracker(epsilon=EPSILON)
        tracker.update_many(updates)
        query_times = list(range(N // 10, N + 1, N // 10))
        error_ratio = _max_rank_error_ratio(tracker, updates, query_times)
        rows.append(
            [
                name,
                N,
                round(tracker.variability, 1),
                len(tracker.checkpoints),
                tracker.summary_size_values(),
                round(tracker.summary_size_values() / N, 3),
                round(error_ratio, 4),
            ]
        )
    return rows


def test_bench_e15_historical_quantiles(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        f"E15 — historical quantile summaries (n = {N}, eps = {EPSILON})",
        [
            "workload",
            "n",
            "|D|-variability",
            "checkpoints",
            "summary values",
            "summary/n",
            "max rank err / |D|",
        ],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    low_v = by_name["insert-heavy (low v)"]
    high_v = by_name["churning (high v)"]
    for row in rows:
        # Historical queries stay within ~eps |D(t)| rank error.
        assert row[6] <= 2 * EPSILON + 1e-9
        # Checkpoints are bounded by 2 v / eps + 1.
        assert row[3] <= 2 * row[2] / EPSILON + 1
    # The summary scales with variability, not with n: the low-variability
    # workload retains a summary far smaller than the stream, and the churning
    # workload's summary grows in proportion to its (much larger) variability.
    assert low_v[4] < 0.5 * N
    assert high_v[2] > 10 * low_v[2]
    assert high_v[4] > 5 * low_v[4]
