"""E16 (extension; Section 2 context): thresholded monitoring via continuous tracking.

The original distributed-monitoring problem of Cormode et al. is thresholded:
report whether ``f >= tau`` or ``f <= (1 - eps) tau``.  A continuous tracker
with relative error ``eps/3`` answers every threshold simultaneously, which is
the reduction :mod:`repro.core.threshold` implements.  The experiment sweeps
thresholds over growing and oscillating streams and verifies that no decision
violates the promise, while the underlying communication remains the tracker's
``O(k v / eps)``.
"""

import pytest

from repro.core import DeterministicCounter, ThresholdMonitor, variability
from repro.streams import assign_sites, biased_walk_stream, database_size_trace, sawtooth_stream

N = 30_000
NUM_SITES = 4
EPSILON = 0.3

STREAMS = {
    "biased_walk": lambda: biased_walk_stream(N, drift=0.5, seed=101),
    "db_trace": lambda: database_size_trace(N, seed=102),
    "sawtooth": lambda: sawtooth_stream(N, amplitude=500),
}


def _measure():
    rows = []
    monitor = ThresholdMonitor(EPSILON)
    for name, make in STREAMS.items():
        spec = make()
        v = variability(spec.deltas)
        tracker = DeterministicCounter(NUM_SITES, monitor.tracker_epsilon())
        result = tracker.track(assign_sites(spec, NUM_SITES), record_every=9)
        peak = max(abs(value) for value in spec.values())
        thresholds = [max(1, int(peak * fraction)) for fraction in (0.1, 0.25, 0.5, 0.75, 1.0)]
        violations = monitor.sweep(result, thresholds)
        alert_counts = [len(monitor.alerts(result, threshold)) for threshold in thresholds]
        rows.append(
            [
                name,
                round(v, 1),
                result.total_messages,
                len(thresholds),
                sum(violations),
                sum(alert_counts),
            ]
        )
    return rows


def test_bench_e16_threshold_monitoring(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        f"E16 — thresholded monitoring on top of the tracker (k = {NUM_SITES}, eps = {EPSILON})",
        ["stream", "v(n)", "tracker messages", "thresholds", "violations", "alerts"],
        rows,
    )
    for row in rows:
        name, v, messages, thresholds, violations, alerts = row
        # No decision ever violates the (k, f, tau, eps) promise.
        assert violations == 0
        # At least the crossing of the smallest thresholds fires an alert.
        assert alerts >= 1
    # The oscillating stream produces repeated fire/clear alert cycles.
    by_name = {row[0]: row for row in rows}
    assert by_name["sawtooth"][5] > by_name["biased_walk"][5]
