"""E14 (ablation): what the block partition buys.

DESIGN.md calls out the block partition (Section 3.1) as the design choice
that converts a fixed additive-threshold protocol into one with a relative
guarantee.  The ablation replaces the adaptive per-block threshold
``eps * 2^r`` with a fixed site threshold ``T`` (no blocks, no
re-synchronisation) and shows that every fixed choice of ``T`` either loses
the guarantee (large ``T``) or degenerates to one message per update
(``T = 1``), while the paper's tracker gets both.
"""

import pytest

from repro.baselines import StaticThresholdCounter
from repro.core import DeterministicCounter, variability
from repro.streams import assign_sites, biased_walk_stream

N = 30_000
NUM_SITES = 4
EPSILON = 0.1
THRESHOLDS = [1, 4, 16, 64, 256]


def _measure():
    spec = biased_walk_stream(N, drift=0.5, seed=91)
    updates = assign_sites(spec, NUM_SITES)
    v = variability(spec.deltas)
    rows = []
    for threshold in THRESHOLDS:
        result = StaticThresholdCounter(NUM_SITES, threshold, epsilon=EPSILON).track(
            updates, record_every=9
        )
        rows.append(
            [
                f"static T={threshold}",
                result.total_messages,
                round(result.total_messages / N, 3),
                round(result.max_relative_error(), 4),
                round(result.violation_fraction(EPSILON), 4),
            ]
        )
    adaptive = DeterministicCounter(NUM_SITES, EPSILON).track(updates, record_every=9)
    rows.append(
        [
            "adaptive blocks (paper)",
            adaptive.total_messages,
            round(adaptive.total_messages / N, 3),
            round(adaptive.max_relative_error(), 4),
            round(adaptive.violation_fraction(EPSILON), 4),
        ]
    )
    return rows, v


def test_bench_e14_ablation_blocks(benchmark, table_printer):
    rows, v = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        f"E14 — ablation of the block partition (k = {NUM_SITES}, eps = {EPSILON}, v = {v:.0f})",
        ["tracker", "messages", "msgs/update", "max rel err", "violation frac"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    adaptive = by_name["adaptive blocks (paper)"]
    # The paper's tracker keeps the guarantee.
    assert adaptive[3] <= EPSILON + 1e-9
    # Exhaustive static sweep: every threshold either loses the guarantee or
    # pays ~1 message per update (T = 1 is exact but maximally chatty).
    for threshold in THRESHOLDS:
        row = by_name[f"static T={threshold}"]
        exact_but_chatty = row[2] >= 0.9
        violates = row[4] > 0.0
        assert exact_but_chatty or violates
    # And the adaptive tracker is cheaper than the only static setting that
    # preserves correctness (T = 1, i.e. naive forwarding per site).
    assert adaptive[1] < by_name["static T=1"][1]
