"""E20 (engine): multi-block fast-forwarding at small ``k``.

E17's bottleneck rows are small site counts at low block levels: with
``k = 4`` near ``f = 0`` a block is only ~4 updates long, so the seed
batched engine spent most of its time simulating block closes one at a time
(one Python-level ``fast_close_step`` plus a tiny estimation span per
block).  The span kernel's multi-block fast-forward
(:meth:`repro.engine.SpanKernel.fast_forward_closes`) computes whole runs of
consecutive same-level closes in closed form instead.

This benchmark reruns the E17 sweep parameters at small ``k`` twice through
the batched engine — fast-forward ON (the default) versus OFF (bit-for-bit
the seed single-close engine) — and reports both ratios against per-update
dispatch.  The ON/OFF runs must agree on every counter (structural assert,
any scale); the quantitative claim is that fast-forwarding makes the
batched engine strictly faster on the k = 4 rows that motivated it.

A second sweep drives the *cross-level* regime: a biased walk whose block
closes climb the level ladder mid-run.  These rows used to cut the
fast-forward window at every level change and replay per update; the close
ladder (``_close_ladder``) now walks the whole level schedule in closed
form, so cross-level throughput must stay within 2x of the same-level rows
above — the ROADMAP's "level-crossing rows no longer regress to fallback
speed" target.

A third sweep drives the *descent* regime: an oscillating mean-reverting
walk whose block closes go **down** the level ladder as often as up.  The
monotone close ladder handled those schedules correctly but probed each
stretch with the full remaining progression (O(stretches x length) gathered
candidates) and charged every cross-level window through a per-stretch
Python loop.  The descent-capable kernel (``SpanKernel(descent=True)``, the
default) probes in bounded adaptive chunks and collapses all-dense windows
into one vectorised rebase — ``SpanKernel(descent=False)`` is that older
ladder, kept as the bit-for-bit A/B control these rows race against.
"""

import time

from bench_support import check, size

from repro.api import RunSpec, SourceSpec, TopologySpec, TrackerSpec
from repro.engine import SpanKernel

SWEEP_N = size(150_000, 10_000)
SITE_COUNTS = [2, 4, 8]
EPSILON = 0.1
BLOCK_LENGTH = 4_096
RECORD_EVERY = 20_000
SEED = 31  # the E17 stream seed, so rows are comparable across benchmarks


def _fingerprint(result):
    return (
        [(r.time, r.true_value, r.estimate, r.messages, r.bits) for r in result.records],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


def _base_spec(num_sites: int, tracker: str, stream: str = "random_walk", **params) -> RunSpec:
    """The E20 scenario, declared once; the engine axis varies per run."""
    return RunSpec(
        source=SourceSpec(
            stream=stream,
            length=SWEEP_N,
            seed=SEED,
            sites=num_sites,
            assignment="blocked",
            assignment_params={"block_length": BLOCK_LENGTH},
            params=params,
        ),
        tracker=TrackerSpec(name=tracker, epsilon=EPSILON, seed=5),
        topology=TopologySpec(shards=1),
        engine="batched",
        record_every=RECORD_EVERY,
    )


def _timed_run(spec, kernel=None):
    built = spec.build()
    if kernel is not None:
        for site in built.network.sites:
            site.span_kernel = kernel
    begin = time.perf_counter()
    result = built.run()
    return time.perf_counter() - begin, result


def _measure():
    rows = []
    single_close = SpanKernel(fast_forward=False)
    for num_sites in SITE_COUNTS:
        for name in ("deterministic", "randomized"):
            base = _base_spec(num_sites, name)
            slow_seconds, slow = _timed_run(
                base.with_overrides({"engine": "per-update"})
            )
            seed_seconds, seed_result = _timed_run(base, single_close)
            fast_seconds, fast = _timed_run(base)
            # Fast-forwarding must be invisible in every counter, at any
            # scale — the speed is the only thing allowed to change.
            assert _fingerprint(slow) == _fingerprint(seed_result) == _fingerprint(fast)
            rows.append(
                [
                    name,
                    num_sites,
                    SWEEP_N,
                    round(SWEEP_N / slow_seconds),
                    round(SWEEP_N / seed_seconds),
                    round(SWEEP_N / fast_seconds),
                    round(slow_seconds / seed_seconds, 2),
                    round(slow_seconds / fast_seconds, 2),
                    round(seed_seconds / fast_seconds, 2),
                ]
            )
    return rows


def _measure_cross_level():
    """Fast-forward throughput when block closes climb levels mid-run."""
    rows = []
    for num_sites in SITE_COUNTS:
        for name in ("deterministic", "randomized"):
            base = _base_spec(num_sites, name, stream="biased_walk", drift=0.6)
            slow_seconds, slow = _timed_run(
                base.with_overrides({"engine": "per-update"})
            )
            fast_seconds, fast = _timed_run(base)
            assert _fingerprint(slow) == _fingerprint(fast)
            rows.append(
                [
                    name,
                    num_sites,
                    SWEEP_N,
                    round(SWEEP_N / slow_seconds),
                    round(SWEEP_N / fast_seconds),
                    round(slow_seconds / fast_seconds, 2),
                ]
            )
    return rows


def _measure_descent():
    """Throughput when the level schedule oscillates — descends, not just climbs.

    The oscillating stream's mean reversion (``target=24, pull=0.12``) keeps
    the running value crossing band edges in both directions, so consecutive
    block closes form long up-down level schedules.  Three engines race on
    identical workloads: per-update dispatch, the PR-8 monotone ladder
    (``SpanKernel(descent=False)``) and the descent-capable default — all
    three must agree on every counter.
    """
    rows = []
    monotone_ladder = SpanKernel(descent=False)
    for num_sites in SITE_COUNTS:
        for name in ("deterministic", "randomized"):
            base = _base_spec(
                num_sites, name, stream="oscillating", target=24, pull=0.12
            )
            slow_seconds, slow = _timed_run(
                base.with_overrides({"engine": "per-update"})
            )
            control_seconds, control = _timed_run(base, monotone_ladder)
            fast_seconds, fast = _timed_run(base)
            assert _fingerprint(slow) == _fingerprint(control) == _fingerprint(fast)
            rows.append(
                [
                    name,
                    num_sites,
                    SWEEP_N,
                    round(SWEEP_N / slow_seconds),
                    round(SWEEP_N / control_seconds),
                    round(SWEEP_N / fast_seconds),
                    round(slow_seconds / fast_seconds, 2),
                    round(control_seconds / fast_seconds, 2),
                ]
            )
    return rows


def _both():
    return _measure(), _measure_cross_level(), _measure_descent()


def test_bench_e20_multiblock_fastforward(benchmark, table_printer):
    rows, cross_rows, descent_rows = benchmark.pedantic(_both, rounds=1, iterations=1)
    table_printer(
        "E20 / engine — multi-block fast-forward vs single-close batched "
        "(random walk, blocked assignment)",
        [
            "algorithm",
            "k",
            "n",
            "per-update up/s",
            "single-close up/s",
            "fast-forward up/s",
            "seed speedup",
            "ff speedup",
            "ff / seed",
        ],
        rows,
    )
    table_printer(
        "E20 / engine — cross-level fast-forward (biased walk drift=0.6, "
        "closes climb the level ladder)",
        [
            "algorithm",
            "k",
            "n",
            "per-update up/s",
            "fast-forward up/s",
            "ff speedup",
        ],
        cross_rows,
    )
    table_printer(
        "E20 / engine — descent schedules (oscillating walk target=24 "
        "pull=0.12, closes go down the ladder as often as up)",
        [
            "algorithm",
            "k",
            "n",
            "per-update up/s",
            "monotone-ladder up/s",
            "descent up/s",
            "speedup vs per-update",
            "speedup vs monotone",
        ],
        descent_rows,
    )
    # Throughput rows for the bench-trend CI job (benchmarks/trend.py).
    for row in rows:
        benchmark.extra_info[
            f"{row[0]}_k{row[1]}_fastforward_updates_per_second"
        ] = row[5]
    for row in cross_rows:
        benchmark.extra_info[
            f"{row[0]}_k{row[1]}_crosslevel_updates_per_second"
        ] = row[4]
    for row in descent_rows:
        benchmark.extra_info[
            f"{row[0]}_k{row[1]}_descent_updates_per_second"
        ] = row[5]
    for row in rows:
        # Fast-forwarding must never lose to the single-close engine.
        check(row[8] >= 1.0, f"fast-forward slower than single-close: {row}")
    # Headline: on the E17 bottleneck rows (k = 4) the batched engine is now
    # strictly faster than the seed engine on the same parameters (measured
    # 2-4x; the floor absorbs machine noise without weakening the claim).
    for row in rows:
        if row[1] == 4:
            check(row[8] >= 1.2, f"no multi-block win on the k=4 row: {row}")
            check(row[7] > row[6], f"batched speedup did not improve: {row}")
    # Cross-level rows ride the close ladder instead of falling back to
    # per-update replay: within 2x of the matching same-level rows.
    same_level = {(row[0], row[1]): row[5] for row in rows}
    for row in cross_rows:
        reference = same_level[(row[0], row[1])]
        check(
            row[4] * 2 >= reference,
            f"cross-level throughput fell behind 2x of same-level: "
            f"{row[4]} vs {reference} ({row[0]}, k={row[1]})",
        )
        # And it must beat its own per-update baseline outright.
        check(row[5] >= 1.0, f"cross-level fast-forward lost to per-update: {row}")
    # Descent schedules: the adaptive ladder must beat the monotone PR-8
    # ladder it replaces (measured 1.3-1.4x; the floor absorbs noise) and
    # never lose to per-update dispatch.
    for row in descent_rows:
        check(row[6] >= 1.0, f"descent kernel lost to per-update: {row}")
        # Never slower than the ladder it replaces, anywhere ...
        check(
            row[7] >= 0.95,
            f"descent kernel regressed against the monotone ladder: {row}",
        )
        # ... and a real win on the small-k rows where per-close overhead
        # dominates (measured 1.2-1.46x there; k=8 closes are long enough
        # that both ladders amortise, so that row only has to hold even).
        if row[1] <= 4:
            check(
                row[7] >= 1.05,
                f"descent kernel shows no win over the monotone ladder: {row}",
            )
