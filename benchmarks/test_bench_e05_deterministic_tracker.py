"""E5 (Section 3.3): the deterministic tracker's guarantee and message cost.

Paper claims: at every timestep ``|f - fhat| <= eps |f|``, and the total
number of messages is ``O(k v(n) / eps)``.  The benchmark sweeps the number of
sites and the error parameter over several stream classes and reports the
maximum relative error, the message count and the message count normalised by
``k v / eps`` (which the bound says should be bounded by a constant).
"""

import pytest

from repro.analysis.bounds import deterministic_message_bound
from repro.core import DeterministicCounter, variability
from repro.streams import (
    assign_sites,
    biased_walk_stream,
    database_size_trace,
    monotone_stream,
    random_walk_stream,
)

N = 30_000
STREAMS = {
    "monotone": lambda: monotone_stream(N),
    "biased_walk": lambda: biased_walk_stream(N, drift=0.5, seed=21),
    "db_trace": lambda: database_size_trace(N, seed=22),
    "random_walk": lambda: random_walk_stream(N, seed=23),
}
SITE_COUNTS = [2, 8]
EPSILONS = [0.05, 0.2]


def _measure():
    rows = []
    for name, make in STREAMS.items():
        spec = make()
        v = variability(spec.deltas)
        for num_sites in SITE_COUNTS:
            updates = assign_sites(spec, num_sites)
            for epsilon in EPSILONS:
                result = DeterministicCounter(num_sites, epsilon).track(
                    updates, record_every=7
                )
                bound = deterministic_message_bound(num_sites, epsilon, v)
                rows.append(
                    [
                        name,
                        num_sites,
                        epsilon,
                        round(v, 1),
                        round(result.max_relative_error(), 4),
                        result.total_messages,
                        round(bound, 0),
                        round(result.total_messages / (num_sites * max(v, 1.0) / epsilon), 3),
                    ]
                )
    return rows


def test_bench_e05_deterministic_tracker(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        "E5 / Section 3.3 — deterministic tracker",
        ["stream", "k", "eps", "v(n)", "max rel err", "messages", "5kv/eps bound", "msgs/(kv/eps)"],
        rows,
    )
    for row in rows:
        name, num_sites, epsilon, v, max_error, messages, bound, normalised = row
        # The guarantee holds on every stream class and parameter setting.
        assert max_error <= epsilon + 1e-9
        # Communication is within the paper's explicit O(k v / eps) constant.
        assert messages <= bound
    # Low-variability streams are tracked far below one message per update,
    # which is the whole point of the framework.
    cheap = [r for r in rows if r[0] in ("monotone", "biased_walk", "db_trace") and r[2] == 0.2]
    for row in cheap:
        assert row[5] < 0.25 * N
