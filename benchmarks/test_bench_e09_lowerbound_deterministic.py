"""E9 (Theorem 4.1): the deterministic space lower bound, made executable.

Paper claim: for ``eps = 1/m`` there is a family of ``C(n, r)`` flip sequences,
each of variability exactly ``(6m+9)/(2m+6) eps r``, such that any summary
answering historical queries to ``eps`` relative error distinguishes all of
them — hence needs ``Omega(r log n) = Omega((v/eps) log n)`` bits.  The
benchmark builds families across a parameter sweep, verifies the variability
formula and decodability through an actual tracker-built summary, and compares
the information content against the ``(v/eps) log n`` form and against the
summary sizes real trackers produce.
"""

import math

import pytest

from repro.analysis.bounds import deterministic_tracing_space_bound
from repro.core import DeterministicCounter
from repro.lowerbounds import DeterministicFlipFamily, IndexReduction, TranscriptTracer

PARAMETERS = [
    # (n, m = 1/eps, r)
    (128, 8, 4),
    (256, 8, 8),
    (256, 16, 8),
    (512, 16, 16),
]


def _measure():
    rows = []
    for n, level, num_flips in PARAMETERS:
        family = DeterministicFlipFamily(n=n, level=level, num_flips=num_flips)
        reduction = IndexReduction(
            family,
            lambda ups, eps=family.epsilon: TranscriptTracer(
                DeterministicCounter(1, eps / 2)
            ).build(ups),
            num_sites=1,
        )
        indices = family.sample_indices(3, seed=n + num_flips)
        reports = reduction.run_many(indices)
        success = sum(1 for r in reports if r.correct) / len(reports)
        mean_summary_bits = sum(r.summary_bits for r in reports) / len(reports)
        v = family.member_variability()
        rows.append(
            [
                n,
                level,
                num_flips,
                round(v, 3),
                round(family.index_bits(), 1),
                round(family.paper_bit_lower_bound(), 1),
                round(deterministic_tracing_space_bound(family.epsilon, v, n), 1),
                round(mean_summary_bits, 0),
                success,
            ]
        )
    return rows


def test_bench_e09_lowerbound_deterministic(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        "E9 / Theorem 4.1 — deterministic hard family and INDEX decoding",
        [
            "n",
            "m=1/eps",
            "r",
            "member v",
            "log2|F| bits",
            "r log(n/r)",
            "(v/eps)log n",
            "tracker summary bits",
            "decode success",
        ],
        rows,
    )
    for row in rows:
        n, level, num_flips, v, info_bits, paper_bits, vbound, summary_bits, success = row
        # The member variability matches the closed form of the theorem.
        expected = (6 * level + 9) / (2 * level + 6) * (1.0 / level) * num_flips
        assert v == pytest.approx(expected, abs=1e-3)  # v is rounded to 3 decimals in the table
        # The family really carries Omega(r log n) bits, and that is within a
        # constant of the (v/eps) log n restatement (the constant absorbs the
        # (6m+9)/(2m+6) ~ 3 factor in v and the log(n) vs log(n/r) gap).
        assert info_bits >= paper_bits
        assert vbound <= 8.0 * info_bits
        # The tracker-built summary decodes every sampled member, and its size
        # respects the lower bound (no eps-correct summary can be smaller than
        # the information content of the family).
        assert success == 1.0
        assert summary_bits >= info_bits
