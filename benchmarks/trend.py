"""Throughput-trend guard: diff fresh benchmark runs against baselines.

The benchmark suite (E17/E20/E21) records its headline rates as
``extra_info`` keys ending in ``updates_per_second`` in the pytest-benchmark
JSON.  This script compares a fresh set of those JSONs against the committed
baselines in ``benchmarks/baselines/`` and fails when any rate regressed by
more than the tolerance (default 25%), printing a per-row delta table either
way.  Improvements and new keys pass; a key that *disappears* fails, because
silently dropping a tracked rate would defeat the guard.

When several input JSONs carry the same benchmark (repeat runs), the *best*
rate per key wins.  Smoke-mode workloads finish in milliseconds, so a single
run's rate carries scheduler jitter far beyond the regression tolerance;
best-of-N is the stable statistic (slowdowns are noise, speed is real).
The CI job runs each benchmark three times for exactly this reason, and
baselines should be regenerated the same way.

Usage (what the ``bench-trend`` CI job runs)::

    python benchmarks/trend.py BENCH_e17*.json BENCH_e20*.json \
        BENCH_e21*.json --baselines benchmarks/baselines

After an intentional perf change (or on a machine with a different speed
class), regenerate the baselines from the same fresh JSONs and commit them::

    python benchmarks/trend.py BENCH_*.json --baselines benchmarks/baselines \
        --write

Rates scale with machine speed, so baselines are only meaningful against
runs from the same environment; the tolerance absorbs run-to-run noise, not
hardware differences.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RATE_SUFFIX = "updates_per_second"


def _load_rates(bench_json: Path):
    """``{benchmark name: {extra_info rate key: value}}`` from one JSON."""
    with bench_json.open() as handle:
        payload = json.load(handle)
    rates = {}
    for bench in payload.get("benchmarks", []):
        keyed = {
            key: float(value)
            for key, value in bench.get("extra_info", {}).items()
            if key.endswith(RATE_SUFFIX)
        }
        if keyed:
            rates[bench["name"]] = keyed
    return rates


def _baseline_path(baselines: Path, name: str) -> Path:
    return baselines / f"{name}.json"


def _write_baselines(fresh, baselines: Path) -> None:
    baselines.mkdir(parents=True, exist_ok=True)
    for name, keyed in sorted(fresh.items()):
        path = _baseline_path(baselines, name)
        path.write_text(
            json.dumps({"benchmark": name, "rates": keyed}, indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {path} ({len(keyed)} rates)")


def _print_table(rows) -> None:
    headers = ["benchmark", "rate key", "baseline", "fresh", "delta", "status"]
    widths = [
        max(len(headers[col]), max((len(row[col]) for row in rows), default=0))
        for col in range(len(headers))
    ]
    for line in (headers, ["-" * width for width in widths]):
        print("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bench_json",
        nargs="+",
        type=Path,
        help="pytest-benchmark JSON files from a fresh run",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=Path(__file__).parent / "baselines",
        help="directory of committed per-benchmark baseline JSONs",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression before failing (default 0.25)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="regenerate the baselines from the fresh JSONs instead of diffing",
    )
    args = parser.parse_args(argv)

    fresh = {}
    for path in args.bench_json:
        for name, keyed in _load_rates(path).items():
            merged = fresh.setdefault(name, {})
            for key, value in keyed.items():
                merged[key] = max(value, merged.get(key, value))
    if not fresh:
        print("no *updates_per_second rates found in the given JSONs", file=sys.stderr)
        return 1

    if args.write:
        _write_baselines(fresh, args.baselines)
        return 0

    rows = []
    failures = []
    for name, keyed in sorted(fresh.items()):
        baseline_file = _baseline_path(args.baselines, name)
        if not baseline_file.exists():
            failures.append(
                f"{name}: no baseline at {baseline_file}; run with --write to create"
            )
            continue
        baseline = json.loads(baseline_file.read_text())["rates"]
        for key in sorted(set(baseline) | set(keyed)):
            old = baseline.get(key)
            new = keyed.get(key)
            if new is None:
                status = "MISSING"
                failures.append(f"{name}/{key}: rate vanished from the fresh run")
                delta = "-"
            elif old is None:
                status = "new"
                delta = "-"
            else:
                change = (new - old) / old
                delta = f"{change:+.1%}"
                if change < -args.tolerance:
                    status = "REGRESSED"
                    failures.append(
                        f"{name}/{key}: {old:.0f} -> {new:.0f} ({change:+.1%}, "
                        f"tolerance -{args.tolerance:.0%})"
                    )
                else:
                    status = "ok"
            rows.append(
                [
                    name,
                    key,
                    "-" if old is None else f"{old:,.0f}",
                    "-" if new is None else f"{new:,.0f}",
                    delta,
                    status,
                ]
            )

    _print_table(rows)
    if failures:
        print("\nthroughput trend check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall rates within -{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
