"""E17 (engine): throughput of the batched streaming engine vs per-update.

The batched engine simulates the block protocol in closed form — bulk count
reports, charged superseded estimation reports, simulated block closes — and
must produce bit-for-bit identical estimates, message counts and bit counts
(asserted here and, exhaustively, in ``tests/test_batch_equivalence.py``).
This benchmark measures what that buys: updates/second for the deterministic
and randomized trackers at ``k in {4, 16, 64}`` under blocked (sharded)
assignment, plus a headline 1,000,000-update random-walk run targeting the
>= 5x speedup the engine was built for.

Speedup ratios are robust to machine speed (both engines slow down
together), so the assertions check ratios, not absolute rates.
"""

from bench_support import check, size

from repro.analysis import measure_engine_throughput
from repro.api import SourceSpec, TrackerSpec

SWEEP_N = size(150_000, 10_000)
HEADLINE_N = size(1_000_000, 20_000)
SITE_COUNTS = [4, 16, 64]
EPSILON = 0.1
BLOCK_LENGTH = 4_096
RECORD_EVERY = 20_000


def _workload(length: int, num_sites: int) -> list:
    """The E17 scenario's source axis, declared as a spec."""
    return SourceSpec(
        stream="random_walk",
        length=length,
        seed=31,
        sites=num_sites,
        assignment="blocked",
        assignment_params={"block_length": BLOCK_LENGTH},
    ).build_updates()


def _measure():
    rows = []
    for num_sites in SITE_COUNTS:
        updates = _workload(SWEEP_N, num_sites)
        for tracker in ("deterministic", "randomized"):
            factory = TrackerSpec(
                name=tracker, epsilon=EPSILON, seed=5
            ).build_factory(num_sites)
            slow_rate, fast_rate, speedup = measure_engine_throughput(
                factory, updates, record_every=RECORD_EVERY
            )
            rows.append(
                [
                    tracker,
                    num_sites,
                    SWEEP_N,
                    round(slow_rate),
                    round(fast_rate),
                    round(speedup, 2),
                ]
            )
    headline_factory = TrackerSpec(name="deterministic", epsilon=EPSILON).build_factory(16)
    slow_rate, fast_rate, speedup = measure_engine_throughput(
        headline_factory, _workload(HEADLINE_N, 16), record_every=RECORD_EVERY
    )
    rows.append(
        ["deterministic", 16, HEADLINE_N, round(slow_rate), round(fast_rate), round(speedup, 2)]
    )
    return rows


def test_bench_e17_throughput(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        "E17 / engine — batched vs per-update throughput (random walk)",
        ["algorithm", "k", "n", "per-update up/s", "batched up/s", "speedup"],
        rows,
    )
    # The batched rates feed the bench-trend CI job (benchmarks/trend.py):
    # every *_updates_per_second key is diffed against the committed
    # baseline, so a kernel regression shows up as a failing delta row.
    for tracker, num_sites, _, _, fast_rate, _ in rows[:-1]:
        benchmark.extra_info[
            f"{tracker}_k{num_sites}_updates_per_second"
        ] = fast_rate
    benchmark.extra_info["headline_updates_per_second"] = rows[-1][4]
    # The batched engine must never lose to per-update dispatch.
    for row in rows:
        check(row[5] >= 1.0)
    # Headline: >= 5x on random_walk_stream(1_000_000) (measured ~7-8x; the
    # margin below absorbs machine noise without weakening the claim).
    headline = rows[-1]
    assert headline[2] == HEADLINE_N
    check(headline[5] >= 5.0)
    # The sweep should already show substantial wins at k >= 16 (measured
    # 6-15x; the low floor keeps timing noise from failing the suite).
    for row in rows:
        if row[1] >= 16:
            check(row[5] >= 1.5)
