"""E23 (api): parallel sweep scaling over one shared memory-mapped trace.

A parameter sweep is the repo's standard experiment shape: one recorded
trace, a grid of tracker configurations, every grid point an independent
replay.  ``Sweep.run(workers=n)`` farms the grid to a process pool, and two
properties make that worth having:

* **Throughput scales with workers.**  Grid points are embarrassingly
  parallel, so doubling the pool should move total updates/s visibly — the
  sweep is compute-bound in the trackers, not serialised on the trace file.
* **The trace is opened once per worker, not once per grid point.**  The
  pool initializer pre-opens the sweep's trace into each worker's
  process-wide :mod:`repro.api.trace_cache`; every grid point is then a
  cache hit against the worker's memory-mapped columns.  The claim is not
  inferred from timing — :func:`repro.streams.io.trace_open_counts` counts
  physical opens inside each worker and this benchmark asserts the tally:
  one per worker, strictly fewer than the grid has points.

The timed figure per pool width lands in the benchmark JSON as
``sweep_w{n}_updates_per_second`` for the bench-trend CI job.
"""

import os
import time

import numpy as np

from bench_support import check, size

from repro.api import (
    RunSpec,
    SourceSpec,
    Sweep,
    TrackerSpec,
    clear_trace_cache,
    shutdown_sweep_pool,
)
from repro.streams.io import (
    TraceColumns,
    reset_trace_open_counts,
    save_trace_npz,
)

TRACE_LENGTH = size(120_000, 6_000)
TRACE_SITES = 8
RECORD_EVERY = size(10_000, 1_000)
WORKER_COUNTS = [1, 2, 4]
GRID = {
    "tracker.epsilon": [0.05, 0.1, 0.15, 0.2],
    "tracker.name": ["deterministic", "randomized"],
}


def _write_trace(path):
    rng = np.random.default_rng(47)
    columns = TraceColumns(
        times=np.arange(1, TRACE_LENGTH + 1, dtype=np.int64),
        sites=rng.integers(0, TRACE_SITES, size=TRACE_LENGTH).astype(np.int64),
        deltas=np.where(rng.random(TRACE_LENGTH) < 0.6, 1, -1).astype(np.int64),
    )
    save_trace_npz(columns, path)
    return path


def _base_spec(trace):
    return RunSpec(
        source=SourceSpec(stream=None, trace=str(trace), mmap=True),
        tracker=TrackerSpec(name="deterministic", epsilon=0.1, seed=5),
        engine="arrays",
        record_every=RECORD_EVERY,
    )


def _fingerprint(points):
    return [
        (
            tuple(sorted(p.overrides.items())),
            p.result.total_messages,
            p.result.total_bits,
            [(r.time, r.estimate) for r in p.result.records],
        )
        for p in points
    ]


def _measure(trace):
    base = _base_spec(trace)
    trace_key = str(trace.resolve())
    grid_points = len(Sweep(base, GRID).specs())
    rows = []
    fingerprints = {}
    open_tallies = {}
    for workers in WORKER_COUNTS:
        # Fresh tallies and a cold cache per width: pool workers fork from
        # this process, so a stale parent tally would be inherited into
        # every worker and double-count the serial run's open.
        clear_trace_cache()
        reset_trace_open_counts()
        sweep = Sweep(base, GRID)
        start = time.perf_counter()
        points = sweep.run(workers=workers)
        seconds = time.perf_counter() - start
        fingerprints[workers] = _fingerprint(points)
        if workers > 1:
            # Forked workers inherit the parent's tally, so the assertion
            # reads this trace's entry only.
            opens = Sweep.worker_trace_opens()
            open_tallies[workers] = {
                pid: counts.get(trace_key, 0) for pid, counts in opens.items()
            }
        rows.append(
            {
                "workers": workers,
                "seconds": seconds,
                "points": grid_points,
                "updates_per_second": grid_points * TRACE_LENGTH / seconds,
            }
        )
    shutdown_sweep_pool()
    return rows, fingerprints, open_tallies


def test_bench_e23_sweep_scaling(benchmark, table_printer, tmp_path):
    trace = _write_trace(tmp_path / "e23_trace.npz")
    rows, fingerprints, open_tallies = benchmark.pedantic(
        _measure, args=(trace,), rounds=1, iterations=1
    )
    table_printer(
        f"E23 / api — parallel sweep over one shared mmap trace "
        f"(n={TRACE_LENGTH}, k={TRACE_SITES}, {rows[0]['points']} grid points)",
        ["workers", "seconds", "updates/s", "speedup vs serial", "trace opens"],
        [
            [
                row["workers"],
                round(row["seconds"], 3),
                round(row["updates_per_second"]),
                round(
                    row["updates_per_second"] / rows[0]["updates_per_second"], 2
                ),
                (
                    "1 (in-process cache)"
                    if row["workers"] == 1
                    else f"{sum(open_tallies[row['workers']].values())} "
                    f"({len(open_tallies[row['workers']])} workers)"
                ),
            ]
            for row in rows
        ],
    )
    for row in rows:
        benchmark.extra_info[
            f"sweep_w{row['workers']}_updates_per_second"
        ] = row["updates_per_second"]

    # Every pool width must produce the same points in the same grid order,
    # bit for bit — parallelism is a scheduling detail, never a semantic
    # one.  Structural, any scale.
    serial = fingerprints[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        assert fingerprints[workers] == serial, (
            f"workers={workers} sweep diverged from the serial run"
        )
    # The shared-trace guarantee, measured rather than assumed: each worker
    # opened the trace exactly once (its pool initializer's open), so the
    # whole parallel run cost at most `workers` physical opens — never one
    # per grid point.  Structural, any scale.
    for workers, tally in open_tallies.items():
        assert tally, f"workers={workers}: no open tallies collected"
        assert all(count == 1 for count in tally.values()), (
            f"workers={workers}: expected one trace open per worker, "
            f"got {tally}"
        )
        assert sum(tally.values()) < rows[0]["points"], (
            f"workers={workers}: as many opens as grid points — the trace "
            "cache is not being shared"
        )
    # The quantitative claim: with real parallelism available, the widest
    # pool beats the serial sweep outright (a conservative floor — the grid
    # is embarrassingly parallel, but CI machines may only have two cores).
    # On a single-core machine no pool can win, so the claim degrades to an
    # overhead bound: farming the grid out must not cost more than half the
    # serial throughput.
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1
    widest = rows[-1]
    if cores >= 2:
        check(
            widest["updates_per_second"] >= 1.2 * rows[0]["updates_per_second"],
            f"{widest['workers']}-worker sweep only reached "
            f"{widest['updates_per_second']:.0f} updates/s vs "
            f"{rows[0]['updates_per_second']:.0f} serial on {cores} cores",
        )
    else:
        check(
            widest["updates_per_second"] >= 0.5 * rows[0]["updates_per_second"],
            f"pool overhead swamped the single-core sweep: "
            f"{widest['updates_per_second']:.0f} vs "
            f"{rows[0]['updates_per_second']:.0f} updates/s serial",
        )
