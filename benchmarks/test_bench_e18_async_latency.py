"""E18 (asynchrony): delivery latency versus achieved error and staleness.

The paper proves its guarantees in an instant-delivery model; the
asynchronous transport (:mod:`repro.asynchrony`) measures what survives when
delivery takes time.  This benchmark sweeps the latency scale for the
Section 3.3 deterministic tracker on a biased walk and reports achieved
error next to the staleness signals (message age, in-flight high-water
mark), plus a FIFO-versus-reordering comparison at a fixed scale.

The scenario is declared once as a :class:`repro.api.RunSpec` and the scale
axis expands through :class:`repro.api.Sweep` — the same spec vocabulary
``python -m repro latency`` and ``repro run --config`` execute, so the
benchmark measures exactly what the CLI exposes.

Pinned shapes:

* the zero-latency row is *identical* to the synchronous engine (messages
  and bits — the transports share one counting contract), at any size;
* staleness tracks the cause: mean delivered age grows with the scale;
* accuracy decays: time-averaged error and violation fraction grow with
  the scale (quantitative, full parameters only).
"""

from bench_support import check, size

from repro.analysis import time_averaged_relative_error
from repro.api import RunSpec, SourceSpec, Sweep, TrackerSpec, TransportSpec

LENGTH = size(20_000, 2_000)
NUM_SITES = 8
EPSILON = 0.1
SCALES = [0.0, 1.0, 4.0, 16.0, 64.0]
RECORD_EVERY = 25


def _base_spec() -> RunSpec:
    return RunSpec(
        source=SourceSpec(
            stream="biased_walk",
            length=LENGTH,
            seed=3,
            sites=NUM_SITES,
            params={"drift": 0.5},
        ),
        tracker=TrackerSpec(name="deterministic", epsilon=EPSILON),
        transport=TransportSpec(mode="async", latency="uniform", seed=0),
        engine="per-update",
        record_every=RECORD_EVERY,
    )


def _measure():
    base = _base_spec()
    points = Sweep(base, {"transport.scale": SCALES}).run()
    reordered = base.with_overrides(
        {"transport.scale": 8.0, "transport.preserve_order": False}
    ).run()
    sync = base.with_overrides(
        {"transport.mode": "sync", "transport.scale": 0.0, "engine": "auto"}
    ).run()
    return points, reordered, sync


def test_bench_e18_async_latency(benchmark, table_printer):
    points, reordered, sync = benchmark.pedantic(_measure, rounds=1, iterations=1)
    results = [(p.overrides["transport.scale"], p.result) for p in points] + [
        ("8.0 (reorder)", reordered)
    ]
    table_printer(
        "E18 / asynchrony — latency scale vs error and staleness "
        f"(biased walk, n={LENGTH}, k={NUM_SITES})",
        [
            "scale",
            "messages",
            "time-avg err",
            "violation frac",
            "mean age",
            "in-flight hwm",
            "reordered",
        ],
        [
            [
                scale,
                result.total_messages,
                round(time_averaged_relative_error(result.records), 4),
                round(result.violation_fraction(EPSILON), 3),
                round(result.staleness.mean_age, 2),
                result.staleness.inflight_highwater,
                result.staleness.reordered,
            ]
            for scale, result in results
        ],
    )
    zero = points[0].result
    # Zero latency is the synchronous engine: identical counters at any size.
    assert zero.total_messages == sync.total_messages
    assert zero.total_bits == sync.total_bits
    assert zero.max_relative_error() == sync.max_relative_error()
    assert zero.staleness.inflight_highwater == 0
    assert time_averaged_relative_error(sync.records) == time_averaged_relative_error(
        zero.records
    )
    # Staleness tracks its cause at any size: delivered age grows with scale.
    ages = [point.result.staleness.mean_age for point in points]
    assert ages == sorted(ages)
    assert points[-1].result.staleness.inflight_highwater > 0
    # Reordering is detected only when FIFO is off.
    assert all(point.result.staleness.reordered == 0 for point in points)
    assert reordered.staleness.reordered > 0
    # Quantitative decay shapes need full-scale parameters.
    errors = [time_averaged_relative_error(point.result.records) for point in points]
    check(errors == sorted(errors), f"error not monotone in scale: {errors}")
    check(
        points[-1].result.violation_fraction(EPSILON) > 0.9,
        "large latency should break the guarantee almost everywhere",
    )
    check(
        points[-1].result.total_messages > zero.total_messages,
        "stale block levels should cost extra messages",
    )
