"""E18 (asynchrony): delivery latency versus achieved error and staleness.

The paper proves its guarantees in an instant-delivery model; the
asynchronous transport (:mod:`repro.asynchrony`) measures what survives when
delivery takes time.  This benchmark sweeps the latency scale for the
Section 3.3 deterministic tracker on a biased walk and reports achieved
error next to the staleness signals (message age, in-flight high-water
mark), plus a FIFO-versus-reordering comparison at a fixed scale.

Pinned shapes:

* the zero-latency row is *identical* to the synchronous engine (messages
  and bits — the transports share one counting contract), at any size;
* staleness tracks the cause: mean delivered age grows with the scale;
* accuracy decays: time-averaged error and violation fraction grow with
  the scale (quantitative, full parameters only).
"""

from bench_support import check, size

from repro.analysis import run_latency_sweep, time_averaged_relative_error
from repro.core import DeterministicCounter
from repro.streams import assign_sites, biased_walk_stream

LENGTH = size(20_000, 2_000)
NUM_SITES = 8
EPSILON = 0.1
SCALES = [0.0, 1.0, 4.0, 16.0, 64.0]
RECORD_EVERY = 25


def _measure():
    spec = biased_walk_stream(LENGTH, drift=0.5, seed=3)
    updates = assign_sites(spec, NUM_SITES)
    points = run_latency_sweep(
        lambda: DeterministicCounter(NUM_SITES, EPSILON),
        updates,
        epsilon=EPSILON,
        scales=SCALES,
        record_every=RECORD_EVERY,
        seed=0,
    )
    reordered = run_latency_sweep(
        lambda: DeterministicCounter(NUM_SITES, EPSILON),
        updates,
        epsilon=EPSILON,
        scales=[8.0],
        record_every=RECORD_EVERY,
        seed=0,
        preserve_order=False,
    )[0]
    sync = DeterministicCounter(NUM_SITES, EPSILON).track(
        updates, record_every=RECORD_EVERY
    )
    return points, reordered, sync


def test_bench_e18_async_latency(benchmark, table_printer):
    points, reordered, sync = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [
            point.scale,
            point.messages,
            round(point.time_avg_error, 4),
            round(point.violation_fraction, 3),
            round(point.staleness.mean_age, 2),
            point.staleness.inflight_highwater,
            point.staleness.reordered,
        ]
        for point in points
    ] + [
        [
            "8.0 (reorder)",
            reordered.messages,
            round(reordered.time_avg_error, 4),
            round(reordered.violation_fraction, 3),
            round(reordered.staleness.mean_age, 2),
            reordered.staleness.inflight_highwater,
            reordered.staleness.reordered,
        ]
    ]
    table_printer(
        "E18 / asynchrony — latency scale vs error and staleness "
        f"(biased walk, n={LENGTH}, k={NUM_SITES})",
        [
            "scale",
            "messages",
            "time-avg err",
            "violation frac",
            "mean age",
            "in-flight hwm",
            "reordered",
        ],
        rows,
    )
    zero = points[0]
    # Zero latency is the synchronous engine: identical counters at any size.
    assert zero.messages == sync.total_messages
    assert zero.bits == sync.total_bits
    assert zero.max_relative_error == sync.max_relative_error()
    assert zero.staleness.inflight_highwater == 0
    assert time_averaged_relative_error(sync.records) == zero.time_avg_error
    # Staleness tracks its cause at any size: delivered age grows with scale.
    ages = [point.staleness.mean_age for point in points]
    assert ages == sorted(ages)
    assert points[-1].staleness.inflight_highwater > 0
    # Reordering is detected only when FIFO is off.
    assert all(point.staleness.reordered == 0 for point in points)
    assert reordered.staleness.reordered > 0
    # Quantitative decay shapes need full-scale parameters.
    errors = [point.time_avg_error for point in points]
    check(errors == sorted(errors), f"error not monotone in scale: {errors}")
    check(
        points[-1].violation_fraction > 0.9,
        "large latency should break the guarantee almost everywhere",
    )
    check(
        points[-1].messages > zero.messages,
        "stale block levels should cost extra messages",
    )
