"""Shared sizing and assertion support for the benchmark harness.

The benchmarks double as CI artifacts: a smoke-mode job runs the whole
directory with tiny parameters on every push (uploading the
pytest-benchmark JSON so the perf trajectory is tracked over time), while
local full runs keep the paper-scale parameters and their quantitative
assertions.  Set ``REPRO_BENCH_SMOKE=1`` to switch modes:

* :func:`size` picks the tiny workload size instead of the full one;
* :func:`check` skips *quantitative* claims (speedup floors, error decay
  rates) that only hold at full scale — structural assertions (equivalence,
  exactness, monotone shapes that hold at any size) should stay plain
  ``assert`` so smoke mode still verifies correctness.
"""

from __future__ import annotations

import os

__all__ = ["SMOKE", "size", "check"]

#: True when the harness runs in CI smoke mode (tiny parameters).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def size(full: int, smoke: int) -> int:
    """Return the workload size for the current mode."""
    return smoke if SMOKE else full


def check(condition: bool, message: str = "") -> None:
    """Assert a quantitative claim, unless smoke-mode parameters void it."""
    if SMOKE:
        return
    assert condition, message
