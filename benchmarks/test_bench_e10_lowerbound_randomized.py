"""E10 (Theorem 4.2 / Lemmas 4.3-4.4): the randomized lower-bound construction.

Paper claim: there is a family of ``exp(Omega(v/eps))`` sequences, each of
variability at most ``v``, in which no two sequences match (overlap in 60% of
positions), which forces any 99%-correct tracing summary to use
``Omega(v/eps)`` bits.  The worst-case constants (32400, the Chung et al.
constant C) put the literal construction far beyond experimental reach, so the
benchmark samples families from the same distribution at moderate parameters
and verifies the two structural properties plus the overlap concentration the
Markov-chain argument predicts.
"""

import pytest

from repro.lowerbounds import OverlapChain, RandomizedFlipFamily

PARAMETERS = [
    # (n, eps, variability budget, family size)
    (1_000, 0.25, 150.0, 10),
    (2_000, 0.25, 300.0, 10),
    (2_000, 0.5, 400.0, 10),
    (4_000, 0.125, 400.0, 8),
]


def _measure():
    rows = []
    for n, epsilon, budget, size in PARAMETERS:
        family = RandomizedFlipFamily(n=n, epsilon=epsilon, variability_budget=budget)
        members = family.sample_family(size, seed=int(n * 7 + 1 / epsilon))
        report = family.check_family(members)
        chain = OverlapChain(family.flip_probability)
        rows.append(
            [
                n,
                epsilon,
                budget,
                size,
                report.matching_pairs,
                round(report.max_overlap_fraction, 3),
                round(report.max_variability, 1),
                report.over_budget_members,
                round(chain.mixing_time_bound(), 1),
                round(family.expected_flips(), 1),
            ]
        )
    return rows


def test_bench_e10_lowerbound_randomized(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        "E10 / Lemma 4.4 — sampled randomized hard families",
        [
            "n",
            "eps",
            "v budget",
            "family size",
            "matching pairs",
            "max overlap frac",
            "max member v",
            "over budget",
            "mixing bound",
            "E[flips]",
        ],
        rows,
    )
    for row in rows:
        n, epsilon, budget, size, matches, max_overlap, max_v, over_budget, mixing, flips = row
        # Property 1: no two sampled sequences match (overlap < 60%).
        assert matches == 0
        assert max_overlap < 0.6
        # Property 2: every member's variability is within the budget v.
        assert over_budget == 0
        assert max_v <= budget
        # The Markov-chain mixing-time bound is modest relative to n, which is
        # what makes the Chernoff-style concentration of the overlap effective.
        assert mixing < n
