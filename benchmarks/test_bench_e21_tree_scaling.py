"""E21 (recursive trees): depth x fan-out scaling and root-traffic decay.

The recursive L-level tree (:mod:`repro.monitoring.tree`) exists so the
root's load stays bounded as the monitored site count ``k`` scales: every
aggregation node only ever talks to its own fan-out many children, whatever
``k`` is.  This benchmark pins that shape three ways:

* **Depth x fan-out grid at fixed k.**  Same stream, same sites, shapes
  from flat to four levels under the geometric budget split: per-level
  message counts, root traffic, wall-clock and achieved error per shape.
  In every tree the traffic attenuates strictly from the leaves to the
  root — each aggregation level's deadband absorbs subtree wobbles instead
  of re-broadcasting every leaf report upward.
* **Root traffic is sublinear in k.**  A k-sweep with the root fan-out
  growing as ``sqrt(k)``: doubling the sites must *less* than double the
  root's message count (the hierarchy's reason to exist).
* **Paper-scale end-to-end.**  A 4-level tree over ``k = 10^5`` sites runs
  the full pipeline (spec -> build -> batched engine -> per-level summary)
  with the updates/s figure recorded in the benchmark JSON; per-level
  message counts must decrease strictly from the leaves to the root.
* **Million-site lazy point.**  A 4-level tree over ``k = 10^6`` sites
  driven by the tree-direct columnar engine
  (:func:`repro.monitoring.runner.run_tracking_tree_arrays`): leaves are
  built lazily (:func:`build_tree_network`), so construction costs
  O(touched leaves) and the whole point — build plus run — fits the CI
  smoke budget.  The leaf-materialisation count is asserted structurally:
  only leaves the trace touches exist.
* **High leaf-touch dispatch.**  The same million-site tree fed 16-update
  segments that hop leaves almost every segment — the regime where
  per-segment routing (leaf lookup, wrapper-chain walk, capability rescans)
  used to rival the kernel work itself.  The tree-direct engine's flattened
  dispatch (segment destinations gathered in one vectorised pass, leaf
  networks and push chains resolved once) must beat the generic columnar
  engine's per-segment ``_locate`` descent by >= 2x on a fresh copy of the
  same workload, bit for bit.
"""

import time

import numpy as np

from bench_support import check, size

from repro.analysis import root_traffic_fraction
from repro.api import RunSpec, SourceSpec, TopologySpec, TrackerSpec
from repro.core import DeterministicCounter
from repro.monitoring.runner import run_tracking_arrays, run_tracking_tree_arrays
from repro.monitoring.tree import _LazyLeafNetwork, build_tree_network

LENGTH = size(120_000, 4_000)
NUM_SITES = size(4_096, 512)
EPSILON = 0.1
RECORD_EVERY = size(2_000, 100)
# (label, levels, fanout) — every shape partitions the same NUM_SITES.
SHAPES = [
    ("flat", 1, None),
    ("2-level", 2, 8),
    ("3-level", 3, 8),
    ("4-level", 4, 8),
]
K_SWEEP = [size(k, k // 16) for k in (1_024, 4_096, 16_384)]
BIG_SITES = size(100_000, 1_000)
BIG_LENGTH = size(200_000, 5_000)
# The million-site point keeps k at full scale even in smoke mode — lazy
# leaves are exactly what makes that affordable; only the trace shrinks.
MILLION_SITES = 1_000_000
MILLION_LENGTH = size(400_000, 20_000)
MILLION_BLOCK = 4_096
# High leaf-touch regime: 16-update segments, so nearly every segment lands
# on a different leaf and dispatch overhead, not kernel math, is the cost.
HIGH_TOUCH_BLOCK = 16
HIGH_TOUCH_LENGTH = size(200_000, 10_000)
# The generic-engine control replays a shorter prefix (it is the slow side
# of the >= 2x claim); rates, not wall-clocks, are compared.
HIGH_TOUCH_CONTROL_LENGTH = size(40_000, 5_000)


def _spec(length, sites, seed, **topology):
    return RunSpec(
        source=SourceSpec(
            stream="biased_walk",
            length=length,
            seed=seed,
            sites=sites,
            params={"drift": 0.5},
        ),
        tracker=TrackerSpec(name="deterministic", epsilon=EPSILON),
        topology=TopologySpec(**topology),
        engine="batched",
        record_every=RECORD_EVERY,
    )


def _run_shape(spec):
    start = time.perf_counter()
    result = spec.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def _measure():
    grid = []
    for label, levels, fanout in SHAPES:
        # The geometric split is what quiets the root as depth grows: each
        # aggregation level holds a share of the budget as a push deadband,
        # so small subtree wobbles die out on the way up instead of
        # re-broadcasting every leaf report to the root.
        topology = (
            {}
            if levels == 1
            else {"levels": levels, "fanout": fanout, "epsilon_split": "geometric"}
        )
        result, elapsed = _run_shape(_spec(LENGTH, NUM_SITES, 21, **topology))
        rows = result.levels or []
        grid.append(
            {
                "label": label,
                "result": result,
                "levels": rows,
                "root_messages": rows[0]["messages"] if rows else 0,
                "seconds": elapsed,
            }
        )

    sweep = []
    for sites in K_SWEEP:
        fanout = max(2, int(round(sites ** 0.5)))
        result, _ = _run_shape(_spec(LENGTH, sites, 23, levels=2, fanout=fanout))
        sweep.append(
            {
                "sites": sites,
                "fanout": fanout,
                "root_messages": result.levels[0]["messages"],
            }
        )

    fanouts = [10, 10, 10] if BIG_SITES >= 100_000 else [4, 4, 4]
    big_spec = _spec(
        BIG_LENGTH, BIG_SITES, 29, fanouts=fanouts, epsilon_split="geometric"
    )
    big_result, big_seconds = _run_shape(big_spec)
    big = {
        "result": big_result,
        "levels": big_result.levels,
        "fanouts": fanouts,
        "seconds": big_seconds,
        "updates_per_second": BIG_LENGTH / big_seconds,
    }
    return grid, sweep, big, _measure_million(), _measure_high_touch()


def _million_columns(length=None, block=None, seed=37):
    """A drifting trace over the full million-site range, blocked by site.

    Hand-rolled columns instead of a :class:`SourceSpec` so the site axis
    can span all of ``MILLION_SITES`` while the trace stays short: each
    ``block``-update run lands on one uniformly random site — 4096-update
    blocks touch ~100 distinct leaves out of 1000 on the full trace, while
    16-update blocks hop leaves nearly every segment.
    """
    length = MILLION_LENGTH if length is None else length
    block = MILLION_BLOCK if block is None else block
    rng = np.random.default_rng(seed)
    times = np.arange(1, length + 1, dtype=np.int64)
    deltas = rng.choice(np.array([-1, 1], dtype=np.int64), size=length, p=[0.2, 0.8])
    num_blocks = -(-length // block)
    block_sites = rng.integers(0, MILLION_SITES, size=num_blocks, dtype=np.int64)
    sites = np.repeat(block_sites, block)[:length]
    return times, sites, deltas


def _measure_million():
    times, sites, deltas = _million_columns()
    build_start = time.perf_counter()
    network = build_tree_network(
        DeterministicCounter(MILLION_SITES, EPSILON),
        levels=4,
        fanout=10,
        epsilon_split="geometric",
    )
    build_seconds = time.perf_counter() - build_start
    run_start = time.perf_counter()
    result = run_tracking_tree_arrays(
        network, times, sites, deltas, record_every=size(20_000, 2_000)
    )
    run_seconds = time.perf_counter() - run_start
    leaves = network.leaves()
    materialized = sum(
        1 for leaf in leaves if not isinstance(leaf.network, _LazyLeafNetwork)
    )
    return {
        "result": result,
        "build_seconds": build_seconds,
        "run_seconds": run_seconds,
        "updates_per_second": MILLION_LENGTH / run_seconds,
        "total_leaves": len(leaves),
        "materialized_leaves": materialized,
        "distinct_sites": int(np.unique(sites).size),
        "true_value": int(deltas.sum()),
    }


def _high_touch_network():
    return build_tree_network(
        DeterministicCounter(MILLION_SITES, EPSILON),
        levels=4,
        fanout=10,
        epsilon_split="geometric",
    )


def _result_fingerprint(result):
    return (
        [(r.time, r.true_value, r.estimate) for r in result.records],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


def _measure_high_touch():
    """Tree-direct vs generic columnar dispatch when segments hop leaves.

    Three fresh copies of the same million-site tree replay the same
    16-update-block trace: the tree-direct engine over the full trace (the
    headline rate), the generic columnar engine over a prefix (the control
    rate — it re-locates the owning leaf per segment), and the tree-direct
    engine over that same prefix (pinning bit-for-bit agreement between the
    two dispatch paths on this exact workload).
    """
    record_every = size(20_000, 2_000)
    times, sites, deltas = _million_columns(
        length=HIGH_TOUCH_LENGTH, block=HIGH_TOUCH_BLOCK, seed=41
    )
    start = time.perf_counter()
    direct_result = run_tracking_tree_arrays(
        _high_touch_network(), times, sites, deltas, record_every=record_every
    )
    direct_seconds = time.perf_counter() - start

    head = slice(0, HIGH_TOUCH_CONTROL_LENGTH)
    start = time.perf_counter()
    generic_result = run_tracking_arrays(
        _high_touch_network(),
        times[head],
        sites[head],
        deltas[head],
        record_every=record_every,
    )
    generic_seconds = time.perf_counter() - start
    direct_head = run_tracking_tree_arrays(
        _high_touch_network(),
        times[head],
        sites[head],
        deltas[head],
        record_every=record_every,
    )
    return {
        "result": direct_result,
        "direct_seconds": direct_seconds,
        "updates_per_second": HIGH_TOUCH_LENGTH / direct_seconds,
        "generic_updates_per_second": HIGH_TOUCH_CONTROL_LENGTH / generic_seconds,
        "fingerprints_equal": (
            _result_fingerprint(direct_head) == _result_fingerprint(generic_result)
        ),
        "segments": int(np.count_nonzero(np.diff(sites)) + 1),
    }


def test_bench_e21_tree_scaling(benchmark, table_printer):
    grid, sweep, big, million, high_touch = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    table_printer(
        "E21 / trees — depth x fan-out at fixed k "
        f"(biased walk, n={LENGTH}, k={NUM_SITES}, eps={EPSILON})",
        [
            "shape",
            "total msgs",
            "root msgs",
            "root share",
            "seconds",
            "max rel err",
        ],
        [
            [
                row["label"],
                row["result"].total_messages,
                row["root_messages"],
                (
                    round(root_traffic_fraction(row["levels"]), 4)
                    if row["levels"]
                    else "-"
                ),
                round(row["seconds"], 3),
                round(row["result"].max_relative_error(), 4),
            ]
            for row in grid
        ],
    )
    table_printer(
        f"E21 / trees — root traffic vs k (2-level, fanout=sqrt(k), n={LENGTH})",
        ["sites", "fanout", "root msgs", "root msgs / k"],
        [
            [
                row["sites"],
                row["fanout"],
                row["root_messages"],
                round(row["root_messages"] / row["sites"], 3),
            ]
            for row in sweep
        ],
    )
    table_printer(
        f"E21 / trees — 4-level end-to-end (k={BIG_SITES}, n={BIG_LENGTH}, "
        f"fanouts={big['fanouts']}, {big['updates_per_second']:.0f} updates/s)",
        ["level", "role", "nodes", "messages", "bits"],
        [
            [row["level"], row["role"], row["nodes"], row["messages"], row["bits"]]
            for row in big["levels"]
        ],
    )
    table_printer(
        f"E21 / trees — million-site lazy point (k={MILLION_SITES}, "
        f"n={MILLION_LENGTH}, levels=4, fanout=10, tree-direct columnar engine)",
        [
            "build s",
            "run s",
            "updates/s",
            "leaves built",
            "leaves total",
            "max rel err",
        ],
        [
            [
                round(million["build_seconds"], 3),
                round(million["run_seconds"], 3),
                round(million["updates_per_second"]),
                million["materialized_leaves"],
                million["total_leaves"],
                round(million["result"].max_relative_error(), 4),
            ]
        ],
    )
    benchmark.extra_info["big_tree_updates_per_second"] = big["updates_per_second"]
    benchmark.extra_info["big_tree_sites"] = BIG_SITES
    benchmark.extra_info["big_tree_root_messages"] = big["levels"][0]["messages"]
    table_printer(
        f"E21 / trees — high leaf-touch dispatch (k={MILLION_SITES}, "
        f"n={HIGH_TOUCH_LENGTH}, block={HIGH_TOUCH_BLOCK}, levels=4, fanout=10)",
        [
            "segments",
            "tree-direct up/s",
            "generic up/s",
            "speedup",
            "bit-for-bit",
        ],
        [
            [
                high_touch["segments"],
                round(high_touch["updates_per_second"]),
                round(high_touch["generic_updates_per_second"]),
                round(
                    high_touch["updates_per_second"]
                    / high_touch["generic_updates_per_second"],
                    2,
                ),
                high_touch["fingerprints_equal"],
            ]
        ],
    )
    benchmark.extra_info["million_tree_updates_per_second"] = million[
        "updates_per_second"
    ]
    benchmark.extra_info["million_tree_build_seconds"] = million["build_seconds"]
    benchmark.extra_info["million_tree_leaves_materialized"] = million[
        "materialized_leaves"
    ]
    benchmark.extra_info["high_touch_tree_updates_per_second"] = high_touch[
        "updates_per_second"
    ]

    # Within every tree the traffic attenuates strictly from the leaves to
    # the root, and the root carries a minority of the total — structural,
    # holds at any size.
    tree_rows = [row for row in grid if row["levels"]]
    assert tree_rows
    for row in tree_rows:
        counts = [level["messages"] for level in row["levels"]]
        assert counts == sorted(counts) and counts[0] < counts[-1], (
            f"{row['label']}: per-level messages not attenuating toward the "
            f"root: {counts}"
        )
        assert root_traffic_fraction(row["levels"]) < 0.5
    # Every shape keeps the tracking guarantee's shape (the merged estimate
    # degrades gracefully with depth, not catastrophically).
    check(
        all(row["result"].max_relative_error() <= 3 * EPSILON for row in grid),
        "tree tracking error drifted far beyond the flat guarantee",
    )
    # Root traffic is strictly sublinear in k: doubling the sites less than
    # doubles the root's message count.  Structural — holds at any size.
    for smaller, larger in zip(sweep, sweep[1:]):
        growth = larger["root_messages"] / max(1, smaller["root_messages"])
        assert growth < larger["sites"] / smaller["sites"], (
            f"root traffic grew superlinearly in k: "
            f"{smaller['root_messages']} @ k={smaller['sites']} -> "
            f"{larger['root_messages']} @ k={larger['sites']}"
        )
    # The paper-scale tree's traffic concentrates at the leaves: per-level
    # message counts decrease strictly from the leaf level to the root, and
    # the root sees asymptotically fewer messages than there are sites.
    big_counts = [row["messages"] for row in big["levels"]]
    assert big_counts == sorted(big_counts), (
        f"per-level messages not increasing root->leaf: {big_counts}"
    )
    assert big_counts[0] < big_counts[-1]
    check(
        big_counts[0] < BIG_SITES,
        f"root saw {big_counts[0]} messages for k={BIG_SITES}; expected "
        "sublinear root traffic",
    )
    # The million-site point is lazy end to end: only leaves the trace
    # touches were ever built — at most one per distinct site, a sliver of
    # the 1000-leaf tree.  Structural, holds at any trace length.
    assert 0 < million["materialized_leaves"] <= million["distinct_sites"]
    assert million["materialized_leaves"] < million["total_leaves"] // 2, (
        f"{million['materialized_leaves']} of {million['total_leaves']} leaves "
        "materialised — laziness is not paying for itself"
    )
    # The sparse replay still tracks: the recorded trace ends on the true
    # running total and the estimate honours the (tree-split) budget.
    assert million["result"].records[-1].true_value == million["true_value"]
    check(
        million["result"].max_relative_error() <= 3 * EPSILON,
        "million-site tree tracking error drifted beyond the flat guarantee",
    )
    # Laziness is also what keeps this point inside the CI smoke budget:
    # building the untouched million-site tree eagerly takes tens of
    # seconds; the lazy build is bounded by the touched-leaf count.
    check(
        million["build_seconds"] < 5.0,
        f"lazy million-site build took {million['build_seconds']:.1f}s",
    )
    # High leaf-touch dispatch: both engines must agree bit for bit on the
    # shared prefix (structural — the flattening changed dispatch, never
    # semantics), and the tree-direct engine must beat the generic columnar
    # engine's per-segment _locate descent by >= 2x where segments hop
    # leaves (measured ~5-7x; 2x is the design floor for this regime).
    assert high_touch["fingerprints_equal"], (
        "tree-direct and generic columnar engines diverged on the high "
        "leaf-touch workload"
    )
    check(
        high_touch["updates_per_second"]
        >= 2.0 * high_touch["generic_updates_per_second"],
        f"tree-direct dispatch under 2x the generic engine at high "
        f"leaf-touch: {high_touch['updates_per_second']:.0f} vs "
        f"{high_touch['generic_updates_per_second']:.0f} updates/s",
    )
