"""E22 (observability): instrumentation overhead on the E17 throughput scenario.

The observability layer's design contract is "pay only when attached":
every protocol hook is one ``if observer is not None`` test, so an
uninstrumented run must be effectively free, and a full metrics registry
must cost well under 10% of throughput (the trace log may cost more — it
allocates an event per message — and is reported but not bounded).

Three configurations over the E17 workload (random-walk stream, blocked
assignment, ``k = 16``), for both the per-update and the batched engine,
plus a lossy asynchronous engine (``FaultyChannel`` at 10% i.i.d. loss) —
the reliability counters (drops, retransmissions, duplicates) are likewise
derived at scrape time from the channel's own accounting, so they must fit
in the same overhead budget:

* ``off`` — plain network, no observers (the baseline);
* ``metrics`` — ``instrument_network`` with a registry;
* ``metrics+trace`` — registry plus a ring-buffered ``TraceLog``.

Each row reports updates/second and the overhead versus ``off``.  All
three configurations must also agree bit-for-bit on the protocol's
outputs — that part is structural and asserted in smoke mode too.
"""

import time

from bench_support import check, size

from repro.api import SourceSpec, TrackerSpec
from repro.asynchrony import UniformLatency, build_async_network, run_tracking_async
from repro.faults import FaultPlan
from repro.monitoring import run_tracking
from repro.observability import TraceLog, instrument_network

PER_UPDATE_N = size(150_000, 10_000)
BATCHED_N = size(2_000_000, 20_000)  # the batched engine needs a long run to time stably
LOSSY_N = size(60_000, 5_000)  # the ARQ layer pays per-event scheduling costs
NUM_SITES = 16
EPSILON = 0.1
BLOCK_LENGTH = 4_096
RECORD_EVERY = 20_000
REPEATS = 3  # best-of, to keep scheduler noise out of the overhead ratios


def _workload(length: int) -> list:
    """The E17 scenario's source axis, declared as a spec."""
    return SourceSpec(
        stream="random_walk",
        length=length,
        seed=31,
        sites=NUM_SITES,
        assignment="blocked",
        assignment_params={"block_length": BLOCK_LENGTH},
    ).build_updates()


def _factory():
    return TrackerSpec(name="deterministic", epsilon=EPSILON).build_factory(
        NUM_SITES
    )


def _build_network(engine):
    if engine == "lossy-async":
        return build_async_network(
            _factory(),
            latency=UniformLatency(0.5, 2.0),
            seed=3,
            faults=FaultPlan(loss=0.1, seed=7),
        )
    return _factory().build_network()


def _timed_run(updates, engine, batched, config):
    """One run under ``config``; returns (updates/s, result fingerprint)."""
    best = float("inf")
    fingerprint = None
    for repeat in range(REPEATS + 1):
        network = _build_network(engine)
        if config == "metrics":
            instrument_network(network)
        elif config == "metrics+trace":
            instrument_network(network, trace=TraceLog(capacity=4096))
        start = time.perf_counter()
        if engine == "lossy-async":
            result = run_tracking_async(
                network, updates, record_every=RECORD_EVERY
            )
        else:
            result = run_tracking(
                network, updates, record_every=RECORD_EVERY, batched=batched
            )
        elapsed = time.perf_counter() - start
        if repeat > 0:  # the first pass only warms caches and the allocator
            best = min(best, elapsed)
        fingerprint = (
            [(r.time, r.estimate, r.true_value) for r in result.records],
            result.total_messages,
            result.total_bits,
            dict(result.messages_by_kind),
        )
    return len(updates) / best, fingerprint


def _measure():
    rows = []
    for engine, batched, length in (
        ("per-update", False, PER_UPDATE_N),
        ("batched", True, BATCHED_N),
        ("lossy-async", False, LOSSY_N),
    ):
        updates = _workload(length)
        rates = {}
        fingerprints = {}
        for config in ("off", "metrics", "metrics+trace"):
            rates[config], fingerprints[config] = _timed_run(
                updates, engine, batched, config
            )
        for config in ("off", "metrics", "metrics+trace"):
            overhead = 1.0 - rates[config] / rates["off"]
            rows.append(
                [
                    engine,
                    config,
                    length,
                    round(rates[config]),
                    f"{overhead * 100:+.1f}%",
                    overhead,
                    fingerprints[config] == fingerprints["off"],
                ]
            )
    return rows


def test_bench_e22_observability_overhead(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        "E22 / observability — instrumentation overhead (E17 scenario, k=16)",
        ["engine", "config", "n", "updates/s", "overhead", "bit-for-bit"],
        [row[:5] + [row[6]] for row in rows],
    )
    # Structural at any size: instrumented runs are bit-for-bit identical.
    for row in rows:
        assert row[6], f"{row[0]}/{row[1]} diverged from the baseline"
    # Quantitative (full scale only): the registry costs under 10%.
    for row in rows:
        if row[1] == "metrics":
            check(
                row[5] < 0.10,
                f"{row[0]} registry overhead {row[4]} breaches the 10% budget",
            )
