"""E19 (sharding): shard-scaling sweep at fixed ``k``.

The sharded hierarchy (:mod:`repro.monitoring.sharding`) exists so that the
monitored site count can scale past what one coordinator object absorbs.
This benchmark holds ``k`` and the stream fixed, sweeps the shard count, and
reports how the communication redistributes: shard-local traffic, the
shard-to-root hop count in total and *per shard*, the load imbalance across
shards, and the achieved error of the merged estimate.

Pinned shapes:

* the single-shard row is *bit-for-bit* the flat engine (estimates, message
  counts, bit counts), at any size — the hierarchy adds nothing until it is
  asked to;
* root-side messages per shard decrease as the shard count grows: each
  shard serves fewer sites, sees less of the stream, and therefore refreshes
  the root less often (the root-side load per aggregation unit is what the
  hierarchy exists to bound);
* contiguous sharding over a round-robin assignment keeps shards balanced
  (imbalance stays near 1).
"""

from bench_support import check, size

from repro.analysis import shard_imbalance
from repro.api import RunSpec, SourceSpec, Sweep, TopologySpec, TrackerSpec
from repro.monitoring.channel import ChannelStats
from repro.monitoring.sharding import ShardedNetwork

LENGTH = size(120_000, 4_000)
NUM_SITES = 32
EPSILON = 0.1
SHARD_COUNTS = [1, 2, 4, 8, 16]
RECORD_EVERY = size(2_000, 100)


def _measure():
    base = RunSpec(
        source=SourceSpec(
            stream="biased_walk",
            length=LENGTH,
            seed=19,
            sites=NUM_SITES,
            params={"drift": 0.5},
        ),
        tracker=TrackerSpec(name="deterministic", epsilon=EPSILON),
        topology=TopologySpec(shards=1),
        engine="batched",
        record_every=RECORD_EVERY,
    )
    flat = base.run()
    rows = []
    # Sweep the topology axis; build each point by hand because the rows
    # report the network's per-shard accounting, not just the result.
    for overrides, spec in Sweep(base, {"topology.shards": SHARD_COUNTS}).specs():
        built = spec.build()
        result = built.run()
        network = built.network
        sharded = isinstance(network, ShardedNetwork)
        rows.append(
            {
                "shards": overrides["topology.shards"],
                "result": result,
                "local": network.local_stats if sharded else network.stats,
                "root": network.root_stats if sharded else ChannelStats(),
                "imbalance": (
                    shard_imbalance(network.shard_stats()) if sharded else 1.0
                ),
            }
        )
    return flat, rows


def test_bench_e19_shard_scaling(benchmark, table_printer):
    flat, rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        "E19 / sharding — shard count vs communication split "
        f"(biased walk, n={LENGTH}, k={NUM_SITES}, eps={EPSILON})",
        [
            "shards",
            "local msgs",
            "root msgs",
            "root msgs / shard",
            "imbalance",
            "max rel err",
        ],
        [
            [
                row["shards"],
                row["local"].messages,
                row["root"].messages,
                round(row["root"].messages / row["shards"], 1),
                round(row["imbalance"], 3),
                round(row["result"].max_relative_error(), 4),
            ]
            for row in rows
        ],
    )
    # Single shard is the flat engine, bit for bit — at any size.
    single = rows[0]["result"]
    assert rows[0]["shards"] == 1
    assert single.total_messages == flat.total_messages
    assert single.total_bits == flat.total_bits
    assert [r.estimate for r in single.records] == [r.estimate for r in flat.records]
    assert rows[0]["root"].messages == 0
    # Root-side messages per shard decrease as the shard count grows (the
    # acceptance shape of the hierarchy), at any size.
    per_shard = [
        row["root"].messages / row["shards"] for row in rows if row["shards"] > 1
    ]
    assert per_shard == sorted(per_shard, reverse=True), (
        f"root messages per shard did not decrease: {per_shard}"
    )
    assert per_shard[-1] < per_shard[0]
    # Balanced partition over a round-robin assignment: near-even shard load.
    check(
        all(row["imbalance"] < 1.5 for row in rows),
        f"contiguous shards unexpectedly imbalanced: "
        f"{[row['imbalance'] for row in rows]}",
    )
    # The merged estimate stays accurate on a drifting stream (each shard
    # guarantees eps against its own substream; on a biased walk the
    # substream magnitudes add up, so the merged error stays near eps).
    check(
        all(row["result"].max_relative_error() <= 3 * EPSILON for row in rows),
        "sharded tracking error drifted far beyond the per-shard guarantee",
    )
