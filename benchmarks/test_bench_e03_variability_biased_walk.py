"""E3 (Theorem 2.4): expected variability of biased random walks.

Paper claim: for i.i.d. ``+-1`` increments with drift ``mu``,
``E[v(n)] = O(log(n) / mu)``.  The benchmark sweeps the drift at a fixed
length and the length at a fixed drift, reporting measured means against the
``log(n)/mu`` form, and checks the two monotonicities the formula implies
(decreasing in ``mu``, logarithmic in ``n``).
"""

import pytest

from repro.analysis import fit_growth, repeat_variability
from repro.analysis.bounds import biased_walk_variability_bound
from repro.streams import biased_walk_stream

DRIFTS = [0.05, 0.1, 0.2, 0.4, 0.8]
FIXED_N = 64_000
LENGTHS = [4_000, 16_000, 64_000, 256_000]
FIXED_DRIFT = 0.4
TRIALS = 4


def _measure():
    drift_rows = []
    for drift in DRIFTS:
        stats = repeat_variability(
            lambda seed, d=drift: biased_walk_stream(FIXED_N, drift=d, seed=seed),
            trials=TRIALS,
            seed=2_000,
        )
        drift_rows.append(
            [
                drift,
                round(stats["mean"], 1),
                round(biased_walk_variability_bound(FIXED_N, drift), 1),
                round(stats["mean"] * drift, 2),
            ]
        )
    length_rows = []
    length_means = []
    for n in LENGTHS:
        stats = repeat_variability(
            lambda seed, n=n: biased_walk_stream(n, drift=FIXED_DRIFT, seed=seed),
            trials=TRIALS,
            seed=3_000,
        )
        length_means.append(stats["mean"])
        length_rows.append(
            [n, round(stats["mean"], 1), round(biased_walk_variability_bound(n, FIXED_DRIFT), 1)]
        )
    return drift_rows, length_rows, length_means


def test_bench_e03_variability_biased_walk(benchmark, table_printer):
    drift_rows, length_rows, length_means = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        f"E3 / Theorem 2.4 — E[v] vs drift (n = {FIXED_N})",
        ["mu", "mean v", "log(n)/mu", "v * mu"],
        drift_rows,
    )
    table_printer(
        f"E3 / Theorem 2.4 — E[v] vs n (mu = {FIXED_DRIFT})",
        ["n", "mean v", "log(n)/mu"],
        length_rows,
    )
    # Decreasing in the drift.
    means_by_drift = [row[1] for row in drift_rows]
    assert means_by_drift == sorted(means_by_drift, reverse=True)
    # Within a modest constant of the log(n)/mu form everywhere.
    for row in drift_rows:
        assert row[1] <= 8.0 * row[2]
    # Logarithmic (not polynomial) growth in n at fixed drift.
    fit = fit_growth(LENGTHS, length_means)
    assert fit.best_shape == "log"
