"""E12 (Section 5.2 / Appendix I): single-site aggregate tracking.

Paper claim: with one site, refreshing the coordinator whenever
``|f - fhat| > eps f`` uses at most ``O(v(n)/eps)`` messages (the potential
argument gives ``(1+eps)/eps * v``) while guaranteeing ``eps`` relative error
at all times, for arbitrary integer-valued aggregates.  The benchmark sweeps
stream classes and ``eps`` and reports messages against the bound.
"""

import pytest

from repro.analysis.bounds import single_site_message_bound
from repro.core import run_single_site
from repro.streams import (
    biased_walk_stream,
    database_size_trace,
    monotone_stream,
    random_walk_stream,
    sawtooth_stream,
)

N = 60_000
STREAMS = {
    "monotone": lambda: monotone_stream(N),
    "biased_walk": lambda: biased_walk_stream(N, drift=0.4, seed=71),
    "db_trace": lambda: database_size_trace(N, seed=72),
    "random_walk": lambda: random_walk_stream(N, seed=73),
    "sawtooth": lambda: sawtooth_stream(N, amplitude=100),
}
EPSILONS = [0.05, 0.2]


def _measure():
    rows = []
    for name, make in STREAMS.items():
        spec = make()
        for epsilon in EPSILONS:
            result = run_single_site(spec.deltas, epsilon)
            bound = single_site_message_bound(epsilon, result.variability)
            rows.append(
                [
                    name,
                    epsilon,
                    round(result.variability, 1),
                    result.messages,
                    round(bound, 0),
                    round(result.messages / N, 4),
                    round(result.max_relative_error(), 4),
                ]
            )
    return rows


def test_bench_e12_single_site(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        f"E12 / Appendix I — single-site tracking (n = {N})",
        ["stream", "eps", "v(n)", "messages", "(1+eps)/eps v bound", "msgs/update", "max rel err"],
        rows,
    )
    for row in rows:
        name, epsilon, v, messages, bound, per_update, max_error = row
        assert max_error <= epsilon + 1e-9
        assert messages <= bound + 1
    # Low-variability streams cost a vanishing fraction of naive forwarding.
    cheap = [row for row in rows if row[0] in ("monotone", "biased_walk", "db_trace")]
    for row in cheap:
        assert row[5] < 0.05
