"""E7 (Section 2 remarks + Section 3): monotone streams reduce to the classics.

Paper claim: on monotone streams the variability-aware trackers cost
``O((k/eps) log n)`` / ``O((k + sqrt(k)/eps) log n)`` messages — the same
regime as the insert-only counters of Cormode et al. and Huang et al. — because
``v(n) = O(log n)`` there.  The benchmark runs all four algorithms (plus the
naive forwarder) on the same monotone stream and reports messages and errors.
"""

import pytest

from repro.analysis import compare_trackers
from repro.baselines import CormodeCounter, HuangCounter, NaiveCounter
from repro.core import DeterministicCounter, RandomizedCounter
from repro.streams import monotone_stream

N = 60_000
NUM_SITES = 8
EPSILON = 0.1


def _measure():
    spec = monotone_stream(N)
    comparisons = compare_trackers(
        {
            "naive": NaiveCounter(NUM_SITES),
            "cormode (monotone-only)": CormodeCounter(NUM_SITES, EPSILON),
            "huang (monotone-only)": HuangCounter(NUM_SITES, EPSILON, seed=41),
            "paper deterministic": DeterministicCounter(NUM_SITES, EPSILON),
            "paper randomized": RandomizedCounter(NUM_SITES, EPSILON, seed=42),
        },
        spec,
        num_sites=NUM_SITES,
        epsilon=EPSILON,
        record_every=9,
    )
    rows = [
        [
            c.name,
            c.messages,
            round(c.messages / N, 4),
            round(c.max_relative_error, 4),
            round(c.violation_fraction, 4),
            round(c.variability, 2),
        ]
        for c in comparisons
    ]
    return rows


def test_bench_e07_monotone_comparison(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        f"E7 — monotone stream, k = {NUM_SITES}, eps = {EPSILON}, n = {N}",
        ["algorithm", "messages", "msgs/update", "max rel err", "violation frac", "v(n)"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    naive = by_name["naive"][1]
    # Every non-trivial algorithm is at least an order of magnitude below naive.
    for name in (
        "cormode (monotone-only)",
        "huang (monotone-only)",
        "paper deterministic",
        "paper randomized",
    ):
        assert by_name[name][1] < 0.12 * naive
    # Deterministic guarantees hold exactly; randomized ones with margin.
    assert by_name["paper deterministic"][3] <= EPSILON + 1e-9
    assert by_name["cormode (monotone-only)"][3] <= EPSILON + 1e-9
    assert by_name["paper randomized"][4] < 1.0 / 3.0
    assert by_name["huang (monotone-only)"][4] < 1.0 / 3.0
    # The adapted tracker stays within a constant factor of the monotone-only
    # specialist it generalises (the block machinery costs a small factor).
    assert by_name["paper deterministic"][1] < 12 * by_name["cormode (monotone-only)"][1]
