"""E4 (Section 3.1): structural facts of the block partition.

Paper claims: the partition costs at most ``5k`` messages per block, every
completed block increases the variability by at least a constant (``1/5`` in
the paper with its looser length bound; ``1/10`` with the trigger threshold
used here), and consequently the number of blocks — and hence the partition's
total communication — is ``O(k v)`` rather than ``O(n)``.
"""

import pytest

from repro.core import BlockPartitioner, DeterministicCounter, variability
from repro.monitoring.messages import MessageKind
from repro.streams import assign_sites, biased_walk_stream, monotone_stream, random_walk_stream

STREAMS = {
    "monotone": lambda n: monotone_stream(n),
    "biased_walk": lambda n: biased_walk_stream(n, drift=0.5, seed=11),
    "random_walk": lambda n: random_walk_stream(n, seed=12),
}
N = 40_000
SITE_COUNTS = [1, 4, 16]


def _partition_stats(spec, num_sites):
    partitioner = BlockPartitioner(num_sites=num_sites)
    partitioner.update_many(spec.deltas)
    blocks = partitioner.finish()
    complete = [b for b in blocks if b.complete]
    min_gain = min((b.variability_gain for b in complete), default=0.0)
    return len(blocks), min_gain


def _partition_messages(spec, num_sites):
    network = DeterministicCounter(num_sites, 0.5).build_network()
    network.channel.enable_log()
    for update in assign_sites(spec, num_sites):
        network.deliver_update(update.time, update.site, update.delta)
    by_kind = network.stats.by_kind
    count_reports = sum(
        1
        for message in network.channel.log
        if message.kind is MessageKind.REPORT and "count" in message.payload
    )
    partition_messages = (
        by_kind.get("request", 0)
        + by_kind.get("reply", 0)
        + by_kind.get("broadcast", 0)
        + count_reports
    )
    return partition_messages, network.coordinator.blocks_completed


def _measure():
    rows = []
    for name, factory in STREAMS.items():
        spec = factory(N)
        v = variability(spec.deltas)
        for num_sites in SITE_COUNTS:
            blocks, min_gain = _partition_stats(spec, num_sites)
            partition_messages, completed = _partition_messages(spec, num_sites)
            per_block = partition_messages / max(completed, 1)
            rows.append(
                [
                    name,
                    num_sites,
                    round(v, 1),
                    blocks,
                    round(min_gain, 3),
                    partition_messages,
                    round(per_block, 2),
                    round(partition_messages / (num_sites * max(v, 1.0)), 2),
                ]
            )
    return rows


def test_bench_e04_block_partition(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        "E4 / Section 3.1 — block partition structure and cost",
        ["stream", "k", "v(n)", "blocks", "min gain", "partition msgs", "msgs/block", "msgs/(k v)"],
        rows,
    )
    for row in rows:
        name, num_sites, v, blocks, min_gain, messages, per_block, normalised = row
        # Every completed block gains at least 1/10 variability.
        assert min_gain >= 0.1 - 1e-9
        # Per-block partition cost is at most 5k (+ the trailing partial block).
        assert per_block <= 5 * num_sites + 1
        # Total partition cost is O(k v): at most the paper's 25 k v + 3 k.
        assert messages <= 25 * num_sites * v + 3 * num_sites
    # Blocks track variability: the monotone stream needs far fewer blocks
    # than the random walk of the same length.
    blocks_by_stream = {row[0]: row[3] for row in rows if row[1] == 4}
    assert blocks_by_stream["monotone"] < blocks_by_stream["random_walk"] / 5
