"""E11 (Appendix H): distributed item-frequency tracking.

Paper claims: every item frequency is tracked to ``eps F1(t)`` with
``O((k/eps) v(n))`` messages (v is the F1-variability), and the per-site space
can be made independent of ``|U|`` by hashing items into ``O(1/eps)`` buckets
(Count-Min style) or ``O((1/eps) log|U| / ...)`` deterministic CR-precis rows,
at the price of one extra ``eps F1 / 3`` error term.  The benchmark runs the
exact tracker and both sketched variants on Zipfian insert/delete workloads.
"""

import pytest

from repro.core.frequencies import (
    CRPrecisReducer,
    FrequencyTracker,
    HashReducer,
    IdentityReducer,
    run_frequency_tracking,
)
from repro.streams import ItemStreamConfig, zipfian_item_stream

N = 12_000
UNIVERSE = 400
NUM_SITES = 4
EPSILON = 0.25


def _run(reducer, name, updates):
    tracker = FrequencyTracker(num_sites=NUM_SITES, epsilon=EPSILON, reducer=reducer)
    result = run_frequency_tracking(tracker, updates, audit_every=250)
    counters_per_row = {
        "exact (per item)": UNIVERSE,
        "count-min reduction": getattr(reducer, "num_buckets", UNIVERSE),
        "cr-precis reduction": sum(getattr(reducer, "primes", [])) or UNIVERSE,
    }[name]
    return [
        name,
        reducer.num_rows,
        result.total_messages,
        round(result.max_error_ratio(), 4),
        result.violations(EPSILON),
        round(result.f1_variability, 1),
        round(result.total_messages / (NUM_SITES * max(result.f1_variability, 1.0) / EPSILON), 3),
        counters_per_row,
    ]


def _measure():
    config = ItemStreamConfig(length=N, universe_size=UNIVERSE, num_sites=NUM_SITES, seed=61)
    updates = zipfian_item_stream(config, exponent=1.2, deletion_probability=0.2)
    rows = [
        _run(IdentityReducer(), "exact (per item)", updates),
        _run(HashReducer.from_epsilon(EPSILON, num_rows=3, seed=62), "count-min reduction", updates),
        _run(
            CRPrecisReducer.from_epsilon(EPSILON, universe_size=UNIVERSE, rows=4),
            "cr-precis reduction",
            updates,
        ),
    ]
    return rows


def test_bench_e11_frequency_tracking(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        f"E11 / Appendix H — frequency tracking (k = {NUM_SITES}, eps = {EPSILON}, |U| = {UNIVERSE})",
        [
            "variant",
            "rows",
            "messages",
            "max err / F1",
            "violations",
            "F1-variability",
            "msgs/(kv/eps)",
            "counters per row",
        ],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    for row in rows:
        name, num_rows, messages, error_ratio, violations, f1_v, normalised, counters = row
        # The eps F1 guarantee holds for the exact tracker and both sketches.
        assert error_ratio <= EPSILON + 1e-9
        assert violations == 0
        # Communication stays within a modest constant of (k/eps) v per sketch
        # row (each update touches one counter per row).
        assert normalised <= 10.0 * num_rows
    # The sketched variants use far fewer counters than the universe size.
    assert by_name["count-min reduction"][7] < UNIVERSE
