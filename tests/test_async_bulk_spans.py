"""Bulk span scheduling on the asynchronous transport.

``run_tracking_async(batched=True)`` routes contiguous same-site runs
through the span kernel: trigger-free spans charge their count reports in
bulk and put *one* prepaid aggregate in flight per span
(:meth:`AsyncChannel.send_prepaid_to_coordinator`), while block closes stay
real per-message traffic.  Contract pinned here:

* zero latency is bit-for-bit the synchronous batched engine (which is
  itself bit-for-bit per-update), flat and sharded alike — the async
  subsystem's existing equivalence anchor extends to the bulk engine;
* under real latency the event-queue volume collapses (that is the point:
  one event per span lets virtual-time sweeps reach 10^7-update streams)
  while cost accounting still charges every message individually.
"""

import pytest

from repro.asynchrony import (
    ConstantLatency,
    UniformLatency,
    build_async_network,
    build_sharded_async_network,
    run_tracking_async,
)
from repro.core import DeterministicCounter, RandomizedCounter
from repro.monitoring import run_tracking
from repro.monitoring.messages import COORDINATOR, Message, MessageKind
from repro.streams import BlockedAssignment, assign_sites, random_walk_stream

def _fingerprint(result):
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


def _factories(num_sites):
    return [
        lambda: DeterministicCounter(num_sites, 0.1),
        lambda: RandomizedCounter(num_sites, 0.1, seed=9),
    ]


class TestZeroLatencyBulkSpans:
    @pytest.mark.parametrize("num_sites", [1, 2, 4, 8])
    def test_batched_async_is_bit_for_bit_the_sync_engine(self, num_sites):
        spec = random_walk_stream(6_000, seed=3)
        updates = assign_sites(spec, num_sites, BlockedAssignment(512))
        for build in _factories(num_sites):
            sync = run_tracking(
                build().build_network(), updates, record_every=50, batched=True
            )
            network = build_async_network(build(), latency=ConstantLatency(0.0))
            asynchronous = run_tracking_async(
                network, updates, record_every=50, batched=True
            )
            assert _fingerprint(sync) == _fingerprint(asynchronous)

    def test_sharded_single_shard_matches_flat_bulk_engine(self):
        spec = random_walk_stream(4_000, seed=5)
        updates = assign_sites(spec, 4, BlockedAssignment(256))
        for build in _factories(4):
            flat = run_tracking_async(
                build_async_network(build(), latency=ConstantLatency(0.0)),
                updates,
                record_every=40,
                batched=True,
            )
            sharded = run_tracking_async(
                build_sharded_async_network(build(), 1, latency=ConstantLatency(0.0)),
                updates,
                record_every=40,
                batched=True,
            )
            assert _fingerprint(flat) == _fingerprint(sharded)

    def test_batched_async_matches_per_update_async(self):
        """Transitivity check without the sync engine in the middle."""
        spec = random_walk_stream(3_000, seed=7)
        updates = assign_sites(spec, 2, BlockedAssignment(128))
        for build in _factories(2):
            per_update = run_tracking_async(
                build_async_network(build()), updates, record_every=25
            )
            batched = run_tracking_async(
                build_async_network(build()), updates, record_every=25, batched=True
            )
            assert _fingerprint(per_update) == _fingerprint(batched)


class TestLatencyBulkSpans:
    def _run(self, batched, shards=1):
        spec = random_walk_stream(12_000, seed=3)
        updates = assign_sites(spec, 8, BlockedAssignment(512))
        if shards > 1:
            network = build_sharded_async_network(
                DeterministicCounter(8, 0.1),
                shards,
                latency=UniformLatency(2.0, 6.0),
                seed=1,
            )
        else:
            network = build_async_network(
                DeterministicCounter(8, 0.1), latency=UniformLatency(2.0, 6.0), seed=1
            )
        result = run_tracking_async(
            network, updates, record_every=500, batched=batched
        )
        return result, network

    def test_event_volume_collapses_under_latency(self):
        per_update, per_update_network = self._run(batched=False)
        batched, batched_network = self._run(batched=True)
        # Every charged message is an event on the per-update engine; the
        # bulk engine coalesces each span's count reports into one event.
        assert per_update_network.channel.delivered_count == per_update.total_messages
        assert (
            batched_network.channel.delivered_count < batched.total_messages / 2
        )
        # The backlog settles either way and the estimate lands on a sane
        # value once drained (the stream's exact final value is recorded).
        assert batched.final_true_value == per_update.final_true_value

    def test_bulk_spans_work_in_the_sharded_hierarchy(self):
        result, network = self._run(batched=True, shards=2)
        assert result.total_messages > 0
        assert network.channel.in_flight == 0  # drained
        assert result.final_true_value == result.records[-1].true_value


class TestPrepaidScheduling:
    def test_prepaid_send_charges_nothing(self):
        network = build_async_network(
            DeterministicCounter(2, 0.1), latency=ConstantLatency(1.5)
        )
        channel = network.channel
        before = channel.stats.snapshot()
        channel.send_prepaid_to_coordinator(
            Message(
                kind=MessageKind.REPORT,
                sender=0,
                receiver=COORDINATOR,
                payload={"count": 1},
                time=1,
            )
        )
        assert channel.stats.messages == before.messages
        assert channel.stats.bits == before.bits
        assert channel.in_flight == 1
        channel.drain()
        # Delivery runs the ordinary receive path: t_hat advanced by the
        # aggregate count even though the transmission was prepaid.
        assert network.coordinator.reported_updates == 1

    def test_prepaid_aggregate_can_close_a_block_at_delivery(self):
        """An aggregate crossing the trigger when it lands still closes the
        block through the ordinary receive path — the property that keeps
        bulk spans sound when other sites' reports arrive first."""
        network = build_async_network(
            DeterministicCounter(2, 0.1), latency=ConstantLatency(1.5)
        )
        channel = network.channel
        channel.send_prepaid_to_coordinator(
            Message(
                kind=MessageKind.REPORT,
                sender=0,
                receiver=COORDINATOR,
                payload={"count": 3},  # >= the level-0 trigger of k = 2
                time=1,
            )
        )
        channel.drain()
        assert network.coordinator.blocks_completed == 1
        assert network.coordinator.reported_updates == 0

    def test_channel_advertises_span_scheduling(self):
        network = build_async_network(DeterministicCounter(2, 0.1))
        assert network.channel.supports_span_events
        sync_network = DeterministicCounter(2, 0.1).build_network()
        assert not getattr(sync_network.channel, "supports_span_events", False)
