"""Equivalence of the asynchronous engine (zero latency) with the synchronous one.

The asynchronous subsystem's central honesty check: under ``ConstantLatency(0)``
every message is delivered inline at its send instant, so
:func:`repro.asynchrony.run_tracking_async` must be *bit-for-bit* identical to
:func:`repro.monitoring.run_tracking` — per-record estimates, message counts,
bit counts, per-kind breakdowns, and the full transcript (message order and
content) — for every core algorithm and baseline, across stream classes,
site counts, assignment policies and recording strides.  Anything less and
the latency experiments would not be anchored to the paper's model.
"""

import pytest

from repro.asynchrony import ConstantLatency, build_async_network, run_tracking_async
from repro.baselines import CormodeCounter, HuangCounter, LiuStyleCounter, NaiveCounter
from repro.core import DeterministicCounter, RandomizedCounter
from repro.monitoring import run_tracking
from repro.streams import (
    BlockedAssignment,
    RoundRobinAssignment,
    SkewedAssignment,
    assign_sites,
    monotone_stream,
    nearly_monotone_stream,
    random_walk_stream,
    sawtooth_stream,
)

STREAMS = {
    "random_walk": lambda: random_walk_stream(3_000, seed=3),
    "sawtooth": lambda: sawtooth_stream(3_000, amplitude=40),
    "nearly_monotone": lambda: nearly_monotone_stream(3_000, seed=4),
}

CONFIGS = [
    # (num_sites, policy factory, record_every)
    (1, RoundRobinAssignment, 7),
    (4, lambda: BlockedAssignment(64), 50),
    (8, RoundRobinAssignment, 1),
    (4, lambda: SkewedAssignment(seed=1), 13),
]


def _fingerprint(result):
    """Everything observable about a run: records, totals, kind breakdown."""
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


def _transcript(network):
    """The channel's charged transcript, one entry per transmission."""
    return [
        (m.kind, m.sender, m.receiver, dict(m.payload), m.time)
        for m in network.channel.log
    ]


def _run_both(factory_builder, updates, record_every):
    """Run sync and zero-latency async on the same stream, with transcripts."""
    sync_network = factory_builder().build_network()
    sync_network.channel.enable_log()
    sync = run_tracking(sync_network, updates, record_every=record_every)
    async_network = build_async_network(
        factory_builder(), latency=ConstantLatency(0.0), seed=0
    )
    async_network.channel.enable_log()
    asynchronous = run_tracking_async(
        async_network, updates, record_every=record_every
    )
    return sync, asynchronous, sync_network, async_network


class TestZeroLatencyEquivalence:
    @pytest.mark.parametrize("stream_name", sorted(STREAMS))
    @pytest.mark.parametrize("config_index", range(len(CONFIGS)))
    def test_core_trackers_bit_for_bit(self, stream_name, config_index):
        spec = STREAMS[stream_name]()
        num_sites, policy_factory, record_every = CONFIGS[config_index]
        updates = assign_sites(spec, num_sites, policy_factory())
        for factory_builder in (
            lambda: DeterministicCounter(num_sites, 0.1),
            lambda: RandomizedCounter(num_sites, 0.1, seed=9),
        ):
            sync, asynchronous, sync_net, async_net = _run_both(
                factory_builder, updates, record_every
            )
            assert _fingerprint(sync) == _fingerprint(asynchronous)
            assert _transcript(sync_net) == _transcript(async_net)

    @pytest.mark.parametrize(
        "name, factory_builder, monotone",
        [
            ("naive", lambda: NaiveCounter(3), False),
            ("liu", lambda: LiuStyleCounter(3, 0.1, seed=5), False),
            ("cormode", lambda: CormodeCounter(3, 0.1), True),
            ("huang", lambda: HuangCounter(3, 0.1, seed=5), True),
        ],
    )
    def test_baselines_bit_for_bit(self, name, factory_builder, monotone):
        spec = monotone_stream(2_000) if monotone else random_walk_stream(2_000, seed=6)
        updates = assign_sites(spec, 3)
        sync, asynchronous, sync_net, async_net = _run_both(
            factory_builder, updates, record_every=11
        )
        assert _fingerprint(sync) == _fingerprint(asynchronous)
        assert _transcript(sync_net) == _transcript(async_net)

    def test_zero_latency_queue_never_used(self):
        """Inline delivery means nothing is ever scheduled: age 0, no backlog."""
        updates = assign_sites(random_walk_stream(800, seed=7), 2)
        network = build_async_network(DeterministicCounter(2, 0.1))
        result = run_tracking_async(network, updates)
        assert result.staleness.inflight_highwater == 0
        assert result.staleness.max_age == 0.0
        assert result.staleness.delivered == result.total_messages
        assert result.staleness.reordered == 0

    def test_final_state_matches_sync(self):
        updates = assign_sites(sawtooth_stream(1_500, amplitude=25), 4)
        sync, asynchronous, sync_net, async_net = _run_both(
            lambda: DeterministicCounter(4, 0.1), updates, record_every=9
        )
        assert asynchronous.final_estimate == sync_net.estimate()
        assert asynchronous.final_true_value == sync.records[-1].true_value
        assert asynchronous.settled_error() == abs(
            sync.records[-1].true_value - sync_net.estimate()
        )

    def test_generator_input(self):
        spec = random_walk_stream(500, seed=8)
        updates = assign_sites(spec, 2)
        network = build_async_network(DeterministicCounter(2, 0.1))
        lazy = run_tracking_async(network, (u for u in updates), record_every=10)
        reference = DeterministicCounter(2, 0.1).track(
            updates, record_every=10, batched=False
        )
        assert _fingerprint(lazy) == _fingerprint(reference)

    def test_empty_stream(self):
        network = build_async_network(NaiveCounter(1))
        result = run_tracking_async(network, iter(()))
        assert result.records == []
        assert result.total_messages == 0
        assert result.final_clock == 0.0
