"""Integration tests: empirical checks of the paper's Section 2 theorems.

These tests check growth *shapes* (the quantity the paper proves), not
constants, using the fitting helper on moderate stream lengths so the whole
file stays fast.
"""

import math

import pytest

from repro.analysis import fit_growth, repeat_variability
from repro.analysis.bounds import (
    biased_walk_variability_bound,
    monotone_variability_bound,
    nearly_monotone_variability_bound,
    random_walk_variability_bound,
)
from repro.core import variability
from repro.streams import (
    biased_walk_stream,
    database_size_trace,
    monotone_stream,
    nearly_monotone_stream,
    random_walk_stream,
)


class TestTheorem21Monotone:
    """Monotone and nearly monotone streams have (poly)logarithmic variability."""

    def test_monotone_variability_within_bound(self):
        for n in (1_000, 4_000, 16_000):
            v = variability(monotone_stream(n).deltas)
            assert v <= monotone_variability_bound(n)

    def test_monotone_variability_shape_is_logarithmic(self):
        lengths = [256, 1_024, 4_096, 16_384, 65_536]
        values = [variability(monotone_stream(n).deltas) for n in lengths]
        fit = fit_growth(lengths, values)
        assert fit.best_shape == "log"

    def test_nearly_monotone_within_bound(self):
        for seed in range(3):
            spec = nearly_monotone_stream(8_000, deletion_fraction=0.25, seed=seed)
            v = variability(spec.deltas)
            final = max(spec.final_value(), 2)
            # beta = 1 suffices here: deletions never exceed the current value
            # because the generator keeps the stream positive and grows ~ n/2.
            assert v <= nearly_monotone_variability_bound(1.0, final)

    def test_nearly_monotone_far_below_linear(self):
        spec = nearly_monotone_stream(16_000, deletion_fraction=0.3, seed=7)
        assert variability(spec.deltas) < 0.02 * spec.length

    def test_database_trace_is_low_variability(self):
        spec = database_size_trace(16_000, seed=1)
        assert variability(spec.deltas) < 0.02 * spec.length


class TestTheorem22RandomWalk:
    """Fair coin flips: E[v(n)] = O(sqrt(n) log n)."""

    def test_expected_variability_within_bound(self):
        for n in (1_000, 4_000, 16_000):
            stats = repeat_variability(
                lambda seed, n=n: random_walk_stream(n, seed=seed), trials=5, seed=100
            )
            assert stats["mean"] <= random_walk_variability_bound(n)

    def test_expected_variability_at_least_sqrt_n(self):
        n = 16_000
        stats = repeat_variability(
            lambda seed: random_walk_stream(n, seed=seed), trials=5, seed=200
        )
        assert stats["mean"] >= 0.5 * math.sqrt(n)

    def test_growth_shape_is_between_sqrt_and_linear(self):
        lengths = [1_000, 4_000, 16_000, 64_000]
        means = []
        for n in lengths:
            stats = repeat_variability(
                lambda seed, n=n: random_walk_stream(n, seed=seed), trials=3, seed=300
            )
            means.append(stats["mean"])
        fit = fit_growth(lengths, means)
        assert fit.best_shape in ("sqrt", "sqrt_log")
        # Far from linear growth.
        assert not fit.shape_is_consistent("linear", tolerance=0.1)


class TestTheorem24BiasedWalk:
    """Biased coins with drift mu: E[v(n)] = O(log(n) / mu)."""

    def test_expected_variability_within_bound(self):
        n = 16_000
        for drift in (0.2, 0.5, 0.8):
            stats = repeat_variability(
                lambda seed, d=drift: biased_walk_stream(n, drift=d, seed=seed),
                trials=4,
                seed=400,
            )
            # The theorem's constant is modest; a factor of 8 covers it safely.
            assert stats["mean"] <= 8.0 * biased_walk_variability_bound(n, drift)

    def test_variability_decreases_with_drift(self):
        n = 16_000
        means = []
        for drift in (0.1, 0.4, 0.8):
            stats = repeat_variability(
                lambda seed, d=drift: biased_walk_stream(n, drift=d, seed=seed),
                trials=4,
                seed=500,
            )
            means.append(stats["mean"])
        assert means[0] > means[1] > means[2]

    def test_biased_walk_much_cheaper_than_fair_walk(self):
        n = 32_000
        fair = repeat_variability(
            lambda seed: random_walk_stream(n, seed=seed), trials=3, seed=600
        )["mean"]
        biased = repeat_variability(
            lambda seed: biased_walk_stream(n, drift=0.5, seed=seed), trials=3, seed=700
        )["mean"]
        assert biased < fair / 5
