"""Statistical tests of the randomized estimator properties (Fact 3.1).

Fact 3.1 (Lemma 2.1 of Huang et al.) states that the corrected per-site
estimate ``d_hat_i = d_i - 1 + 1/p`` kept by the coordinator is an unbiased
estimator of the site's drift with variance at most ``1/p^2``.  These tests
check both moments empirically for the building block itself and for the full
randomized tracker's global estimate.
"""

import numpy as np
import pytest

from repro.core import RandomizedCounter
from repro.core.randomized import report_probability
from repro.streams import assign_sites, biased_walk_stream


def _simulate_estimator(drift_total, probability, trials, seed):
    """Simulate the Huang et al. estimator for a single monotone counter.

    The counter increases by one per step; with probability ``p`` the current
    value is reported and the coordinator stores ``value - 1 + 1/p``; the
    estimate after the stream ends is the last stored value (or ``0`` if no
    report ever happened, matching the tracker's initial estimate of zero).
    """
    rng = np.random.default_rng(seed)
    estimates = np.zeros(trials)
    for trial in range(trials):
        last = 0.0
        reports = rng.random(drift_total) < probability
        for step in range(1, drift_total + 1):
            if reports[step - 1]:
                last = step - 1.0 + 1.0 / probability
        estimates[trial] = last
    return estimates


class TestFact31Estimator:
    def test_unbiased_within_sampling_error(self):
        drift, probability, trials = 200, 0.25, 4_000
        estimates = _simulate_estimator(drift, probability, trials, seed=1)
        standard_error = np.std(estimates) / np.sqrt(trials)
        assert abs(np.mean(estimates) - drift) <= 4 * standard_error + 0.5

    def test_variance_bounded_by_inverse_p_squared(self):
        drift, probability, trials = 200, 0.25, 4_000
        estimates = _simulate_estimator(drift, probability, trials, seed=2)
        assert np.var(estimates) <= 1.2 / (probability * probability)

    @pytest.mark.parametrize("probability", [0.1, 0.5, 0.9])
    def test_variance_shrinks_with_probability(self, probability):
        estimates = _simulate_estimator(100, probability, 2_000, seed=3)
        assert np.var(estimates) <= 1.5 / (probability * probability)


class TestRandomizedTrackerEstimate:
    def test_global_estimate_is_nearly_unbiased_across_seeds(self):
        # Run the full tracker over the same distributed stream with many
        # seeds and check that the mean final estimate is close to the truth
        # relative to the spread of the estimates.
        spec = biased_walk_stream(4_000, drift=0.6, seed=21)
        updates = assign_sites(spec, 4)
        truth = spec.final_value()
        finals = []
        for seed in range(30):
            result = RandomizedCounter(4, 0.2, seed=seed).track(updates, record_every=4_000)
            finals.append(result.records[-1].estimate)
        finals = np.asarray(finals)
        spread = max(np.std(finals), 1.0)
        assert abs(np.mean(finals) - truth) <= spread

    def test_report_probability_matches_fact_requirements(self):
        # The probability is exactly the one that makes Chebyshev give < 1/3:
        # std <= sqrt(2k)/p = eps 2^r k sqrt(2/9) < eps 2^r k / sqrt(3).
        for level in range(1, 8):
            for num_sites in (2, 8, 32):
                epsilon = 0.1
                p = report_probability(level, num_sites, epsilon)
                if p < 1.0:
                    std_bound = np.sqrt(2.0 * num_sites) / p
                    chebyshev = (std_bound / (epsilon * (2 ** level) * num_sites)) ** 2
                    assert chebyshev < 1.0 / 3.0
