"""Unit tests for the discrete-event asynchronous transport.

Covers the event scheduler's deterministic ordering, the latency models'
seeded sampling, the async channel's delivery/staleness semantics (in-flight
holding, per-link FIFO versus reordering, broadcast fan-out with independent
delays), the event-driven runner, and the ``latency`` CLI subcommand.
"""

import numpy as np
import pytest

from repro.asynchrony import (
    AsymmetricLatency,
    AsyncChannel,
    ConstantLatency,
    EventScheduler,
    HeavyTailLatency,
    UniformLatency,
    build_async_network,
    run_tracking_async,
)
from repro.analysis.staleness import (
    error_over_time,
    run_latency_sweep,
    summarize_staleness,
    time_averaged_relative_error,
)
from repro.baselines import CormodeCounter, NaiveCounter
from repro.cli import main
from repro.core import DeterministicCounter, RandomizedCounter
from repro.exceptions import ConfigurationError, ProtocolError
from repro.monitoring import run_tracking
from repro.monitoring.messages import BROADCAST_SITE, COORDINATOR, Message, MessageKind
from repro.streams import assign_sites, monotone_stream, random_walk_stream
from repro.types import EstimateRecord


class TestEventScheduler:
    def test_orders_by_due_then_insertion(self):
        scheduler = EventScheduler()
        scheduler.push(5.0, "late")
        scheduler.push(1.0, "first")
        scheduler.push(5.0, "late-second")
        scheduler.push(3.0, "middle")
        assert [e.payload for e in scheduler.pop_all()] == [
            "first",
            "middle",
            "late",
            "late-second",
        ]

    def test_pop_due_respects_window_and_reentrant_pushes(self):
        scheduler = EventScheduler()
        scheduler.push(1.0, "a")
        scheduler.push(2.0, "b")
        scheduler.push(10.0, "far")
        seen = []
        for event in scheduler.pop_due(5.0):
            seen.append(event.payload)
            if event.payload == "a":
                scheduler.push(1.5, "a-child")  # falls inside the window
        assert seen == ["a", "a-child", "b"]
        assert len(scheduler) == 1
        assert scheduler.next_due == 10.0

    def test_rejects_negative_due(self):
        with pytest.raises(ProtocolError):
            EventScheduler().push(-1.0, "x")

    def test_empty_scheduler(self):
        scheduler = EventScheduler()
        assert len(scheduler) == 0
        assert scheduler.next_due is None
        assert list(scheduler.pop_due(100.0)) == []


class TestLatencyModels:
    def test_constant(self):
        rng = np.random.default_rng(0)
        model = ConstantLatency(3.5)
        assert model.sample(rng, 0, COORDINATOR) == 3.5
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)

    def test_uniform_bounds_and_seeding(self):
        model = UniformLatency(2.0, 8.0)
        draws = [
            model.sample(np.random.default_rng(42), 0, COORDINATOR)
            for _ in range(5)
        ]
        assert all(2.0 <= d <= 8.0 for d in draws)
        assert len(set(draws)) == 1  # same seed, same draw
        varied = [model.sample(np.random.default_rng(i), 0, COORDINATOR) for i in range(20)]
        assert len(set(varied)) > 1
        with pytest.raises(ConfigurationError):
            UniformLatency(5.0, 2.0)
        assert UniformLatency(4.0, 4.0).sample(np.random.default_rng(0), 0, 0) == 4.0

    def test_heavy_tail_positive_and_capped(self):
        model = HeavyTailLatency(scale=2.0, alpha=1.2, cap=50.0)
        rng = np.random.default_rng(11)
        draws = [model.sample(rng, 0, COORDINATOR) for _ in range(500)]
        assert all(2.0 <= d <= 50.0 for d in draws)
        assert max(draws) > 10.0  # the tail actually shows up
        with pytest.raises(ConfigurationError):
            HeavyTailLatency(scale=0.0)
        with pytest.raises(ConfigurationError):
            HeavyTailLatency(scale=5.0, cap=1.0)

    def test_asymmetric_selects_site_end(self):
        base = ConstantLatency(2.0)
        model = AsymmetricLatency(base, {0: 10.0, 2: 0.0}, default_factor=1.0)
        rng = np.random.default_rng(0)
        # Site-to-coordinator: the sender is the site end.
        assert model.sample(rng, 0, COORDINATOR) == 20.0
        # Coordinator-to-site: the receiver is the site end.
        assert model.sample(rng, COORDINATOR, 2) == 0.0
        assert model.sample(rng, COORDINATOR, 1) == 2.0
        with pytest.raises(ConfigurationError):
            AsymmetricLatency(base, {0: -1.0})


def _report(sender=0, time=1, **payload):
    payload = payload or {"drift": 1}
    return Message(
        kind=MessageKind.REPORT,
        sender=sender,
        receiver=COORDINATOR,
        payload=payload,
        time=time,
    )


class TestAsyncChannel:
    def _channel(self, num_sites=2, **kwargs):
        channel = AsyncChannel(num_sites, **kwargs)
        inbox = []
        channel.register_coordinator(inbox.append)
        site_boxes = [[] for _ in range(num_sites)]
        for site_id in range(num_sites):
            channel.register_site(site_id, site_boxes[site_id].append)
        return channel, inbox, site_boxes

    def test_messages_held_in_flight_until_due(self):
        channel, inbox, _ = self._channel(latency=ConstantLatency(5.0))
        channel.send_to_coordinator(_report())
        assert channel.stats.messages == 1  # charged at send
        assert inbox == []  # not delivered yet
        assert channel.in_flight == 1
        channel.advance_to(4.9)
        assert inbox == []
        channel.advance_to(5.0)
        assert len(inbox) == 1
        assert channel.in_flight == 0
        assert channel.delivery_ages == [5.0]

    def test_zero_latency_delivers_inline(self):
        channel, inbox, _ = self._channel(latency=ConstantLatency(0.0))
        channel.send_to_coordinator(_report())
        assert len(inbox) == 1
        assert channel.in_flight == 0
        assert channel.inflight_highwater == 0

    def test_fifo_link_order_preserved(self):
        """With FIFO links a later message never overtakes an earlier one."""

        class Shrinking:
            def __init__(self):
                self.delays = iter([10.0, 1.0])

            def sample(self, rng, sender, receiver):
                return next(self.delays)

        channel, inbox, _ = self._channel(latency=Shrinking(), preserve_order=True)
        first = _report(time=1, drift=1)
        second = _report(time=2, drift=2)
        channel.send_to_coordinator(first)
        channel.send_to_coordinator(second)
        channel.drain()
        assert [m.payload["drift"] for m in inbox] == [1, 2]
        assert channel.reordered_deliveries == 0
        # The second message waited behind the first: age 10, not 1.
        assert channel.delivery_ages == [10.0, 10.0]

    def test_reordering_allowed_and_counted(self):
        class Shrinking:
            def __init__(self):
                self.delays = iter([10.0, 1.0])

            def sample(self, rng, sender, receiver):
                return next(self.delays)

        channel, inbox, _ = self._channel(latency=Shrinking(), preserve_order=False)
        channel.send_to_coordinator(_report(time=1, drift=1))
        channel.send_to_coordinator(_report(time=2, drift=2))
        channel.drain()
        assert [m.payload["drift"] for m in inbox] == [2, 1]
        assert channel.reordered_deliveries == 1

    def test_broadcast_charges_k_and_fans_out_with_independent_delays(self):
        channel, _, site_boxes = self._channel(
            num_sites=3, latency=UniformLatency(1.0, 50.0), seed=5
        )
        broadcast = Message(
            kind=MessageKind.BROADCAST,
            sender=COORDINATOR,
            receiver=BROADCAST_SITE,
            payload={"level": 2},
            time=1,
        )
        channel.send_to_site(broadcast)
        assert channel.stats.messages == 3
        assert channel.in_flight == 3
        channel.drain()
        assert all(len(box) == 1 for box in site_boxes)
        assert len(set(channel.delivery_ages)) > 1  # per-copy jitter

    def test_inflight_highwater(self):
        channel, _, _ = self._channel(latency=ConstantLatency(100.0))
        for time in range(1, 6):
            channel.send_to_coordinator(_report(time=time))
        assert channel.inflight_highwater == 5
        channel.drain()
        assert channel.in_flight == 0
        assert channel.inflight_highwater == 5

    def test_clock_is_monotone(self):
        channel, _, _ = self._channel(latency=ConstantLatency(2.0))
        channel.advance_to(10.0)
        assert channel.now == 10.0
        channel.advance_to(3.0)  # stale window: no-op, clock keeps its value
        assert channel.now == 10.0

    def test_send_validation_matches_sync_channel(self):
        channel = AsyncChannel(2)
        with pytest.raises(ProtocolError):
            channel.send_to_coordinator(_report())
        channel.register_coordinator(lambda m: None)
        with pytest.raises(ProtocolError):
            channel.send_to_site(
                Message(
                    kind=MessageKind.REQUEST,
                    sender=COORDINATOR,
                    receiver=7,
                    payload={},
                    time=1,
                )
            )

    def test_is_synchronous_flags(self):
        assert AsyncChannel(1).is_synchronous is False
        network = DeterministicCounter(1, 0.1).build_network()
        assert network.channel.is_synchronous is True


class TestAsyncRunner:
    def test_rejects_synchronous_network(self):
        network = DeterministicCounter(2, 0.1).build_network()
        updates = assign_sites(random_walk_stream(10, seed=0), 2)
        with pytest.raises(ProtocolError):
            run_tracking_async(network, updates)

    def test_sync_runner_rejects_async_network(self):
        """run_tracking must refuse async networks instead of silently
        charging messages that are never delivered."""
        network = build_async_network(
            DeterministicCounter(2, 0.1), latency=ConstantLatency(5.0)
        )
        updates = assign_sites(random_walk_stream(10, seed=0), 2)
        with pytest.raises(ProtocolError, match="run_tracking_async"):
            run_tracking(network, updates)

    def test_rejects_bad_record_every(self):
        network = build_async_network(NaiveCounter(1))
        with pytest.raises(ValueError):
            run_tracking_async(network, [], record_every=0)

    def test_naive_tracker_settles_exactly_after_drain(self):
        """Every update eventually arrives, so the drained naive count is exact."""
        updates = assign_sites(random_walk_stream(400, seed=2), 2)
        network = build_async_network(
            NaiveCounter(2), latency=UniformLatency(3.0, 30.0), seed=4
        )
        result = run_tracking_async(network, updates)
        assert result.settled_error() == 0.0
        assert result.final_clock > 400.0  # messages were still in flight at the end
        assert result.staleness.mean_age > 0.0

    def test_records_show_stale_estimates(self):
        """With delivery slower than the stream, recorded estimates lag the truth."""
        updates = assign_sites(monotone_stream(300), 1)
        network = build_async_network(NaiveCounter(1), latency=ConstantLatency(50.0))
        result = run_tracking_async(network, updates)
        mid = result.records[150]
        assert mid.estimate == mid.true_value - 50.0  # exactly the in-flight window
        assert result.staleness.inflight_highwater == 50

    def test_drain_disabled_leaves_backlog(self):
        updates = assign_sites(monotone_stream(100), 1)
        network = build_async_network(NaiveCounter(1), latency=ConstantLatency(1000.0))
        result = run_tracking_async(network, updates, drain=False)
        assert network.channel.in_flight == 100
        assert result.final_estimate == 0.0
        assert result.final_true_value == 100

    def test_block_protocol_completes_under_latency(self):
        updates = assign_sites(random_walk_stream(5_000, seed=3), 4)
        network = build_async_network(
            DeterministicCounter(4, 0.1), latency=UniformLatency(2.0, 20.0), seed=1
        )
        result = run_tracking_async(network, updates, record_every=50)
        assert network.coordinator.blocks_completed > 0
        assert result.total_messages > 0
        assert result.staleness.delivered == result.total_messages

    def test_round_protocol_completes_under_latency(self):
        updates = assign_sites(monotone_stream(5_000), 4)
        network = build_async_network(
            CormodeCounter(4, 0.1), latency=UniformLatency(2.0, 20.0), seed=1
        )
        result = run_tracking_async(network, updates, record_every=50)
        assert network.coordinator.rounds_completed > 0
        assert result.settled_error() >= 0.0

    def test_seeded_runs_are_reproducible(self):
        updates = assign_sites(random_walk_stream(2_000, seed=5), 4)

        def run():
            network = build_async_network(
                RandomizedCounter(4, 0.1, seed=9),
                latency=HeavyTailLatency(5.0, alpha=1.3, cap=200.0),
                seed=17,
            )
            result = run_tracking_async(network, updates, record_every=25)
            return (
                [(r.time, r.estimate, r.messages, r.bits) for r in result.records],
                result.staleness,
                result.final_clock,
            )

        assert run() == run()

    def test_batched_engine_refuses_fast_path_on_async_channel(self):
        """deliver_batch over an async channel falls back to exact per-update replay."""
        updates = assign_sites(random_walk_stream(600, seed=6), 1)
        network = build_async_network(DeterministicCounter(1, 0.1))
        network.deliver_batch(0, [u.time for u in updates], [u.delta for u in updates])
        reference = DeterministicCounter(1, 0.1).build_network()
        for update in updates:
            reference.deliver_update(update.time, update.site, update.delta)
        assert network.stats.messages == reference.stats.messages
        assert network.stats.bits == reference.stats.bits
        assert network.estimate() == reference.estimate()


class TestStalenessAnalysis:
    def test_summarize_empty_channel(self):
        summary = summarize_staleness(AsyncChannel(1))
        assert summary.delivered == 0
        assert summary.mean_age == 0.0
        assert summary.inflight_highwater == 0

    def test_error_over_time_handles_zero_truth(self):
        records = [
            EstimateRecord(time=1, true_value=0, estimate=2.0, messages=0, bits=0),
            EstimateRecord(time=2, true_value=10, estimate=9.0, messages=0, bits=0),
        ]
        trace = error_over_time(records)
        assert trace[0] == (1, 2.0)  # absolute error at f = 0
        assert trace[1] == (2, pytest.approx(0.1))

    def test_time_averaged_error_weights_by_span(self):
        records = [
            EstimateRecord(time=1, true_value=10, estimate=10.0, messages=0, bits=0),
            EstimateRecord(time=11, true_value=10, estimate=5.0, messages=0, bits=0),
        ]
        # First estimate held 10 units (error 0), second held 10 (error 0.5).
        assert time_averaged_relative_error(records) == pytest.approx(0.25)
        assert time_averaged_relative_error([]) == 0.0
        assert time_averaged_relative_error(records[:1]) == 0.0

    def test_sweep_zero_scale_matches_synchronous_engine(self):
        updates = assign_sites(random_walk_stream(1_500, seed=7), 4)
        points = run_latency_sweep(
            lambda: DeterministicCounter(4, 0.1),
            updates,
            epsilon=0.1,
            scales=[0.0, 8.0],
            record_every=10,
            seed=0,
        )
        sync = DeterministicCounter(4, 0.1).track(updates, record_every=10)
        assert points[0].messages == sync.total_messages
        assert points[0].bits == sync.total_bits
        assert points[0].max_relative_error == sync.max_relative_error()
        assert points[0].staleness.mean_age == 0.0
        # Latency costs accuracy: the stale run is strictly more wrong.
        assert points[1].time_avg_error > points[0].time_avg_error
        assert points[1].staleness.mean_age > 0.0

    def test_sweep_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            run_latency_sweep(
                lambda: NaiveCounter(1), [], epsilon=0.1, scales=[]
            )
        with pytest.raises(ConfigurationError):
            run_latency_sweep(
                lambda: NaiveCounter(1), [], epsilon=0.1, scales=[-1.0]
            )


class TestLatencyCli:
    def test_latency_command_prints_sweep(self, capsys):
        exit_code = main(
            [
                "latency",
                "--stream",
                "biased_walk",
                "--length",
                "2000",
                "--sites",
                "2",
                "--scales",
                "0",
                "4",
                "--record-every",
                "20",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "time-avg err" in captured
        assert "in-flight hwm" in captured

    def test_latency_command_is_deterministic(self, capsys):
        argv = [
            "latency",
            "--stream",
            "random_walk",
            "--length",
            "1500",
            "--sites",
            "2",
            "--scales",
            "0",
            "2",
            "--algorithm",
            "randomized",
            "--model",
            "heavytail",
            "--record-every",
            "25",
            "--seed",
            "3",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
